"""Ring AllReduce traffic and the step model (Sec. V-B5)."""

import random

import pytest

from repro.topology.mesh import MeshSpec, build_mesh
from repro.traffic import RingAllReduceTraffic, ring_allreduce_steps


def mesh16():
    return build_mesh(MeshSpec(dim=4, chiplet_dim=2)).graph


class TestRingTraffic:
    def test_unidirectional_neighbors(self):
        g = mesh16()
        t = RingAllReduceTraffic(g)
        idx = t.index
        rng = random.Random(0)
        for src in t.active_nodes():
            ci, off = idx.node_pos[src]
            d = t.dest(src, rng)
            di, doff = idx.node_pos[d]
            assert di == (ci + 1) % idx.num_chips
            assert doff == off  # same on-chip injection port

    def test_bidirectional_uses_both_sides(self):
        g = mesh16()
        t = RingAllReduceTraffic(g, bidirectional=True)
        idx = t.index
        rng = random.Random(1)
        src = t.active_nodes()[0]
        ci, _ = idx.node_pos[src]
        seen = {idx.node_pos[t.dest(src, rng)][0] for _ in range(100)}
        assert seen == {(ci + 1) % idx.num_chips, (ci - 1) % idx.num_chips}

    def test_ring_needs_two_chips(self):
        g = build_mesh(MeshSpec(dim=2, chiplet_dim=2)).graph
        with pytest.raises(ValueError):
            RingAllReduceTraffic(g)

    def test_bidirectional_needs_three_chips(self):
        g = build_mesh(MeshSpec(dim=2, chiplet_dim=1)).graph
        # 4 chips: fine
        RingAllReduceTraffic(g, bidirectional=True)
        g2 = build_mesh(MeshSpec(dim=2, chiplet_dim=2)).graph
        with pytest.raises(ValueError):
            RingAllReduceTraffic(g2, bidirectional=True)


class TestStepModel:
    def test_steps_and_volume(self):
        m = ring_allreduce_steps(8, 1024, ring_bandwidth=2.0)
        assert m.steps == 14
        assert m.flits_per_step == 128
        assert m.completion_cycles == 14 * 128 / 2.0

    def test_faster_ring_is_faster(self):
        slow = ring_allreduce_steps(8, 1024, 1.0)
        fast = ring_allreduce_steps(8, 1024, 4.0)
        assert fast.completion_cycles == slow.completion_cycles / 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_steps(1, 100, 1.0)
        with pytest.raises(ValueError):
            ring_allreduce_steps(4, 0, 1.0)

    def test_zero_bandwidth(self):
        assert ring_allreduce_steps(4, 100, 0.0).completion_cycles == float(
            "inf"
        )
