"""Hotspot and worst-case traffic (Sec. V-A3b)."""

import random

import pytest

from repro.traffic import HotspotTraffic, WorstCaseTraffic


class TestHotspot:
    def test_scope_confined(self, small_switchless):
        sys = small_switchless
        t = HotspotTraffic(
            sys.graph, sys.group_nodes, sys.num_wgroups, num_hot=4
        )
        hot_nodes = set()
        for w in range(4):
            hot_nodes.update(sys.group_nodes(w))
        assert set(t.active_nodes()) == hot_nodes
        rng = random.Random(0)
        for src in list(t.active_nodes())[::7]:
            for _ in range(10):
                assert t.dest(src, rng) in hot_nodes

    def test_active_chips_counted_over_hot_groups(self, small_switchless):
        sys = small_switchless
        t = HotspotTraffic(sys.graph, sys.group_nodes, sys.num_wgroups, 4)
        assert t.num_active_chips() == 4 * 4 * 4  # 4 W-groups x 4 CG x 4 chips

    def test_validation(self, small_switchless):
        sys = small_switchless
        with pytest.raises(ValueError):
            HotspotTraffic(sys.graph, sys.group_nodes, sys.num_wgroups, 1)
        with pytest.raises(ValueError):
            HotspotTraffic(sys.graph, sys.group_nodes, sys.num_wgroups, 99)


class TestWorstCase:
    def test_targets_next_group(self, small_switchless):
        sys = small_switchless
        t = WorstCaseTraffic(sys.graph, sys.group_nodes, sys.num_wgroups)
        rng = random.Random(0)
        for w in range(sys.num_wgroups):
            src = sys.group_nodes(w)[3]
            for _ in range(10):
                d = t.dest(src, rng)
                assert sys.group_of(d) == (w + 1) % sys.num_wgroups

    def test_all_nodes_active(self, small_switchless):
        sys = small_switchless
        t = WorstCaseTraffic(sys.graph, sys.group_nodes, sys.num_wgroups)
        assert len(t.active_nodes()) == sys.graph.num_nodes

    def test_needs_two_groups(self, small_switchless):
        with pytest.raises(ValueError):
            WorstCaseTraffic(
                small_switchless.graph, small_switchless.group_nodes, 1
            )
