"""Unicast traffic patterns: uniform and bit permutations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.mesh import MeshSpec, build_mesh
from repro.traffic import (
    BitReverseTraffic,
    BitShuffleTraffic,
    BitTransposeTraffic,
    UniformTraffic,
)
from repro.traffic.base import ChipIndex


def mesh16():
    return build_mesh(MeshSpec(dim=4, chiplet_dim=2)).graph


class TestChipIndex:
    def test_grouping(self):
        idx = ChipIndex(mesh16())
        assert idx.num_chips == 4
        assert idx.num_nodes == 16
        for nid in idx.nodes:
            ci, off = idx.node_pos[nid]
            assert idx.chip_nodes[idx.chips[ci]][off] == nid

    def test_rejects_duplicates(self):
        g = mesh16()
        with pytest.raises(ValueError):
            ChipIndex(g, [0, 0])

    def test_rejects_non_terminals(self):
        from repro.topology.mesh import build_switch_with_terminals

        sw = build_switch_with_terminals(2)
        with pytest.raises(ValueError):
            ChipIndex(sw.graph, [sw.switch])

    def test_counterpart_same_offset(self):
        idx = ChipIndex(mesh16())
        src = idx.chip_nodes[idx.chips[0]][2]
        peer = idx.counterpart(src, 3, random.Random(0))
        assert idx.node_pos[peer] == (3, 2)


class TestUniform:
    def test_never_self(self):
        g = mesh16()
        t = UniformTraffic(g)
        rng = random.Random(0)
        for src in t.active_nodes():
            for _ in range(20):
                assert t.dest(src, rng) != src

    def test_exclude_chip_mode(self):
        g = mesh16()
        t = UniformTraffic(g, exclude="chip")
        rng = random.Random(0)
        idx = t.index
        for src in t.active_nodes():
            for _ in range(20):
                d = t.dest(src, rng)
                assert idx.node_pos[d][0] != idx.node_pos[src][0]

    def test_node_mode_covers_everything(self):
        g = mesh16()
        t = UniformTraffic(g)
        rng = random.Random(1)
        seen = {t.dest(0, rng) for _ in range(800)}
        assert len(seen) == 15

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            UniformTraffic(mesh16(), exclude="rack")


class TestPermutations:
    def test_bit_reverse_known_values(self):
        g = mesh16()  # 16 nodes -> 4 bits
        t = BitReverseTraffic(g)
        idx = t.index
        # node at position 1 (0b0001) -> position 8 (0b1000)
        src = idx.nodes[1]
        assert t.dest(src, random.Random(0)) == idx.nodes[8]

    def test_bit_shuffle_known_values(self):
        g = mesh16()
        t = BitShuffleTraffic(g)
        idx = t.index
        # 0b0110 -> rotate left -> 0b1100
        assert t.dest(idx.nodes[6], random.Random(0)) == idx.nodes[12]

    def test_bit_transpose_known_values(self):
        g = mesh16()
        t = BitTransposeTraffic(g)
        idx = t.index
        # 0b0001 -> swap halves -> 0b0100
        assert t.dest(idx.nodes[1], random.Random(0)) == idx.nodes[4]

    @pytest.mark.parametrize(
        "cls", [BitReverseTraffic, BitShuffleTraffic, BitTransposeTraffic]
    )
    def test_bijective_on_active(self, cls):
        g = mesh16()
        t = cls(g)
        rng = random.Random(0)
        dests = [t.dest(s, rng) for s in t.active_nodes()]
        assert len(set(dests)) == len(dests)

    @pytest.mark.parametrize(
        "cls", [BitReverseTraffic, BitShuffleTraffic, BitTransposeTraffic]
    )
    def test_fixed_points_inactive(self, cls):
        g = mesh16()
        t = cls(g)
        idx = t.index
        active = set(t.active_nodes())
        rng = random.Random(0)
        for nid in active:
            assert t.dest(nid, rng) != nid
        # bit-reverse of 0 and 15 are fixed in any of the three patterns
        assert idx.nodes[0] not in active
        assert idx.nodes[15] not in active

    def test_non_power_of_two_fallback(self):
        """Nodes beyond the 2^b prefix send uniformly."""
        g = mesh16()
        scope = g.terminals()[:10]  # 10 nodes -> 8-node permutation
        t = BitReverseTraffic(g, scope)
        rng = random.Random(0)
        seen = {t.dest(scope[9], rng) for _ in range(300)}
        assert len(seen) > 3  # genuinely random
        assert scope[9] not in seen

    def test_normalisation_uses_all_chips(self):
        g = mesh16()
        t = BitReverseTraffic(g)
        assert t.num_active_chips() == 4
