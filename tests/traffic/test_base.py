"""Traffic scope/indexing edge cases."""

import pytest

from repro.topology.mesh import MeshSpec, build_mesh
from repro.traffic.base import ChipIndex


def test_empty_scope_rejected():
    g = build_mesh(MeshSpec(dim=2)).graph
    with pytest.raises(ValueError, match="empty"):
        ChipIndex(g, [])


def test_scope_preserves_order():
    g = build_mesh(MeshSpec(dim=2)).graph
    terms = g.terminals()
    idx = ChipIndex(g, list(reversed(terms)))
    assert idx.nodes == list(reversed(terms))


def test_partial_chip_scope():
    """A scope may contain only part of a chip's nodes."""
    block = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    scope = block.graph.terminals()[:6]
    idx = ChipIndex(block.graph, scope)
    assert idx.num_nodes == 6
    assert sum(len(v) for v in idx.chip_nodes.values()) == 6


def test_counterpart_fallback_for_missing_offset():
    """Heterogeneous chip populations fall back to a random node."""
    import random

    block = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    # chip 0 contributes 4 nodes, chip 1 only 1
    chips = block.graph.chips()
    scope = chips[0] + chips[1][:1]
    idx = ChipIndex(block.graph, scope)
    src = chips[0][3]  # offset 3 does not exist on chip 1
    peer = idx.counterpart(src, 1, random.Random(0))
    assert peer == chips[1][0]
