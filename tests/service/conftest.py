"""In-process service fixtures: real HTTP over an ephemeral port."""

import threading

import pytest

from repro.api import Scenario, Study
from repro.engine import ExperimentSpec
from repro.network import SimParams
from repro.service import ServiceClient, create_server


@pytest.fixture()
def service(tmp_path):
    """A live server on an ephemeral loopback port + matching client.

    Yields ``(client, server)``; the store lives in ``tmp_path`` so
    every test starts cold.
    """
    server = create_server(
        host="127.0.0.1", port=0, cache_dir=tmp_path, default_workers=1
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, server
    finally:
        server.initiate_shutdown()
        server.server_close()
        thread.join(timeout=10)


def tiny_study(measure_cycles=300, rates=(0.4, 0.8), label="m", seed=3):
    """A one-scenario mesh study; crank ``measure_cycles`` to slow it
    down when a test needs a cancellation window."""
    spec = ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=SimParams(
            warmup_cycles=100,
            measure_cycles=measure_cycles,
            drain_cycles=150,
            seed=seed,
        ),
        rates=list(rates), label=label,
    )
    return Study.wrap(
        Scenario(name="tiny", specs=(spec,), title="tiny service study")
    )


def slow_study(num_rates=16):
    """A cancellable study: ~0.3 s per point and — because the batched
    scheduler lands points one native chunk (8 points) at a time —
    enough rates for two chunks, so there is a real window between the
    first points streaming out and the run finishing."""
    rates = [0.1 + 0.03 * i for i in range(num_rates)]
    spec = ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 16, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=SimParams(
            warmup_cycles=200,
            measure_cycles=5000,
            drain_cycles=200,
            seed=3,
        ),
        rates=rates, label="slow",
    )
    return Study.wrap(
        Scenario(name="slow", specs=(spec,), title="slow service study")
    )
