"""HTTP surface of the simulation service (real sockets, tiny studies)."""

import time

import pytest

from repro.engine.spec import ENGINE_VERSION
from repro.service import JobRequest, ServiceError

from .conftest import slow_study, tiny_study


def _physics(result_dict):
    out = dict(result_dict)
    out.pop("meta", None)
    return out


class TestEndpoints:
    def test_health_and_stats(self, service):
        client, _ = service
        health = client.health()
        assert health["ok"] is True
        assert health["engine_version"] == ENGINE_VERSION
        stats = client.stats()
        assert stats["scheduler"]["jobs"] == 0
        assert stats["store"]["entries"] == 0

    def test_submit_watch_result(self, service):
        client, _ = service
        study = tiny_study()
        job = client.submit_study(study)
        assert job["state"] in ("queued", "running")
        assert job["points_total"] == study.num_points()
        events = []
        result = client.watch(job["id"], on_event=events.append)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "done"
        assert kinds.count("point") == study.num_points()
        # seq numbering is gapless
        assert [e["seq"] for e in events] == list(range(len(events)))
        # the result endpoint serves the same payload post-completion
        again = client.result(job["id"])
        assert again.to_dict() == result.to_dict()
        # bit-identical physics vs the offline path
        offline = study.run(workers=1)
        assert _physics(result.to_dict()) == _physics(offline.to_dict())

    def test_result_conflicts_while_running(self, service):
        client, _ = service
        job = client.submit_study(slow_study())
        with pytest.raises(ServiceError) as err:
            client.result(job["id"])
        assert err.value.code == 409
        client.cancel(job["id"])

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client.status("j999999")
        assert err.value.code == 404
        with pytest.raises(ServiceError) as err:
            list(client.stream("j999999"))
        assert err.value.code == 404

    def test_bad_study_payload_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client.submit(JobRequest(study={"nonsense": True}))
        assert err.value.code == 400

    def test_unknown_endpoint_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/api/nope")
        assert err.value.code == 404

    def test_jobs_listing(self, service):
        client, _ = service
        job = client.submit_study(tiny_study())
        client.watch(job["id"])
        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [job["id"]]
        assert jobs[0]["state"] == "done"


class TestTenancy:
    def test_inflight_cap_is_429(self, tmp_path):
        import threading

        from repro.service import ServiceClient, create_server

        server = create_server(
            host="127.0.0.1", port=0, cache_dir=tmp_path,
            max_inflight_per_client=1,
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        try:
            first = client.submit_study(slow_study(), client="capped")
            with pytest.raises(ServiceError) as err:
                client.submit_study(
                    tiny_study(seed=99), client="capped"
                )
            assert err.value.code == 429
            # other clients are unaffected
            other = client.submit_study(
                tiny_study(seed=98), client="free"
            )
            client.cancel(first["id"])
            client.watch(other["id"])
        finally:
            server.initiate_shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_cancel_mid_run_stops_at_point_boundary(self, service):
        client, _ = service
        job = client.submit_study(slow_study())
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.status(job["id"])["points_done"] >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("job never completed a point")
        client.cancel(job["id"])
        status = client.status(job["id"])
        assert status["state"] == "cancelled"
        with pytest.raises(ServiceError, match="cancelled"):
            client.watch(job["id"])
        final = client.status(job["id"])
        assert final["points_done"] < final["points_total"]
        # the executor survives and takes new work
        ok = client.submit_study(tiny_study())
        client.watch(ok["id"])

    def test_completed_points_of_cancelled_job_stay_cached(self, service):
        client, server = service
        job = client.submit_study(slow_study())
        while client.status(job["id"])["points_done"] < 1:
            time.sleep(0.05)
        client.cancel(job["id"])
        done = client.status(job["id"])["points_done"]
        assert server.service.store.stats(scan_meta=False)[
            "entries"
        ] >= done


class TestWarmResubmission:
    def test_resubmit_replays_from_store(self, service):
        client, _ = service
        study = tiny_study()
        first = client.submit_study(study)
        result1 = client.watch(first["id"])
        events = []
        second = client.submit_study(study)
        result2 = client.watch(second["id"], on_event=events.append)
        status = client.status(second["id"])
        assert status["cache_hits"] == status["points_total"]
        sources = {
            e["source"] for e in events if e["event"] == "point"
        }
        assert sources == {"cache"}
        assert result2.to_dict()["scenarios"] == (
            result1.to_dict()["scenarios"]
        )

    def test_done_event_reports_store_stats(self, service):
        client, _ = service
        job = client.submit_study(tiny_study())
        done = [
            e
            for e in client.stream(job["id"])
            if e["event"] == "done"
        ]
        assert len(done) == 1
        cache = done[0]["cache"]
        assert cache["name"] == "cache_stats"
        counters = dict(cache["rows"])
        assert counters["entries"] == 2.0
