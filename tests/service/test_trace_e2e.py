"""Runtime telemetry end-to-end over a live server: one trace from
``submit`` to ``done``, the /api/metrics surface, and the waterfall."""

import pytest

from repro.obs import (
    parse_prometheus,
    render_waterfall,
    trace as obs_trace,
)
from repro.service import ServiceClient, ServiceError, create_server

from .conftest import tiny_study

#: stages every completed one-shot job must have recorded.
REQUIRED_SPANS = {
    "http.post",
    "execution",
    "queue.wait",
    "execution.attempt",
    "engine.run",
    "engine.cache_replay",
}


class TestJobTrace:
    def test_one_trace_covers_submit_to_done(self, service):
        client, server = service
        job = client.submit_study(tiny_study())
        client.watch(job["id"])

        status = client.status(job["id"])
        assert status["state"] == "done"
        trace_id = status["trace_id"]
        assert len(trace_id) == 32

        payload = client.trace(job["id"])
        assert payload["schema"] == "repro.trace/v1"
        assert payload["trace_id"] == trace_id
        spans = payload["spans"]
        assert len(spans) >= 6
        assert {s["trace_id"] for s in spans} == {trace_id}
        names = {s["name"] for s in spans}
        assert REQUIRED_SPANS <= names
        for s in spans:
            assert s["schema"] == "repro.span/v1"
            assert s["end"] >= s["start"]
            assert s["status"] == "ok"
        # the execution root covers every engine stage
        (root,) = [s for s in spans if s["name"] == "execution"]
        engine = [s for s in spans if s["name"].startswith("engine.")]
        assert engine
        assert all(
            root["start"] <= s["start"] and s["end"] <= root["end"] + 1e-6
            for s in engine
        )

    def test_client_context_roots_the_server_trace(self, service):
        client, server = service
        ctx = obs_trace.new_context()
        with obs_trace.use_context(ctx):
            job = client.submit_study(tiny_study(seed=5, label="ctx"))
        client.watch(job["id"])
        status = client.status(job["id"])
        # the server joined the caller's trace rather than minting one
        assert status["trace_id"] == ctx.trace_id
        spans = client.trace(job["id"])["spans"]
        (root,) = [s for s in spans if s["name"] == "execution"]
        assert root["parent_id"] == ctx.span_id

    def test_waterfall_renders_job_stages(self, service):
        client, server = service
        job = client.submit_study(tiny_study(seed=7, label="wf"))
        client.watch(job["id"])
        out = render_waterfall(client.trace(job["id"])["spans"])
        assert out.startswith("trace ")
        for name in ("execution", "queue.wait", "engine.run"):
            assert name in out

    def test_attached_job_shares_the_execution_trace(self, service):
        client, server = service
        study = tiny_study(measure_cycles=60000, label="att")
        first = client.submit_study(study)
        second = client.submit_study(study)
        try:
            assert second["attached"] is True
            assert second["trace_id"] == first["trace_id"]
        finally:
            client.cancel(first["id"])
            client.cancel(second["id"])


class TestMetricsSurface:
    def test_prometheus_text_parses_and_counts_the_job(self, service):
        client, server = service
        before = parse_prometheus(client.metrics(fmt="prometheus"))

        job = client.submit_study(tiny_study(seed=9, label="met"))
        client.watch(job["id"])

        after = parse_prometheus(client.metrics(fmt="prometheus"))
        for name in (
            "service_jobs_submitted_total",
            "http_requests_total",
            "engine_points_total",
            "service_queue_wait_seconds_count",
            "http_request_seconds_count",
        ):
            assert name in after, sorted(after)

        def total(parsed, name):
            return sum(parsed.get(name, {}).values())

        # the registry is process-global, so assert deltas: this job
        # submitted once, ran 2 fresh points, answered HTTP requests
        assert (
            total(after, "service_jobs_submitted_total")
            == total(before, "service_jobs_submitted_total") + 1
        )
        assert (
            total(after, "engine_points_total")
            >= total(before, "engine_points_total") + 2
        )
        assert total(after, "http_requests_total") > total(
            before, "http_requests_total"
        )

    def test_json_format_and_route_labels(self, service):
        client, server = service
        job = client.submit_study(tiny_study(seed=13, label="js"))
        client.watch(job["id"])
        doc = client.metrics(fmt="json")
        assert doc["schema"] == "repro.metrics/v1"
        by_name = {m["name"]: m for m in doc["metrics"]}
        http = by_name["http_requests_total"]
        routes = {s["labels"]["route"] for s in http["samples"]}
        assert "/api/jobs" in routes
        # ids are collapsed into a route template, not one series per job
        assert "/api/jobs/<id>/events" in routes
        assert not any(job["id"] in r for r in routes)
        codes = {s["labels"]["code"] for s in http["samples"]}
        assert "200" in codes

    def test_gauges_reflect_scheduler_state(self, service):
        client, server = service
        study = tiny_study(measure_cycles=60000, label="gauge")
        blocker = client.submit_study(study)
        queued = client.submit_study(
            tiny_study(measure_cycles=60000, seed=21, label="gauge2")
        )
        try:
            doc = client.metrics(fmt="json")
            by_name = {m["name"]: m for m in doc["metrics"]}
            states = {
                s["labels"]["state"]: s["value"]
                for s in by_name["service_jobs"]["samples"]
            }
            assert states.get("queued", 0) + states.get("running", 0) >= 1.0
        finally:
            client.cancel(blocker["id"])
            client.cancel(queued["id"])


class TestTelemetryDisabled:
    def test_trace_endpoint_404s_and_jobs_still_run(self, tmp_path):
        import threading

        server = create_server(
            host="127.0.0.1", port=0, cache_dir=tmp_path,
            default_workers=1, telemetry=False,
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        try:
            job = client.submit_study(tiny_study(seed=17, label="off"))
            client.watch(job["id"])
            assert client.status(job["id"])["state"] == "done"
            with pytest.raises(ServiceError) as err:
                client.trace(job["id"])
            assert err.value.code == 404
            # the metrics endpoint still answers (counters are global)
            assert client.metrics(fmt="json")["schema"] == (
                "repro.metrics/v1"
            )
        finally:
            server.initiate_shutdown()
            server.server_close()
            thread.join(timeout=10)
