"""Stream resilience: dropped connections are survived transparently
via the ``?from=N`` replay cursor — gapless, exactly-once, bit-exact."""

import pytest

from repro.service import chaos

from .conftest import tiny_study


def _physics(result_dict):
    out = dict(result_dict)
    out.pop("meta", None)
    return out


@pytest.fixture()
def drop_stream(monkeypatch):
    """Arm the server-side drop-stream fault after the job completes
    (so the run itself is clean, only the streams are torn)."""

    def arm(directives):
        monkeypatch.setenv("REPRO_CHAOS", directives)
        chaos.reset()

    yield arm
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()


class TestStreamReconnect:
    def test_dropped_stream_reassembles_gapless(
        self, service, drop_stream
    ):
        """The server tears the connection down every third event; the
        client reconnects from its cursor and the reassembled history
        is gapless and bit-exact against the server's event list."""
        client, server = service
        job = client.submit_study(tiny_study())
        clean = list(client.stream(job["id"]))  # runs to completion
        assert clean[-1]["event"] == "done"

        drop_stream("drop-stream:every=3")
        events = list(client.stream(job["id"]))
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events == clean
        snapshot = server.service.job(job["id"]).execution.events_snapshot()
        assert events == snapshot

    def test_watch_survives_drops_with_framed_channels(
        self, service, drop_stream, monkeypatch
    ):
        """watch() over a torn stream still reassembles framed metric
        channels and returns the exact result."""
        monkeypatch.setattr("repro.service.jobs.FRAME_ROWS", 4)
        client, _ = service
        study = tiny_study()
        job = client.submit_study(study, metrics=("link_util",))
        baseline = client.watch(job["id"])  # clean first pass

        drop_stream("drop-stream:every=4")
        merged = []
        result = client.watch(job["id"], on_event=merged.append)
        assert _physics(result.to_dict()) == _physics(
            baseline.to_dict()
        )
        points = [e for e in merged if e["event"] == "point"]
        assert len(points) == study.num_points()
        for point in points:
            assert point["framed_channels"] == []
            assert "link_util" in point["result"]["channels"]
        # no frame escaped unmerged despite the reconnects
        assert [e for e in merged if e["event"] == "channel_frame"] == []

        offline = study.with_metrics(["link_util"]).run(workers=1)
        assert _physics(result.to_dict()) == _physics(offline.to_dict())

    def test_drop_mid_live_run_still_terminates(
        self, service, drop_stream
    ):
        """Drops while the job is still computing: the reconnecting
        stream ends at the terminal event exactly once."""
        client, _ = service
        drop_stream("drop-stream:every=3")
        job = client.submit_study(tiny_study())
        events = list(client.stream(job["id"]))
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert [e["event"] for e in events].count("done") == 1
        assert events[-1]["event"] == "done"

    def test_reconnect_budget_exhausts(self, service, drop_stream):
        """A server that drops before every event defeats the budget:
        the stream gives up (instead of looping forever) and watch()
        surfaces the missing terminal event as an error."""
        from repro.service import ServiceClient, ServiceError

        client, _ = service
        job = client.submit_study(tiny_study())
        list(client.stream(job["id"]))  # let it finish cleanly

        drop_stream("drop-stream")  # fire on every check
        hostile = ServiceClient(
            client.address, retries=1, backoff=0.001, reconnects=2
        )
        assert list(hostile.stream(job["id"])) == []  # bounded retries
        with pytest.raises(ServiceError, match="without a terminal"):
            hostile.watch(job["id"])
