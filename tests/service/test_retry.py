"""Supervised execution: retry with backoff, poison quarantine, and
the hung-run watchdog — driven by the REPRO_CHAOS fault harness."""

import time

import pytest

from repro.service import (
    JobRequest,
    ResultStore,
    RetryPolicy,
    SimulationService,
    chaos,
)

from .conftest import tiny_study


def _physics(result_dict):
    out = dict(result_dict)
    out.pop("meta", None)
    return out


def _wait_terminal(service, job_id, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = service.status(job_id)
        if status["state"] in ("done", "error", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


@pytest.fixture()
def arm_chaos(monkeypatch):
    """Arm REPRO_CHAOS directives; engine point-level retries are
    disabled so the *service* retry budget is what is under test."""
    monkeypatch.setenv("REPRO_POINT_RETRIES", "0")

    def arm(directives):
        monkeypatch.setenv("REPRO_CHAOS", directives)
        chaos.reset()

    yield arm
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()


def _service(tmp_path, **kw):
    kw.setdefault(
        "retry",
        RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
    )
    return SimulationService(ResultStore(tmp_path / "store"), **kw)


class TestSupervisedRetry:
    def test_transient_failure_retried_to_success(
        self, tmp_path, arm_chaos
    ):
        """Two injected failures, three attempts allowed: the job emits
        two retry events and still finishes bit-identical to offline
        (completed points replay from the store on each retry)."""
        arm_chaos("fail-point:times=2:match=m@")
        service = _service(tmp_path)
        try:
            job, _ = service.submit(
                JobRequest(study=tiny_study().to_data())
            )
            status = _wait_terminal(service, job.id)
            assert status["state"] == "done"
            assert status["attempts"] == 3
            events = service.job(job.id).execution.events_snapshot()
            retries = [e for e in events if e["event"] == "retry"]
            assert len(retries) == 2
            assert retries[0]["attempt"] == 1
            assert retries[1]["attempt"] == 2
            assert all("ChaosError" in e["error"] for e in retries)
            assert all(e["max_attempts"] == 3 for e in retries)
            assert all(e["delay"] > 0 for e in retries)
            result = service.job(job.id).execution.result
            offline = tiny_study().run(workers=1)
            assert _physics(result.to_dict()) == _physics(
                offline.to_dict()
            )
        finally:
            service.shutdown()

    def test_backoff_delays_grow(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.5, max_delay=3.0, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [
            0.5,
            1.0,
            2.0,
            3.0,  # capped
        ]
        jittered = RetryPolicy(base_delay=1.0, jitter=0.5)
        assert all(1.0 <= jittered.delay(1) <= 1.5 for _ in range(20))

    def test_poison_job_quarantined_with_traceback(
        self, tmp_path, arm_chaos
    ):
        """A job that fails every attempt parks as 'failed' carrying
        its last traceback — and the queue moves on to the next job."""
        arm_chaos("fail-point:match=m@")
        service = _service(tmp_path)
        try:
            job, _ = service.submit(
                JobRequest(study=tiny_study().to_data())
            )
            status = _wait_terminal(service, job.id)
            assert status["state"] == "failed"
            assert status["attempts"] == 3
            assert "ChaosError" in status["error"]
            assert "ChaosError" in status["traceback"]
            events = service.job(job.id).execution.events_snapshot()
            failed = [e for e in events if e["event"] == "failed"]
            assert len(failed) == 1
            assert failed[0]["attempts"] == 3
            assert "Traceback" in failed[0]["traceback"]

            # the queue is not wedged: a clean job right behind it runs
            clean = tiny_study(seed=11, label="clean")
            job2, _ = service.submit(JobRequest(study=clean.to_data()))
            assert _wait_terminal(service, job2.id)["state"] == "done"
        finally:
            service.shutdown()

    def test_resubmission_after_quarantine_runs_fresh(
        self, tmp_path, arm_chaos
    ):
        """Quarantine retires the execution, so resubmitting the same
        study once the fault clears starts a fresh run that succeeds."""
        arm_chaos("fail-point:match=m@")
        service = _service(tmp_path)
        try:
            job, _ = service.submit(
                JobRequest(study=tiny_study().to_data())
            )
            assert _wait_terminal(service, job.id)["state"] == "failed"
            arm_chaos("")  # fault cleared
            job2, attached = service.submit(
                JobRequest(study=tiny_study().to_data())
            )
            assert attached is False  # not glued to the failed run
            assert _wait_terminal(service, job2.id)["state"] == "done"
        finally:
            service.shutdown()


class TestWatchdog:
    def test_hung_execution_reaped(self, tmp_path, arm_chaos):
        """A run that stops heartbeating past hang_timeout is
        quarantined and the executor moves on."""
        arm_chaos("hang-point:after=1:seconds=30")
        service = _service(tmp_path, hang_timeout=1.0)
        try:
            job, _ = service.submit(
                JobRequest(study=tiny_study().to_data())
            )
            status = _wait_terminal(service, job.id, timeout=15.0)
            assert status["state"] == "failed"
            assert "watchdog" in status["error"]

            # the executor thread is free: the next job completes even
            # though the hung worker thread is still asleep
            clean = tiny_study(seed=11, label="clean")
            job2, _ = service.submit(JobRequest(study=clean.to_data()))
            assert _wait_terminal(service, job2.id)["state"] == "done"
        finally:
            service.shutdown()

    def test_no_watchdog_by_default(self, tmp_path):
        service = _service(tmp_path)
        assert service.hang_timeout is None
        service.shutdown()


class TestClientRequestRetry:
    def test_idempotent_calls_retry_transport_errors(self, monkeypatch):
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(
            "http://127.0.0.1:9", retries=3, backoff=0.001
        )
        attempts = []

        def flaky(method, path, payload=None):
            attempts.append((method, path))
            if len(attempts) <= 2:
                raise ServiceError("cannot reach service")
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client.health() == {"ok": True}
        assert len(attempts) == 3

        # cancel is explicitly idempotent
        attempts.clear()
        assert client.cancel("j000001") == {"ok": True}
        assert len(attempts) == 3

    def test_non_idempotent_posts_fail_fast(self, monkeypatch):
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(
            "http://127.0.0.1:9", retries=3, backoff=0.001
        )
        attempts = []

        def down(method, path, payload=None, extra_headers=None):
            attempts.append(method)
            raise ServiceError("cannot reach service")

        monkeypatch.setattr(client, "_request_once", down)
        with pytest.raises(ServiceError):
            client.submit_study(tiny_study())
        assert attempts == ["POST"]  # a submit is never replayed blind

    def test_http_errors_never_retried(self, monkeypatch):
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(
            "http://127.0.0.1:9", retries=3, backoff=0.001
        )
        attempts = []

        def not_found(method, path, payload=None):
            attempts.append(method)
            raise ServiceError("unknown job", 404)

        monkeypatch.setattr(client, "_request_once", not_found)
        with pytest.raises(ServiceError) as err:
            client.status("j999999")
        assert err.value.code == 404
        assert attempts == ["GET"]
