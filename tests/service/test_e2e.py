"""End-to-end acceptance: concurrent clients, exactly-once compute,
identical streams, bit-identical offline parity, framed telemetry."""

import threading

from repro.service import ServiceClient

from .conftest import slow_study, tiny_study


def _physics(result_dict):
    out = dict(result_dict)
    out.pop("meta", None)
    return out


class TestConcurrentClients:
    def test_two_clients_one_computation(self, service):
        """The ISSUE's CI demo, as a test: two clients submit the same
        study concurrently; the sweep is computed once; both stream
        identical telemetry; both results match ``Study.run``."""
        client, server = service
        study = slow_study()
        # a second, independent client connection (own sockets)
        other = ServiceClient(client.address)

        first = client.submit_study(study, client="alice")
        second = other.submit_study(study, client="bob")
        assert first["attached"] is False
        assert second["attached"] is True
        assert second["attached_to"] == first["id"]
        assert first["key"] == second["key"]

        streams = {}

        def follow(who, cli, job_id):
            streams[who] = list(cli.stream(job_id))

        threads = [
            threading.Thread(
                target=follow, args=("alice", client, first["id"])
            ),
            threading.Thread(
                target=follow, args=("bob", other, second["id"])
            ),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

        # identical streamed telemetry, event for event
        assert streams["alice"] == streams["bob"]
        kinds = [e["event"] for e in streams["alice"]]
        assert kinds[0] == "start" and kinds[-1] == "done"
        assert kinds.count("point") == study.num_points()
        points = [e for e in streams["alice"] if e["event"] == "point"]
        assert all(e["source"] == "fresh" for e in points)

        # exactly once: the store holds each unique point exactly once
        stats = server.service.store.stats(scan_meta=False)
        assert stats["entries"] == study.num_points()

        # bit-identical to the offline path (modulo run bookkeeping)
        from repro.api import StudyResult

        done = streams["alice"][-1]
        service_result = StudyResult.from_dict(done["result"])
        offline = study.run(workers=1)
        assert _physics(service_result.to_dict()) == _physics(
            offline.to_dict()
        )

        # both jobs report completion against one shared execution
        for job_id in (first["id"], second["id"]):
            status = client.status(job_id)
            assert status["state"] == "done"
            assert status["points_done"] == study.num_points()


class TestFramedTelemetry:
    def test_large_channels_stream_as_frames(self, service, monkeypatch):
        """Metric channels above the frame threshold travel as
        ``channel_frame`` events and reassemble client-side into the
        exact offline channels."""
        monkeypatch.setattr("repro.service.jobs.FRAME_ROWS", 4)
        client, _ = service
        study = tiny_study()
        job = client.submit_study(study, metrics=("link_util",))

        raw = list(client.stream(job["id"]))
        frames = [e for e in raw if e["event"] == "channel_frame"]
        assert frames, "expected framed channel events"
        assert {f["channel"] for f in frames} == {"link_util"}
        points = [e for e in raw if e["event"] == "point"]
        assert all(
            p["framed_channels"] == ["link_util"] for p in points
        )
        # the framed channel is stripped from the inline point payload
        assert all(
            "link_util" not in p["result"].get("channels", {})
            for p in points
        )

        # watch() reassembles: the merged point events carry the full
        # channel again, and the final result matches the offline run
        merged = []
        result = client.watch(job["id"], on_event=merged.append)
        merged_points = [e for e in merged if e["event"] == "point"]
        assert len(merged_points) == study.num_points()
        for p in merged_points:
            assert p["framed_channels"] == []
            assert "link_util" in p["result"]["channels"]

        offline = study.with_metrics(["link_util"]).run(workers=1)
        assert _physics(result.to_dict()) == _physics(offline.to_dict())

    def test_small_channels_stay_inline(self, service):
        client, _ = service
        study = tiny_study()
        job = client.submit_study(study, metrics=("link_util",))
        raw = list(client.stream(job["id"]))
        assert [e for e in raw if e["event"] == "channel_frame"] == []
        points = [e for e in raw if e["event"] == "point"]
        assert all(
            "link_util" in p["result"].get("channels", {})
            for p in points
        )


class TestLateSubscriber:
    def test_attach_after_completion_replays_full_history(self, service):
        client, _ = service
        job = client.submit_study(tiny_study())
        first = list(client.stream(job["id"]))
        # a late reader of the same job sees the identical history
        late = list(client.stream(job["id"]))
        assert late == first
        # and an offset read resumes mid-stream
        tail = list(client.stream(job["id"], start=2))
        assert tail == first[2:]
