"""ResultStore: bounds, stats, single-flight adapter semantics."""

import json
import os
import time

import pytest

from repro.engine.spec import ENGINE_VERSION
from repro.network.stats import SimResult
from repro.service import ResultStore, SingleFlight, SingleFlightCache


def _result(rate=0.5):
    return SimResult(
        offered_rate=rate, effective_offered=rate, accepted_rate=rate * 0.8,
        avg_latency=9.0, p50_latency=8.0, p99_latency=20.0,
        packets_measured=100, packets_delivered=90, flits_ejected=400,
        active_chips=16, measure_cycles=300, avg_hops=2.5,
    )


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _result())
        assert "k1" in store
        got = store.get("k1")
        assert got == _result()
        assert store.hits == 1

    def test_put_stamps_engine_version(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _result(), meta={"label": "x"})
        payload = json.loads((tmp_path / "k1.json").read_text())
        assert payload["meta"]["engine"] == ENGINE_VERSION
        assert payload["meta"]["label"] == "x"

    def test_bounds_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_bytes=0)


class TestEviction:
    def test_lru_eviction_by_entries(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=3)
        for i in range(5):
            store.put(f"k{i}", _result())
            time.sleep(0.01)  # distinct mtimes
        assert len(store) == 3
        assert store.evicted == 2
        # the oldest entries went first
        assert "k0" not in store and "k1" not in store
        assert "k4" in store

    def test_hit_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        store.put("old", _result())
        time.sleep(0.01)
        store.put("mid", _result())
        time.sleep(0.01)
        assert store.get("old") is not None  # touch: now most recent
        time.sleep(0.01)
        store.put("new", _result())
        assert "old" in store
        assert "mid" not in store

    def test_eviction_by_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", _result())
        per_entry = (tmp_path / "a.json").stat().st_size
        store.max_bytes = int(per_entry * 2.5)  # room for two entries
        time.sleep(0.01)
        store.put("b", _result())
        time.sleep(0.01)
        store.put("c", _result())
        assert len(store) == 2
        assert "a" not in store

    def test_locked_keys_survive_eviction(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=1)
        store.put("pinned", _result())
        store.single_flight.try_acquire("pinned")
        time.sleep(0.01)
        store.put("fresh", _result())
        # over the bound, but the locked entry cannot be evicted
        assert "pinned" in store
        store.single_flight.release("pinned")

    def test_explicit_prune_overrides(self, tmp_path):
        store = ResultStore(tmp_path)  # unbounded
        for i in range(4):
            store.put(f"k{i}", _result())
            time.sleep(0.01)
        assert store.prune(max_entries=2) == 2
        assert len(store) == 2


class TestStats:
    def test_stats_reports_version_mix_and_stale(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("good", _result())
        # an entry stamped by an older engine
        old = {
            "key": "old",
            "result": _result().to_dict(),
            "meta": {"engine": ENGINE_VERSION - 1},
        }
        (tmp_path / "old.json").write_text(json.dumps(old))
        # a pre-stamping entry with no meta at all
        bare = {"key": "bare", "result": _result().to_dict()}
        (tmp_path / "bare.json").write_text(json.dumps(bare))
        stats = store.stats(scan_meta=True)
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["version_mix"] == {
            f"v{ENGINE_VERSION}": 1,
            f"v{ENGINE_VERSION - 1}": 1,
            "unknown": 1,
        }
        assert stats["stale_entries"] == 2

    def test_stats_channel_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", _result())
        store.get("k")
        chan = store.stats_channel()
        assert chan.name == "cache_stats"
        counters = dict(chan.rows)
        assert counters["entries"] == 1.0
        assert counters["hits"] == 1.0
        # round-trips through the wire form
        from repro.metrics import MetricChannel

        assert MetricChannel.from_dict(chan.to_dict()).to_dict() == (
            chan.to_dict()
        )

    def test_clear_removes_entries_and_locks(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", _result())
        store.single_flight.try_acquire("other")
        assert store.clear() == 1
        assert len(store) == 0
        assert list(tmp_path.glob("*.lock")) == []


class TestSingleFlight:
    def test_acquire_is_exclusive(self, tmp_path):
        a, b = SingleFlight(tmp_path), SingleFlight(tmp_path)
        assert a.try_acquire("k")
        assert not b.try_acquire("k")
        assert b.holder("k") == os.getpid()
        a.release("k")
        assert b.try_acquire("k")
        b.release("k")

    def test_wait_returns_when_released(self, tmp_path):
        import threading

        a, b = SingleFlight(tmp_path), SingleFlight(tmp_path)
        a.try_acquire("k")
        timer = threading.Timer(0.1, a.release, args=("k",))
        timer.start()
        assert b.wait("k", timeout=5.0)
        assert b.waits == 1
        timer.join()

    def test_wait_times_out(self, tmp_path):
        a, b = SingleFlight(tmp_path), SingleFlight(tmp_path)
        a.try_acquire("k")
        assert not b.wait("k", timeout=0.1)
        a.release("k")

    def test_stale_age_lock_is_stolen(self, tmp_path):
        sf = SingleFlight(tmp_path, stale_after=0.05)
        # a live-pid lock that is simply too old
        path = tmp_path / "k.lock"
        path.write_text(f"{os.getpid()} 0.0")
        old = time.time() - 60
        os.utime(path, (old, old))
        assert sf.try_acquire("k")
        assert sf.steals == 1
        sf.release("k")


class TestSingleFlightCache:
    def test_owner_computes_and_releases_on_put(self, tmp_path):
        store = ResultStore(tmp_path)
        cache = SingleFlightCache(store)
        assert cache.get("k") is None  # miss -> we own the key
        assert store.single_flight.locked("k")
        cache.put("k", _result())
        assert not store.single_flight.locked("k")
        assert cache.computed == 1
        assert cache.get("k") == _result()

    def test_close_releases_unused_locks(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.single_flight_cache() as cache:
            assert cache.get("skipped") is None  # e.g. saturation cutoff
            assert store.single_flight.locked("skipped")
        assert not store.single_flight.locked("skipped")

    def test_holder_timeout_falls_back_to_compute(self, tmp_path):
        store = ResultStore(tmp_path)
        foreign = SingleFlight(tmp_path)
        foreign.try_acquire("busy")
        cache = SingleFlightCache(store, wait_timeout=0.1, hold_wait=0.1)
        cache.get("mine")  # own something -> short hold_wait applies
        assert cache.get("busy") is None  # timed out waiting
        assert cache.fallbacks == 1
        # the fallback may still publish; both sides write identical bytes
        cache.put("busy", _result())
        assert store.get("busy") == _result()
        cache.close()
        foreign.release("busy")

    def test_waiter_picks_up_published_result(self, tmp_path):
        import threading

        store = ResultStore(tmp_path)
        owner = SingleFlightCache(store)
        assert owner.get("k") is None

        def publish():
            time.sleep(0.1)
            owner.put("k", _result())

        thread = threading.Thread(target=publish)
        thread.start()
        waiter = SingleFlightCache(ResultStore(tmp_path))
        got = waiter.get("k")  # blocks until the owner publishes
        thread.join()
        assert got == _result()
        assert waiter.computed == 0


class TestRestartHygiene:
    """SingleFlight.clear(): a restarting server removes only *dead*
    holders' locks, so siblings sharing the store keep their in-flight
    computations."""

    def _dead_pid(self):
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_dead_holder_lock_cleared(self, tmp_path):
        sf = SingleFlight(tmp_path)
        (tmp_path / "orphan.lock").write_text(
            f"{self._dead_pid()} {time.time():.3f}"
        )
        assert sf.clear() == 1
        assert not sf.locked("orphan")

    def test_live_holder_lock_survives_default_clear(self, tmp_path):
        sf = SingleFlight(tmp_path)
        assert sf.try_acquire("mine")  # held by this (live) process
        assert sf.clear() == 0
        assert sf.locked("mine")
        # the store-wipe path takes everything regardless
        assert sf.clear(all_locks=True) == 1
        assert not sf.locked("mine")

    def test_fresh_unreadable_lock_gets_grace(self, tmp_path):
        # a sibling between O_CREAT and writing its pid: empty file,
        # seconds old -- not provably dead yet
        sf = SingleFlight(tmp_path)
        path = tmp_path / "halfborn.lock"
        path.write_text("")
        assert sf.clear() == 0
        assert sf.locked("halfborn")
        # ...but an *old* empty lock is an orphaned crash artifact
        past = time.time() - 60
        os.utime(path, (past, past))
        assert sf.clear() == 1
        assert not sf.locked("halfborn")

    def test_store_clear_wipes_all_locks(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", _result())
        assert store.single_flight.try_acquire("k")  # live, ours
        store.clear()
        assert len(store) == 0
        assert not store.single_flight.locked("k")
