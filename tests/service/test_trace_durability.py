"""Trace continuity through failure: a crashed worker pool, a service
retry, and a journal replay after ``kill -9`` all stay in ONE trace —
the resumed incarnation keeps the original trace_id and links the
span it continues."""

import json
import os
import signal
import time

import pytest

from repro.obs.registry import REGISTRY
from repro.service import (
    JobRequest,
    ResultStore,
    RetryPolicy,
    ServiceClient,
    SimulationService,
    chaos,
)

from .conftest import tiny_study
from .test_chaos import _spawn_server


@pytest.fixture()
def arm_chaos(monkeypatch):
    def arm(directives):
        monkeypatch.setenv("REPRO_CHAOS", directives)
        chaos.reset()

    yield arm
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()


@pytest.fixture()
def pool_cpus(monkeypatch):
    """Pretend we have CPUs so ``workers=2`` is a real process pool
    (child-only chaos sites can never fire on the serial path)."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    monkeypatch.setenv("REPRO_SIM_THREADS", "1")


def _service(tmp_path, **kw):
    kw.setdefault(
        "retry",
        RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
    )
    return SimulationService(
        ResultStore(tmp_path / "store"),
        state_dir=tmp_path / "state",
        **kw,
    )


def _wait_terminal(service, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = service.status(job_id)
        if status["state"] in ("done", "error", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestWorkerPoolCrash:
    def test_trace_survives_a_broken_pool(
        self, tmp_path, arm_chaos, pool_cpus, monkeypatch
    ):
        """A worker SIGKILLs itself mid-point (BrokenProcessPool): the
        job still lands ``done`` under its original trace_id, the
        surviving worker-process spans carry their pids into the span
        log, and the crash counter moved."""
        monkeypatch.setenv("REPRO_SIM_BATCH", "0")
        crashes = REGISTRY.counter("engine_worker_crashes_total")
        before = crashes.value()
        arm_chaos(f"crash-worker:once={tmp_path}/crash.marker")

        service = _service(tmp_path)
        try:
            job, attached = service.submit(
                JobRequest(
                    study=tiny_study(
                        rates=(0.1, 0.2, 0.3, 0.4), label="pool"
                    ).to_data(),
                    workers=2,
                )
            )
            trace_id = job.execution.trace_id
            status = _wait_terminal(service, job.id)
            assert status["state"] == "done"
            assert status["trace_id"] == trace_id
            assert crashes.value() >= before + 1

            spans = service.spanlog.for_trace(trace_id)
            assert {s["trace_id"] for s in spans} == {trace_id}
            points = [s for s in spans if s["name"] == "engine.point"]
            # one span per completed point, emitted *inside* the pool
            # workers (they reach the log via the env-carried file sink)
            assert len(points) >= 4
            worker_pids = {s["attrs"]["worker"] for s in points}
            assert worker_pids
            assert all(pid != os.getpid() for pid in worker_pids)
        finally:
            service.shutdown()


class TestRetryTraceContinuity:
    def test_both_attempts_share_the_trace(
        self, tmp_path, arm_chaos, monkeypatch
    ):
        """A point failure escalates to the supervised retry loop: the
        failed attempt's span closes as an error, the retry's span
        closes ok, and both live in the one execution trace."""
        monkeypatch.setenv("REPRO_POINT_RETRIES", "0")
        arm_chaos("fail-point:times=1:match=ret@")

        service = _service(tmp_path)
        try:
            job, _ = service.submit(
                JobRequest(study=tiny_study(label="ret").to_data())
            )
            status = _wait_terminal(service, job.id)
            assert status["state"] == "done"
            assert status["attempts"] == 2

            spans = service.spanlog.for_trace(status["trace_id"])
            assert {s["trace_id"] for s in spans} == {
                status["trace_id"]
            }
            attempts = sorted(
                (s for s in spans if s["name"] == "execution.attempt"),
                key=lambda s: s["start"],
            )
            assert [s["status"] for s in attempts] == ["error", "ok"]
            assert "injected point failure" in attempts[0]["error"]
            # the root execution span closed cleanly *after* the retry
            (root,) = [s for s in spans if s["name"] == "execution"]
            assert root["status"] == "ok"
            assert root["end"] >= attempts[1]["end"]
        finally:
            service.shutdown()


class TestKillNineTraceContinuity:
    def test_resume_keeps_trace_id_and_links_precrash_root(
        self, tmp_path
    ):
        """ISSUE acceptance: SIGKILL the server mid-sweep; the restart
        resumes the job *inside the original trace* — same trace_id,
        and an ``execution.resume`` span whose parent and links point
        at the journaled pre-crash root span."""
        cache_dir = tmp_path / "cache"
        state_dir = tmp_path / "state"
        proc = proc2 = None
        try:
            proc, url, _ = _spawn_server(
                cache_dir,
                state_dir,
                extra_env={"REPRO_CHAOS": "kill-server:after=1"},
            )
            client = ServiceClient(url)
            job = client.submit_study(tiny_study())
            pre_trace = job["trace_id"]
            assert pre_trace

            assert proc.wait(timeout=120) == -signal.SIGKILL

            # the fsynced journal holds the pre-crash trace identity
            records = [
                json.loads(line)
                for line in (state_dir / "journal.ndjson")
                .read_text()
                .splitlines()
                if line.strip()
            ]
            job_rec = next(
                r
                for r in records
                if r.get("rec") == "job" and r.get("id") == job["id"]
            )
            assert job_rec["trace_id"] == pre_trace
            pre_root = job_rec["span_id"]

            proc2, url2, _ = _spawn_server(cache_dir, state_dir)
            client2 = ServiceClient(url2)
            client2.watch(job["id"])
            assert client2.status(job["id"])["trace_id"] == pre_trace

            payload = client2.trace(job["id"])
            assert payload["trace_id"] == pre_trace
            spans = payload["spans"]
            (resume,) = [
                s for s in spans if s["name"] == "execution.resume"
            ]
            assert resume["parent_id"] == pre_root
            assert pre_root in resume["links"]
            assert resume["status"] == "ok"
            # the second life recorded real work in the same trace
            names = {s["name"] for s in spans}
            assert "execution.attempt" in names
            assert "engine.run" in names
        finally:
            for p in (proc, proc2):
                if p is not None and p.poll() is None:
                    p.kill()
                    p.wait(timeout=10)
