"""The REPRO_CHAOS fault harness itself, plus the headline acceptance
test: kill -9 the server mid-sweep, restart it on the same state dir,
and get the bit-identical result."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient, chaos

from .conftest import tiny_study

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _physics(result_dict):
    out = dict(result_dict)
    out.pop("meta", None)
    return out


@pytest.fixture()
def arm(monkeypatch):
    def _arm(directives):
        monkeypatch.setenv("REPRO_CHAOS", directives)
        chaos.reset()

    yield _arm
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()


class TestDirectiveParsing:
    def test_inactive_without_env(self, arm):
        arm("")
        assert chaos.active("kill-server") is None
        assert chaos.should_fire("kill-server") is False

    def test_multiple_directives_with_params(self, arm):
        arm("kill-server:after=2,crash-worker:once=/tmp/m:code=9")
        assert chaos.active("kill-server") == {"after": "2"}
        assert chaos.active("crash-worker") == {
            "once": "/tmp/m",
            "code": "9",
        }
        assert chaos.param("crash-worker", "code", 137, int) == 9
        assert chaos.param("kill-server", "seconds", 30.0, float) == 30.0

    def test_env_change_reparses_and_resets_counters(self, arm):
        arm("fail-point:after=1")
        assert chaos.should_fire("fail-point") is True
        assert chaos.should_fire("fail-point") is False
        arm("fail-point:after=1")  # same text, explicit reset()
        assert chaos.should_fire("fail-point") is True


class TestFiringPolicies:
    def test_bare_site_fires_every_check(self, arm):
        arm("drop-stream")
        assert all(chaos.should_fire("drop-stream") for _ in range(5))

    def test_after_fires_exactly_once(self, arm):
        arm("fail-point:after=3")
        fired = [chaos.should_fire("fail-point") for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_times_fires_first_n(self, arm):
        arm("fail-point:times=2")
        fired = [chaos.should_fire("fail-point") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_every_fires_each_nth(self, arm):
        arm("drop-stream:every=3")
        fired = [chaos.should_fire("drop-stream") for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_rate_extremes(self, arm):
        arm("fail-point:rate=1.0")
        assert all(chaos.should_fire("fail-point") for _ in range(10))
        arm("fail-point:rate=0.0")
        assert not any(chaos.should_fire("fail-point") for _ in range(10))

    def test_match_scopes_and_does_not_consume_counter(self, arm):
        arm("fail-point:after=2:match=poison")
        # non-matching labels are invisible to the counter
        assert chaos.should_fire("fail-point", "clean@0.1") is False
        assert chaos.should_fire("fail-point", "poison@0.1") is False
        assert chaos.should_fire("fail-point", "clean@0.2") is False
        assert chaos.should_fire("fail-point", "poison@0.2") is True

    def test_once_marker_is_cross_process(self, tmp_path, arm):
        marker = tmp_path / "fired.marker"
        arm(f"fail-point:once={marker}")
        assert chaos.should_fire("fail-point") is True
        assert marker.exists()
        assert chaos.should_fire("fail-point") is False
        # a different process would see the marker too: a fresh parse
        # of the same directive still refuses to fire again
        chaos.reset()
        assert chaos.should_fire("fail-point") is False

    def test_engine_point_fail_site(self, arm):
        arm("fail-point:match=bad")
        chaos.engine_point("good@0.1")  # no-op
        with pytest.raises(chaos.ChaosError, match="injected point"):
            chaos.engine_point("bad@0.1")

    def test_crash_worker_never_fires_in_parent(self, arm):
        # this test *is* the parent process: os._exit must not happen
        arm("crash-worker")
        chaos.engine_point("anything")


def _spawn_server(cache_dir, state_dir, extra_env=None):
    """Start ``repro-dragonfly serve`` on an ephemeral port; return
    (proc, base_url) once the startup banner announces the port."""
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_CHAOS", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "serve",
            "--port", "0",
            "--cache-dir", str(cache_dir),
            "--state-dir", str(state_dir),
            "--workers", "1",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    banner = []
    url = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        banner.append(line)
        if line.startswith("# simulation service on "):
            url = line.split()[-1]
        if url and line.startswith("# submit with"):
            return proc, url, banner
    proc.kill()
    raise AssertionError(f"server never came up; stderr: {banner!r}")


class TestKillNineResume:
    def test_sigkilled_server_resumes_bit_identical(self, tmp_path):
        """ISSUE acceptance: SIGKILL the server right after its first
        point lands; a restart on the same state dir resumes the job
        under its original id and completes it bit-identical to an
        uninterrupted offline run."""
        study = tiny_study()
        baseline = study.run(workers=1)

        cache_dir = tmp_path / "cache"
        state_dir = tmp_path / "state"
        proc = proc2 = None
        try:
            proc, url, _ = _spawn_server(
                cache_dir,
                state_dir,
                extra_env={"REPRO_CHAOS": "kill-server:after=1"},
            )
            client = ServiceClient(url)
            job = client.submit_study(study)
            assert job["id"] == "j000001"

            # the chaos site SIGKILLs the server when point 1 lands
            assert proc.wait(timeout=120) == -signal.SIGKILL

            proc2, url2, banner = _spawn_server(cache_dir, state_dir)
            journal_lines = [
                l for l in banner if l.startswith("# job journal")
            ]
            assert journal_lines
            assert "1 job(s) restored, 1 resumed" in journal_lines[0]

            client2 = ServiceClient(url2)
            status = client2.status("j000001")
            assert status["state"] in ("queued", "running", "done")
            result = client2.watch("j000001")
            assert _physics(result.to_dict()) == _physics(
                baseline.to_dict()
            )
        finally:
            for p in (proc, proc2):
                if p is not None and p.poll() is None:
                    p.kill()
                    p.wait(timeout=10)
