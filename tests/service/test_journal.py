"""Durability layer: write-ahead journal, torn-tail tolerance, and
in-process restart (journal replay -> resumed / restored jobs)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    EventLog,
    JobJournal,
    JobRequest,
    ResultStore,
    RetryPolicy,
    SimulationService,
    read_ndjson_tolerant,
)

from .conftest import tiny_study

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _physics(result_dict):
    out = dict(result_dict)
    out.pop("meta", None)
    return out


def _request(**kw):
    return JobRequest(study=tiny_study().to_data(), **kw)


def _wait_terminal(service, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = service.status(job_id)
        if status["state"] in ("done", "error", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestTolerantReader:
    def test_clean_file_roundtrips(self, tmp_path):
        path = tmp_path / "log.ndjson"
        path.write_text('{"a": 1}\n{"a": 2}\n')
        records, torn = read_ndjson_tolerant(path)
        assert records == [{"a": 1}, {"a": 2}]
        assert torn is False

    def test_missing_file_is_empty(self, tmp_path):
        records, torn = read_ndjson_tolerant(tmp_path / "absent")
        assert records == [] and torn is False

    def test_torn_tail_truncated_and_warned(self, tmp_path, caplog):
        path = tmp_path / "log.ndjson"
        path.write_text('{"a": 1}\n{"a": 2}\n{"a": 3, "b')
        with caplog.at_level("WARNING", logger="repro.service"):
            records, torn = read_ndjson_tolerant(path)
        assert records == [{"a": 1}, {"a": 2}]
        assert torn is True
        assert "torn tail" in caplog.text
        # the file is physically clean again: next append glues safely
        assert path.read_text() == '{"a": 1}\n{"a": 2}\n'
        records, torn = read_ndjson_tolerant(path)
        assert torn is False

    def test_decodable_line_without_newline_is_dropped(self, tmp_path):
        # the newline never landed: a crashed appender's *next* write
        # would have glued onto this line, so it cannot be trusted
        path = tmp_path / "log.ndjson"
        path.write_text('{"a": 1}\n{"a": 2}')
        records, torn = read_ndjson_tolerant(path)
        assert records == [{"a": 1}]
        assert torn is True
        assert path.read_text() == '{"a": 1}\n'

    def test_no_truncate_leaves_file_alone(self, tmp_path):
        path = tmp_path / "log.ndjson"
        blob = '{"a": 1}\n{"b'
        path.write_text(blob)
        records, torn = read_ndjson_tolerant(path, truncate=False)
        assert records == [{"a": 1}] and torn is True
        assert path.read_text() == blob

    def test_sigkill_mid_append_leaves_replayable_log(self, tmp_path):
        """Regression: SIGKILL a process busy appending; the survivors
        must replay as a clean prefix, never raise."""
        path = tmp_path / "events.ndjson"
        script = (
            "import sys\n"
            "from repro.service.journal import EventLog\n"
            "log = EventLog(sys.argv[1])\n"
            "i = 0\n"
            "while True:\n"
            "    log.append({'i': i, 'pad': 'x' * 512})\n"
            "    i += 1\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(path)], env=env
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                if path.exists() and path.stat().st_size > 4096:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("appender never produced output")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        records, _ = read_ndjson_tolerant(path, label="event log")
        assert len(records) > 0
        assert [r["i"] for r in records] == list(range(len(records)))
        # and the truncated file now parses clean
        assert read_ndjson_tolerant(path)[1] is False


class TestEventLog:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "e.ndjson"
        log = EventLog(path)
        log.append({"event": "start", "seq": 0})
        log.append({"event": "done", "seq": 1})
        log.close()
        events, torn = EventLog.load(path)
        assert [e["event"] for e in events] == ["start", "done"]
        assert torn is False

    def test_fresh_truncates_previous_run(self, tmp_path):
        path = tmp_path / "e.ndjson"
        EventLog(path).append({"seq": 0})
        log = EventLog(path, fresh=True)
        log.append({"seq": 0, "new": True})
        log.close()
        events, _ = EventLog.load(path)
        assert events == [{"seq": 0, "new": True}]


class TestJobJournal:
    def test_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson")
        req = _request(client="alice", priority=2)
        journal.record_job("j000001", "key-a", req)
        journal.record_state("key-a", "running")
        journal.record_job("j000002", "key-a", req)
        journal.record_cancel("j000002")
        journal.record_state("key-a", "error", error="boom")
        view = journal.replay()
        assert set(view.jobs) == {"j000001", "j000002"}
        assert view.jobs["j000001"].key == "key-a"
        assert view.jobs["j000001"].cancelled is False
        assert view.jobs["j000002"].cancelled is True
        assert view.jobs["j000001"].request.client == "alice"
        assert view.states == {"key-a": "error"}
        assert view.errors == {"key-a": "boom"}
        journal.close()

    def test_replay_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        journal = JobJournal(path)
        journal.record_job("j000001", "key-a", _request())
        journal.close()
        with open(path, "a") as fh:  # crash mid-append
            fh.write('{"rec": "state", "key": "key-a", "sta')
        view = JobJournal(path).replay()
        assert view.torn is True
        assert set(view.jobs) == {"j000001"}
        assert view.states == {}

    def test_compact_preserves_net_state(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        journal = JobJournal(path)
        req = _request()
        journal.record_job("j000001", "key-a", req)
        for state in ("running", "done"):
            journal.record_state("key-a", state)
        journal.record_state("key-a", "running")  # churn
        journal.record_state("key-a", "done")
        before = journal.replay()
        journal.compact(before)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert len(lines) == 2  # one job record + one net state
        after = JobJournal(path).replay()
        assert after.states == before.states
        assert set(after.jobs) == set(before.jobs)
        # the journal stays appendable after compaction
        journal.record_state("key-a", "running")
        assert JobJournal(path).replay().states == {"key-a": "running"}
        journal.close()


class TestRestart:
    def _service(self, store_dir, state_dir, start_executor=True):
        return SimulationService(
            ResultStore(store_dir),
            state_dir=state_dir,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05),
            start_executor=start_executor,
        )

    def test_queued_job_survives_restart_and_completes(self, tmp_path):
        """A job acknowledged but never started (the 'crash before the
        executor got there' case) is re-enqueued on restart, keeps its
        id, and finishes bit-identical to an offline run."""
        store_dir = tmp_path / "store"
        state_dir = tmp_path / "state"
        first = self._service(store_dir, state_dir, start_executor=False)
        job, attached = first.submit(_request())
        assert attached is False
        assert first.status(job.id)["state"] == "queued"
        # no shutdown: a crash journals nothing further

        second = self._service(store_dir, state_dir)
        assert second.restored_jobs == 1
        assert second.resumed_executions == 1
        status = _wait_terminal(second, job.id)
        assert status["state"] == "done"
        assert status["resumed"] is True
        result = second.job(job.id).execution.result
        offline = tiny_study().run(workers=1)
        assert _physics(result.to_dict()) == _physics(offline.to_dict())
        second.shutdown()

    def test_restored_job_ids_do_not_collide(self, tmp_path):
        store_dir = tmp_path / "store"
        state_dir = tmp_path / "state"
        first = self._service(store_dir, state_dir, start_executor=False)
        job, _ = first.submit(_request())
        second = self._service(store_dir, state_dir, start_executor=False)
        other = JobRequest(
            study=tiny_study(seed=11, label="other").to_data()
        )
        new_job, _ = second.submit(other)
        assert new_job.id != job.id
        assert int(new_job.id.lstrip("j")) > int(job.id.lstrip("j"))

    def test_terminal_job_restored_readonly(self, tmp_path):
        """A finished job keeps answering status / events / result
        across a restart, replayed from its on-disk event log."""
        store_dir = tmp_path / "store"
        state_dir = tmp_path / "state"
        first = self._service(store_dir, state_dir)
        job, _ = first.submit(_request())
        _wait_terminal(first, job.id)
        done_result = first.job(job.id).execution.result
        done_events = first.job(job.id).execution.events_snapshot()
        first.shutdown()

        second = self._service(store_dir, state_dir)
        assert second.resumed_executions == 0  # nothing to re-run
        status = second.status(job.id)
        assert status["state"] == "done"
        restored = second.job(job.id).execution
        assert restored.events_snapshot() == done_events
        assert _physics(restored.result.to_dict()) == _physics(
            done_result.to_dict()
        )
        second.shutdown()

    def test_cancelled_queued_job_stays_cancelled(self, tmp_path):
        store_dir = tmp_path / "store"
        state_dir = tmp_path / "state"
        first = self._service(store_dir, state_dir, start_executor=False)
        job, _ = first.submit(_request())
        first.cancel(job.id)

        second = self._service(store_dir, state_dir, start_executor=False)
        assert second.status(job.id)["state"] == "cancelled"
        assert second.resumed_executions == 0

    def test_interrupted_running_job_resumes_from_store(self, tmp_path):
        """The mid-sweep crash: state 'running' journaled, one point
        already in the store.  The restart re-enqueues the execution
        and the finished point replays as a cache hit."""
        store_dir = tmp_path / "store"
        state_dir = tmp_path / "state"
        first = self._service(store_dir, state_dir)
        job, _ = first.submit(_request())
        _wait_terminal(first, job.id)
        first.shutdown()
        assert len(ResultStore(store_dir)) == 2  # both points landed

        # forge the crash: rewrite the journal as if the terminal
        # state never landed (killed while 'running')
        journal_path = state_dir / "journal.ndjson"
        lines = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
            if line
        ]
        kept = [
            rec
            for rec in lines
            if not (
                rec.get("rec") == "state"
                and rec.get("state") == "done"
            )
        ]
        journal_path.write_text(
            "".join(json.dumps(rec) + "\n" for rec in kept)
        )

        second = self._service(store_dir, state_dir)
        assert second.resumed_executions == 1
        status = _wait_terminal(second, job.id)
        assert status["state"] == "done"
        assert status["cache_hits"] == 2  # fully replayed, zero re-sim
        result = second.job(job.id).execution.result
        offline = tiny_study().run(workers=1)
        assert _physics(result.to_dict()) == _physics(offline.to_dict())
        second.shutdown()
