"""Service CLI verbs driven through ``main()`` against a live server."""

import json

import pytest

from repro.cli import main
from repro.service import ResultStore

from .conftest import tiny_study


@pytest.fixture()
def served(service, tmp_path):
    """(client, server, argv tail selecting this server)."""
    client, server = service
    return client, server, ["--server", client.address]


def _study_file(tmp_path) -> str:
    """Path for the input study — OUTSIDE the store root (the service
    fixture uses ``tmp_path`` as its cache dir, and any ``*.json``
    there would be counted as a store entry)."""
    inputs = tmp_path / "inputs"
    inputs.mkdir(exist_ok=True)
    return str(inputs / "study.json")


def _submit_id(capsys, served, study_path, extra=()):
    _, _, server_args = served
    rc = main(["submit", study_path, *extra, *server_args])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    return captured.out.strip().splitlines()[-1], captured


class TestSubmitWatch:
    def test_submit_prints_bare_job_id(self, capsys, served, tmp_path):
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        job_id, captured = _submit_id(capsys, served, study_path)
        # stdout is exactly the id, so JOB=$(submit ...) works in shell
        assert captured.out.strip() == job_id
        assert job_id.startswith("j")
        assert "point(s)" in captured.err

    def test_watch_streams_and_writes_results(
        self, capsys, served, tmp_path
    ):
        client, _, server_args = served
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        job_id, _ = _submit_id(capsys, served, study_path)
        out_file = tmp_path / "result.json"
        rc = main(
            ["watch", job_id, "--out", str(out_file), *server_args]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "tiny service study" in captured.out
        assert f"[{tiny_study().num_points()}/" in captured.err
        saved = json.loads(out_file.read_text())
        assert saved["name"] == "tiny"

    def test_submit_watch_combined(self, capsys, served, tmp_path):
        _, _, server_args = served
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        rc = main(["submit", study_path, "--watch", *server_args])
        captured = capsys.readouterr()
        assert rc == 0
        assert "tiny service study" in captured.out

    def test_watch_unknown_job_fails_fast(self, capsys, served):
        _, _, server_args = served
        assert main(["watch", "j999999", *server_args]) == 2
        assert "error" in capsys.readouterr().err

    def test_status_lists_jobs(self, capsys, served, tmp_path):
        _, _, server_args = served
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        job_id, _ = _submit_id(capsys, served, study_path)
        main(["watch", job_id, *server_args])
        capsys.readouterr()
        assert main(["status", *server_args]) == 0
        listing = capsys.readouterr().out
        assert job_id in listing and "done" in listing
        assert main(["status", job_id, *server_args]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["id"] == job_id
        assert detail["state"] == "done"

    def test_unreachable_server_is_an_error(self, capsys):
        rc = main(
            ["status", "--server", "http://127.0.0.1:1"]  # nothing there
        )
        assert rc == 2
        assert "cannot reach" in capsys.readouterr().err


class TestCacheVerb:
    def test_stats_reports_mix_and_warns_on_stale(
        self, capsys, served, tmp_path
    ):
        client, server, server_args = served
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        job_id, _ = _submit_id(capsys, served, study_path)
        main(["watch", job_id, *server_args])
        capsys.readouterr()
        cache_dir = str(server.service.store.root)
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries            2" in out
        assert "v3: 2" in out or "version mix" in out
        assert "WARNING" not in out
        # plant a stale-version entry and expect the warning
        store = ResultStore(cache_dir)
        payload = json.loads(
            next(iter(store.root.glob("*.json"))).read_text()
        )
        payload["meta"]["engine"] = 1
        (store.root / "stale.json").write_text(json.dumps(payload))
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_clear(self, capsys, served, tmp_path):
        client, server, server_args = served
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        job_id, _ = _submit_id(capsys, served, study_path)
        main(["watch", job_id, *server_args])
        capsys.readouterr()
        cache_dir = str(server.service.store.root)
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert len(ResultStore(cache_dir)) == 0

    def test_prune_requires_bounds(self, capsys, tmp_path):
        rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "prune needs" in capsys.readouterr().err

    def test_prune_evicts(self, capsys, served, tmp_path):
        client, server, server_args = served
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        job_id, _ = _submit_id(capsys, served, study_path)
        main(["watch", job_id, *server_args])
        capsys.readouterr()
        cache_dir = str(server.service.store.root)
        rc = main(
            ["cache", "prune", "--cache-dir", cache_dir,
             "--max-entries", "1"]
        )
        assert rc == 0
        assert "evicted 1" in capsys.readouterr().out


class TestRunProgress:
    def test_run_progress_lines(self, capsys, tmp_path):
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        assert main(["run", study_path, "--progress"]) == 0
        err = capsys.readouterr().err
        n = tiny_study().num_points()
        assert f"[{n}/{n}]" in err
        assert "(fresh)" in err

    def test_run_progress_tags_cache_replays(self, capsys, tmp_path):
        study_path = _study_file(tmp_path)
        tiny_study().save(study_path)
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["run", study_path, "--cache-dir", cache_dir, "--progress"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["run", study_path, "--cache-dir", cache_dir, "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "(cache)" in err and "(fresh)" not in err
