"""Scheduler and execution semantics: dedupe, fairness, cancellation."""

import threading

import pytest

from repro.api import build_study
from repro.service import (
    BusyError,
    JobRequest,
    Scheduler,
)


def _request(client="", priority=0, metrics=(), scale="quick"):
    return JobRequest(
        study=build_study("smoke", scale=scale).to_data(),
        client=client,
        priority=priority,
        metrics=tuple(metrics),
    )


class TestJobRequest:
    def test_round_trip(self):
        req = _request(client="alice", priority=2, metrics=("link_util",))
        back = JobRequest.from_json(req.to_json())
        assert back == req

    def test_rejects_empty_study(self):
        with pytest.raises(ValueError):
            JobRequest(study={})

    def test_rejects_wrong_schema(self):
        data = _request().to_data()
        data["schema"] = "something/else"
        with pytest.raises(ValueError):
            JobRequest.from_data(data)

    def test_execution_key_identity(self):
        assert _request().execution_key() == _request().execution_key()
        # tenancy fields do not change the computation
        assert (
            _request(client="a", priority=5).execution_key()
            == _request(client="b").execution_key()
        )

    def test_execution_key_tracks_physics(self):
        base = _request().execution_key()
        other = JobRequest(
            study=build_study("resilience_smoke", scale="quick").to_data()
        )
        assert other.execution_key() != base
        # the metrics axis changes config_key, hence the key
        assert _request(metrics=("link_util",)).execution_key() != base

    def test_invalid_study_payload_raises_on_build(self):
        req = JobRequest(study={"schema": "repro.study/v1", "bogus": 1})
        with pytest.raises((ValueError, KeyError, TypeError)):
            req.build_study()


class TestSchedulerDedupe:
    def test_identical_requests_share_one_execution(self):
        sched = Scheduler()
        job1, attached1 = sched.submit(_request(client="a"))
        job2, attached2 = sched.submit(_request(client="b"))
        assert not attached1 and attached2
        assert job1.execution is job2.execution
        assert job1.id != job2.id
        assert job2.status()["attached_to"] == job1.id
        # one queued execution, two jobs
        stats = sched.stats()
        assert stats["jobs"] == 2
        assert stats["queued_executions"] == 1

    def test_different_requests_queue_separately(self):
        sched = Scheduler()
        _, a1 = sched.submit(_request())
        _, a2 = sched.submit(_request(metrics=("link_util",)))
        assert not a1 and not a2
        assert sched.stats()["queued_executions"] == 2

    def test_finished_execution_not_reattached(self):
        sched = Scheduler()
        job, _ = sched.submit(_request())
        exe = sched.next_execution(timeout=1)
        exe.mark_running()
        exe.finish(result=_DummyResult(), cache_stats={})
        sched.finish_execution(exe)
        job2, attached = sched.submit(_request())
        assert not attached
        assert job2.execution is not exe


class _DummyResult:
    def to_dict(self):
        return {"dummy": True}


class TestSchedulerOrdering:
    def test_priority_then_fifo(self):
        sched = Scheduler()
        low1, _ = sched.submit(_request(priority=0))
        high, _ = sched.submit(_request(priority=5, metrics=("misroute",)))
        low2, _ = sched.submit(_request(priority=0, metrics=("link_util",)))
        order = [sched.next_execution(timeout=1) for _ in range(3)]
        assert order[0] is high.execution
        assert order[1] is low1.execution
        assert order[2] is low2.execution

    def test_queued_ahead_counts_earlier_executions(self):
        sched = Scheduler()
        first, _ = sched.submit(_request())
        second, _ = sched.submit(_request(metrics=("link_util",)))
        assert sched.queued_ahead(first) == 0
        assert sched.queued_ahead(second) == 1

    def test_next_execution_times_out_empty(self):
        assert Scheduler().next_execution(timeout=0.05) is None

    def test_close_unblocks(self):
        sched = Scheduler()
        got = []

        def worker():
            got.append(sched.next_execution(timeout=10))

        thread = threading.Thread(target=worker)
        thread.start()
        sched.close()
        thread.join(timeout=5)
        assert got == [None]
        with pytest.raises(BusyError):
            sched.submit(_request())


class TestFairness:
    def test_per_client_cap(self):
        sched = Scheduler(max_inflight_per_client=2)
        sched.submit(_request(client="a"))
        sched.submit(_request(client="a", metrics=("link_util",)))
        with pytest.raises(BusyError):
            sched.submit(_request(client="a", metrics=("misroute",)))
        # a different client still gets in
        sched.submit(_request(client="b", metrics=("misroute",)))

    def test_cancel_frees_cap(self):
        sched = Scheduler(max_inflight_per_client=1)
        job, _ = sched.submit(_request(client="a"))
        sched.cancel(job.id)
        sched.submit(_request(client="a", metrics=("link_util",)))

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            Scheduler(max_inflight_per_client=0)


class TestCancellation:
    def test_cancel_queued_job_is_terminal(self):
        sched = Scheduler()
        job, _ = sched.submit(_request())
        sched.cancel(job.id)
        assert job.state == "cancelled"
        events = job.execution.events_snapshot()
        assert events[-1]["event"] == "cancelled"
        # the queued execution was retired: nothing left to pop
        assert sched.next_execution(timeout=0.05) is None

    def test_cancel_one_of_two_subscribers_keeps_execution(self):
        sched = Scheduler()
        job1, _ = sched.submit(_request(client="a"))
        job2, _ = sched.submit(_request(client="b"))
        sched.cancel(job2.id)
        assert job2.state == "cancelled"
        assert job1.state == "queued"
        assert not job1.execution.cancel_event.is_set()
        # cancelling the last subscriber aborts the execution
        sched.cancel(job1.id)
        assert job1.execution.cancel_event.is_set()

    def test_cancel_is_idempotent(self):
        sched = Scheduler()
        job, _ = sched.submit(_request())
        sched.cancel(job.id)
        again = sched.cancel(job.id)
        assert again.state == "cancelled"

    def test_unknown_job_raises_keyerror(self):
        with pytest.raises(KeyError):
            Scheduler().get("j999999")


class TestExecutionEvents:
    def test_event_log_is_append_only_with_seq(self):
        sched = Scheduler()
        job, _ = sched.submit(_request())
        exe = sched.next_execution(timeout=1)
        exe.mark_running()
        exe.fail("boom")
        events = exe.events_snapshot()
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "start"
        assert events[-1] == {
            "schema": events[-1]["schema"],
            "seq": events[-1]["seq"],
            "event": "error",
            "error": "boom",
        }
        assert job.state == "error"

    def test_wait_events_blocks_then_drains(self):
        sched = Scheduler()
        sched.submit(_request())
        exe = sched.next_execution(timeout=1)

        def emit():
            exe.mark_running()

        timer = threading.Timer(0.1, emit)
        timer.start()
        events = exe.wait_events(0, timeout=5)
        timer.join()
        assert events and events[0]["event"] == "start"
        # terminal executions return the tail without blocking
        exe.fail("x")
        assert exe.wait_events(len(exe.events_snapshot()), timeout=0.05) == []
