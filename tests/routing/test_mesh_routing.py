"""Standalone mesh XY routing and the single-switch star."""

import random

from repro.routing import (
    SwitchStarRouting,
    XYMeshRouting,
    verify_deadlock_free,
)
from repro.routing.base import path_latency, validate_path
from repro.topology.mesh import (
    MeshSpec,
    build_mesh,
    build_switch_with_terminals,
)


class TestXYMeshRouting:
    def test_all_pairs_valid(self):
        block = build_mesh(MeshSpec(dim=4))
        r = XYMeshRouting(block)
        nodes = block.graph.terminals()
        for s in nodes:
            for d in nodes:
                if s != d:
                    validate_path(
                        block.graph, s, d, r.route(s, d, random.Random(0))
                    )

    def test_single_vc_deadlock_free(self):
        block = build_mesh(MeshSpec(dim=4))
        r = XYMeshRouting(block)
        assert r.num_vcs == 1
        assert verify_deadlock_free(block.graph, r).acyclic

    def test_path_latency_helper(self):
        block = build_mesh(MeshSpec(dim=3))
        r = XYMeshRouting(block)
        path = r.route(block.grid[0][0], block.grid[2][2], random.Random(0))
        # 4 hops x (1 wire + 1 router)
        assert path_latency(block.graph, path) == 8


class TestSwitchStar:
    def test_voq_assignment(self):
        sw = build_switch_with_terminals(8)
        r = SwitchStarRouting(sw, voq_vcs=4)
        assert r.num_vcs == 4
        vcs = set()
        for d in sw.terminals:
            if d == sw.terminals[0]:
                continue
            path = r.route(sw.terminals[0], d, random.Random(0))
            assert len(path) == 2
            vcs.add(path[0][1])
        assert vcs == {0, 1, 2, 3}

    def test_deadlock_free(self):
        sw = build_switch_with_terminals(4)
        r = SwitchStarRouting(sw)
        assert verify_deadlock_free(sw.graph, r).acyclic

    def test_voq_capped_by_terminals(self):
        sw = build_switch_with_terminals(2)
        assert SwitchStarRouting(sw, voq_vcs=8).num_vcs == 2
