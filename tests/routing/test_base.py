"""validate_path / path_latency helpers."""

import pytest

from repro.routing.base import path_latency, validate_path
from repro.topology.graph import NetworkGraph


@pytest.fixture()
def line():
    g = NetworkGraph("line")
    for i in range(3):
        g.add_node("core", chip=i)
    g.add_channel(0, 1, latency=2)
    g.add_channel(1, 2, latency=3)
    return g


def test_valid_path_passes(line):
    path = [(line.link_between(0, 1), 0), (line.link_between(1, 2), 0)]
    validate_path(line, 0, 2, path, num_vcs=1)


def test_wrong_start_detected(line):
    path = [(line.link_between(1, 2), 0)]
    with pytest.raises(ValueError, match="starts at"):
        validate_path(line, 0, 2, path)


def test_wrong_end_detected(line):
    path = [(line.link_between(0, 1), 0)]
    with pytest.raises(ValueError, match="ends at"):
        validate_path(line, 0, 2, path)


def test_disconnected_hop_detected(line):
    path = [(line.link_between(1, 2), 0), (line.link_between(0, 1), 0)]
    with pytest.raises(ValueError):
        validate_path(line, 1, 1, path)


def test_vc_out_of_range_detected(line):
    path = [(line.link_between(0, 1), 5)]
    with pytest.raises(ValueError, match="vc"):
        validate_path(line, 0, 1, path, num_vcs=2)


def test_bad_link_id_detected(line):
    with pytest.raises(ValueError, match="out of range"):
        validate_path(line, 0, 1, [(99, 0)])


def test_empty_path_same_node(line):
    validate_path(line, 1, 1, [])
    with pytest.raises(ValueError):
        validate_path(line, 0, 1, [])


def test_path_latency_sums_wire_and_router(line):
    path = [(line.link_between(0, 1), 0), (line.link_between(1, 2), 0)]
    assert path_latency(line, path, router_latency=1) == (2 + 1) + (3 + 1)
    assert path_latency(line, path, router_latency=0) == 5
