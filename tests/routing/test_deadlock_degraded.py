"""Deadlock verification on irregular and degraded graphs.

The CDG checker was historically exercised only on pristine topologies;
these tests cover the degraded shapes the fault subsystem produces:
removed links, isolated routers, partitioned terminal sets, and the
fault-aware repair routing on top of them — including a deliberately
cyclic routing to prove the verifier still *finds* cycles on irregular
graphs.
"""

import random

import pytest

from repro.faults import FaultAwareRouting, FaultSpec, degrade
from repro.routing import verify_deadlock_free
from repro.routing.base import RoutingAlgorithm
from repro.routing.deadlock import channel_dependency_graph
from repro.topology.graph import NetworkGraph
from repro.topology.mesh import MeshSpec, build_mesh
from repro.routing.mesh import XYMeshRouting


def ring_graph(n=4):
    """A unidirectional-dependency-prone ring of n terminals."""
    g = NetworkGraph("ring")
    for i in range(n):
        g.add_node("core", chip=i)
    for i in range(n):
        g.add_channel(i, (i + 1) % n, latency=1)
    g.validate()
    return g


class RingRouting(RoutingAlgorithm):
    """Always route clockwise on VC 0 — cyclic by construction."""

    num_vcs = 1
    is_deterministic = True

    def __init__(self, graph):
        self.graph = graph

    def route(self, src, dst, rng):
        hops = []
        cur = src
        n = self.graph.num_nodes
        while cur != dst:
            nxt = (cur + 1) % n
            hops.append((self.graph.link_between(cur, nxt), 0))
            cur = nxt
        return hops


class TestVerifierOnIrregularGraphs:
    def test_cyclic_routing_on_ring_is_detected(self):
        g = ring_graph(4)
        report = verify_deadlock_free(g, RingRouting(g))
        assert not report.acyclic
        assert report.cycle  # a concrete witness cycle is returned
        assert "DEADLOCK RISK" in report.describe(g)

    def test_partitioned_pairs_may_be_skipped(self):
        """A routing that yields nothing for unreachable pairs must not
        break the verifier (that is how FaultAwareRouting reports dead
        or partitioned pairs)."""
        g = ring_graph(4)

        class HalfMute(RingRouting):
            def enumerate_routes(self, src, dst):
                if dst % 2:  # pretend odd nodes are unreachable
                    return
                yield self.route(src, dst, None)

        cdg, checked = channel_dependency_graph(g, HalfMute(g))
        assert checked == 12  # all ordered pairs still enumerated
        # only even destinations contributed channels
        assert cdg.number_of_nodes() > 0


class TestDegradedMesh:
    @pytest.fixture(scope="class")
    def mesh(self):
        return build_mesh(MeshSpec(dim=4, chiplet_dim=2))

    def test_xy_on_degraded_mesh_via_fault_wrapper(self, mesh):
        # sever two channels of the mesh; XY routes crossing them get
        # repaired, everything stays deadlock free
        graph = mesh.graph
        a, b = mesh.grid[0][0], mesh.grid[0][1]
        c, d = mesh.grid[2][1], mesh.grid[2][2]
        deg = degrade(
            mesh,
            FaultSpec(
                model="fixed", failed_channels=((a, b), (c, d))
            ),
        )
        fr = FaultAwareRouting(XYMeshRouting(mesh), deg)
        report = verify_deadlock_free(graph, fr)
        assert report.acyclic, report.describe(graph)
        assert report.pairs_checked == 16 * 15

    def test_isolated_router_skips_cleanly(self, mesh):
        # cut a corner node off entirely: its pairs are skipped, the
        # remaining routing is still verified and acyclic
        graph = mesh.graph
        corner = mesh.grid[0][0]
        channels = tuple(
            (corner, peer) for peer in graph.neighbors_out(corner)
        )
        deg = degrade(
            mesh, FaultSpec(model="fixed", failed_channels=channels)
        )
        fr = FaultAwareRouting(XYMeshRouting(mesh), deg)
        assert not deg.reachable(corner, mesh.grid[1][1])
        report = verify_deadlock_free(graph, fr)
        assert report.acyclic, report.describe(graph)
        # the isolated router contributes no channels
        for lid, _vc in report.cycle or []:
            link = graph.links[lid]
            assert corner not in (link.src, link.dst)

    def test_repair_layer_is_vc_disjoint_from_base(self, mesh):
        graph = mesh.graph
        a, b = mesh.grid[1][1], mesh.grid[1][2]
        deg = degrade(
            mesh, FaultSpec(model="fixed", failed_channels=((a, b),))
        )
        base = XYMeshRouting(mesh)
        fr = FaultAwareRouting(base, deg)
        cdg, _ = channel_dependency_graph(graph, fr)
        base_vcs = {vc for _l, vc in cdg.nodes if vc < base.num_vcs}
        repair_vcs = {vc for _l, vc in cdg.nodes if vc >= base.num_vcs}
        assert repair_vcs == {fr.repair_vc}
        # no dependency edge crosses between the two VC layers within
        # one packet's path (paths are entirely base or entirely repair)
        for (l1, v1), (l2, v2) in cdg.edges:
            assert (v1 < base.num_vcs) == (v2 < base.num_vcs)
