"""Switch-less routing: Algorithm 1 structure, VC policies, deadlock.

The deadlock section encodes the reproduction's central finding about
Sec. IV-B (see EXPERIMENTS.md): the baseline VC scheme is acyclic
everywhere; the reduced scheme is acyclic on IO-router C-groups (where
Property 1(c1) literally holds) and *cyclic* on mesh C-groups with
corner chips — pinned here as expected behaviour, not an accident.
"""

import random

import pytest

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import SwitchlessRouting, verify_deadlock_free
from repro.routing.base import validate_path


def sample_pairs(sys, n=250, seed=0):
    rng = random.Random(seed)
    terms = sys.graph.terminals()
    out = []
    while len(out) < n:
        s, d = rng.choice(terms), rng.choice(terms)
        if s != d:
            out.append((s, d))
    return out


ALL_MODES = [
    ("baseline", "minimal", "any"),
    ("baseline", "valiant", "any"),
    ("reduced", "minimal", "any"),
    ("reduced", "valiant", "any"),
    ("reduced", "valiant", "lower"),
]


class TestPathValidity:
    @pytest.mark.parametrize("policy,mode,scope", ALL_MODES)
    def test_all_paths_valid(self, small_switchless, policy, mode, scope):
        r = SwitchlessRouting(
            small_switchless, mode, policy=policy, misroute_scope=scope
        )
        rng = random.Random(1)
        for s, d in sample_pairs(small_switchless, 150):
            path = r.route(s, d, rng)
            validate_path(small_switchless.graph, s, d, path, num_vcs=r.num_vcs)

    @pytest.mark.parametrize("policy,mode,scope", ALL_MODES)
    def test_io_router_paths_valid(
        self, small_switchless_io, policy, mode, scope
    ):
        r = SwitchlessRouting(
            small_switchless_io, mode, policy=policy, misroute_scope=scope
        )
        rng = random.Random(2)
        for s, d in sample_pairs(small_switchless_io, 150):
            path = r.route(s, d, rng)
            validate_path(
                small_switchless_io.graph, s, d, path, num_vcs=r.num_vcs
            )


class TestAlgorithmOneStructure:
    def test_minimal_channel_counts(self, small_switchless):
        """Minimal routes: <= 1 global, <= 2 local channels (Alg. 1)."""
        sys = small_switchless
        r = SwitchlessRouting(sys, "minimal")
        rng = random.Random(3)
        for s, d in sample_pairs(sys, 200):
            classes = [sys.graph.links[l].klass for l, _ in r.route(s, d, rng)]
            assert classes.count("global") <= 1
            assert classes.count("local") <= 2
            inter = sys.group_of(s) != sys.group_of(d)
            assert classes.count("global") == (1 if inter else 0)

    def test_valiant_channel_counts(self, small_switchless):
        sys = small_switchless
        r = SwitchlessRouting(sys, "valiant")
        rng = random.Random(4)
        for s, d in sample_pairs(sys, 200):
            classes = [sys.graph.links[l].klass for l, _ in r.route(s, d, rng)]
            assert classes.count("global") <= 2
            assert classes.count("local") <= 4

    def test_intra_cgroup_stays_local(self, small_switchless):
        sys = small_switchless
        r = SwitchlessRouting(sys, "minimal")
        cg = sys.cgroup(0, 0)
        s, d = cg.nodes[0], cg.nodes[5]
        classes = [
            sys.graph.links[l].klass
            for l, _ in r.route(s, d, random.Random(0))
        ]
        assert set(classes) <= {"onchip", "sr"}

    def test_valiant_spreads_over_wgroups(self, small_switchless):
        sys = small_switchless
        r = SwitchlessRouting(sys, "valiant")
        rng = random.Random(5)
        s = sys.group_nodes(0)[0]
        d = sys.group_nodes(1)[0]
        mids = set()
        for _ in range(200):
            path = r.route(s, d, rng)
            ws = {sys.group_of(sys.graph.links[l].dst) for l, _ in path}
            mids |= ws - {0, 1}
        assert len(mids) >= sys.num_wgroups - 3


class TestVCCounts:
    """The paper's headline: one extra VC vs the traditional Dragonfly."""

    def test_baseline_counts(self, small_switchless):
        assert SwitchlessRouting(small_switchless, "minimal").num_vcs == 4
        assert SwitchlessRouting(small_switchless, "valiant").num_vcs == 6

    def test_reduced_counts(self, small_switchless):
        assert SwitchlessRouting(
            small_switchless, "minimal", policy="reduced"
        ).num_vcs == 3
        assert SwitchlessRouting(
            small_switchless, "valiant", policy="reduced",
            misroute_scope="any",
        ).num_vcs == 4
        assert SwitchlessRouting(
            small_switchless, "valiant", policy="reduced",
            misroute_scope="lower",
        ).num_vcs == 3


class TestDeadlock:
    def test_baseline_minimal_acyclic(self, small_switchless):
        r = SwitchlessRouting(small_switchless, "minimal")
        rep = verify_deadlock_free(small_switchless.graph, r, max_pairs=800)
        assert rep.acyclic, rep.describe(small_switchless.graph)

    def test_baseline_valiant_acyclic(self, small_switchless):
        r = SwitchlessRouting(small_switchless, "valiant")
        rep = verify_deadlock_free(small_switchless.graph, r, max_pairs=250)
        assert rep.acyclic

    def test_reduced_minimal_acyclic_on_io_router(self, small_switchless_io):
        """Constructive proof of the paper's 3-VC claim (Fig. 8(a))."""
        r = SwitchlessRouting(small_switchless_io, "minimal", policy="reduced")
        rep = verify_deadlock_free(
            small_switchless_io.graph, r, max_pairs=1500
        )
        assert rep.acyclic

    def test_reduced_valiant_any_acyclic_on_io_router(
        self, small_switchless_io
    ):
        r = SwitchlessRouting(
            small_switchless_io, "valiant", policy="reduced",
            misroute_scope="any",
        )
        rep = verify_deadlock_free(small_switchless_io.graph, r, max_pairs=400)
        assert rep.acyclic

    def test_reduced_cyclic_on_mesh_cgroups(self, small_switchless):
        """Documented finding: corner-chip deliveries must share boundary
        links with transit walks, so no strict label order can realise
        Property 1(c1) on a plain mesh and the 3-VC scheme has CDG
        cycles there.  If this ever turns acyclic, the routing changed
        and EXPERIMENTS.md needs updating."""
        r = SwitchlessRouting(small_switchless, "minimal", policy="reduced")
        rep = verify_deadlock_free(small_switchless.graph, r, max_pairs=2500)
        assert not rep.acyclic

    def test_lower_scope_fallback_counted(self, small_switchless):
        r = SwitchlessRouting(
            small_switchless, "valiant", policy="reduced",
            misroute_scope="lower",
        )
        rng = random.Random(7)
        for s, d in sample_pairs(small_switchless, 300):
            r.route(s, d, rng)
        # some source/destination pairs have no monotone intermediate
        assert r.fallback_count > 0


class TestArgs:
    def test_bad_args(self, small_switchless):
        with pytest.raises(ValueError):
            SwitchlessRouting(small_switchless, "wild")
        with pytest.raises(ValueError):
            SwitchlessRouting(small_switchless, "minimal", policy="magic")
        with pytest.raises(ValueError):
            SwitchlessRouting(
                small_switchless, "minimal", misroute_scope="upper"
            )
