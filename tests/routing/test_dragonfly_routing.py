"""Dragonfly minimal/Valiant routing: validity, structure, deadlock."""

import random

import pytest

from repro.routing import DragonflyRouting, verify_deadlock_free
from repro.routing.base import validate_path


def sample_pairs(sys, n=300, seed=0):
    rng = random.Random(seed)
    terms = sys.graph.terminals()
    out = []
    while len(out) < n:
        s, d = rng.choice(terms), rng.choice(terms)
        if s != d:
            out.append((s, d))
    return out


class TestMinimal:
    def test_paths_valid(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "minimal")
        for s, d in sample_pairs(radix8_dragonfly):
            path = r.route(s, d, random.Random(0))
            validate_path(radix8_dragonfly.graph, s, d, path, num_vcs=r.num_vcs)

    def test_hop_structure(self, radix8_dragonfly):
        """t-l?-g?-l?-t: at most 1 global, 2 locals, 2 terminal hops."""
        sys = radix8_dragonfly
        r = DragonflyRouting(sys, "minimal")
        for s, d in sample_pairs(sys, 200):
            path = r.route(s, d, random.Random(0))
            classes = [sys.graph.links[l].klass for l, _ in path]
            assert classes.count("global") <= 1
            assert classes.count("local") <= 2
            assert classes.count("terminal") == 2
            inter = sys.group_of(s) != sys.group_of(d)
            assert classes.count("global") == (1 if inter else 0)

    def test_vcs_nondecreasing(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "minimal")
        for s, d in sample_pairs(radix8_dragonfly, 100):
            vcs = [vc for _, vc in r.route(s, d, random.Random(0))]
            assert vcs == sorted(vcs)

    def test_deadlock_free(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "minimal")
        report = verify_deadlock_free(
            radix8_dragonfly.graph, r, max_pairs=600
        )
        assert report.acyclic, report.describe(radix8_dragonfly.graph)

    def test_two_vcs(self, radix8_dragonfly):
        assert DragonflyRouting(radix8_dragonfly, "minimal").num_vcs == 2


class TestValiant:
    def test_paths_valid(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "valiant")
        rng = random.Random(1)
        for s, d in sample_pairs(radix8_dragonfly, 200):
            path = r.route(s, d, rng)
            validate_path(radix8_dragonfly.graph, s, d, path, num_vcs=r.num_vcs)

    def test_at_most_two_globals(self, radix8_dragonfly):
        sys = radix8_dragonfly
        r = DragonflyRouting(sys, "valiant")
        rng = random.Random(2)
        for s, d in sample_pairs(sys, 200):
            classes = [sys.graph.links[l].klass for l, _ in r.route(s, d, rng)]
            assert classes.count("global") <= 2

    def test_intermediates_cover_groups(self, radix8_dragonfly):
        """Valiant must actually spread over intermediate groups."""
        sys = radix8_dragonfly
        r = DragonflyRouting(sys, "valiant")
        rng = random.Random(3)
        s = sys.terminals[0][0][0]
        d = sys.terminals[1][0][0]
        used = set()
        for _ in range(300):
            path = r.route(s, d, rng)
            groups = {
                sys.group_of(sys.graph.links[l].dst) for l, _ in path
            }
            used |= groups - {0, 1}
        assert len(used) >= sys.num_groups - 3

    def test_deadlock_free(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "valiant")
        report = verify_deadlock_free(
            radix8_dragonfly.graph, r, max_pairs=250
        )
        assert report.acyclic

    def test_three_vc_classes(self, radix8_dragonfly):
        assert DragonflyRouting(radix8_dragonfly, "valiant").num_vcs == 3


class TestVCSpread:
    def test_spread_multiplies_vcs(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "minimal", vc_spread=4)
        assert r.num_vcs == 8

    def test_spread_paths_valid_and_safe(self, radix8_dragonfly):
        r = DragonflyRouting(radix8_dragonfly, "valiant", vc_spread=2)
        rng = random.Random(5)
        for s, d in sample_pairs(radix8_dragonfly, 100):
            validate_path(
                radix8_dragonfly.graph, s, d, r.route(s, d, rng),
                num_vcs=r.num_vcs,
            )
        report = verify_deadlock_free(
            radix8_dragonfly.graph, r, max_pairs=200
        )
        assert report.acyclic

    def test_bad_args(self, radix8_dragonfly):
        with pytest.raises(ValueError):
            DragonflyRouting(radix8_dragonfly, "adaptive")
        with pytest.raises(ValueError):
            DragonflyRouting(radix8_dragonfly, "minimal", vc_spread=0)
