"""Property-based checks of the switch-less routing over random configs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import SwitchlessRouting
from repro.routing.base import validate_path


@st.composite
def small_configs(draw):
    mesh_dim = draw(st.integers(2, 4))
    num_local = draw(st.integers(1, 4))
    num_global = draw(st.integers(1, 3))
    max_w = (num_local + 1) * num_global + 1
    num_wgroups = draw(st.integers(2, min(5, max_w)))
    style = draw(st.sampled_from(["mesh", "io-router"]))
    return SwitchlessConfig(
        mesh_dim=mesh_dim,
        chiplet_dim=1,
        num_local=num_local,
        num_global=num_global,
        num_wgroups=num_wgroups,
        cgroup_style=style,
    )


@given(cfg=small_configs(), seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_routes_valid_on_random_configs(cfg, seed):
    """Any random small system: every sampled route is a connected walk
    with in-range VCs, for every policy/mode combination."""
    system = build_switchless(cfg)
    rng = random.Random(seed)
    terms = system.graph.terminals()
    pairs = [
        (rng.choice(terms), rng.choice(terms)) for _ in range(12)
    ]
    for policy, mode in (
        ("baseline", "minimal"),
        ("baseline", "valiant"),
        ("reduced", "minimal"),
        ("reduced", "valiant"),
    ):
        r = SwitchlessRouting(system, mode, policy=policy)
        for s, d in pairs:
            if s == d:
                continue
            path = r.route(s, d, rng)
            validate_path(system.graph, s, d, path, num_vcs=r.num_vcs)


@given(cfg=small_configs(), seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_minimal_visits_at_most_four_cgroups(cfg, seed):
    """Algorithm 1: a minimal route touches <= 4 C-groups."""
    system = build_switchless(cfg)
    rng = random.Random(seed)
    terms = system.graph.terminals()
    r = SwitchlessRouting(system, "minimal")
    for _ in range(10):
        s, d = rng.choice(terms), rng.choice(terms)
        if s == d:
            continue
        path = r.route(s, d, rng)
        cgroups = {system.location_of(s)}
        for lid, _vc in path:
            link = system.graph.links[lid]
            dst = link.dst
            if dst in system._node_loc:
                cgroups.add(system.location_of(dst))
        assert len(cgroups) <= 4


@given(cfg=small_configs(), seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_vcs_within_budget(cfg, seed):
    system = build_switchless(cfg)
    rng = random.Random(seed)
    terms = system.graph.terminals()
    for policy, mode in (("baseline", "valiant"), ("reduced", "valiant")):
        r = SwitchlessRouting(system, mode, policy=policy)
        for _ in range(8):
            s, d = rng.choice(terms), rng.choice(terms)
            if s == d:
                continue
            for _lid, vc in r.route(s, d, rng):
                assert 0 <= vc < r.num_vcs
