"""The CDG checker itself: must find cycles where they exist."""

import pytest

from repro.routing.deadlock import verify_deadlock_free
from repro.topology.graph import NetworkGraph


def make_ring(n=4):
    g = NetworkGraph("ring")
    for i in range(n):
        g.add_node("core", chip=i)
    for i in range(n):
        g.add_channel(i, (i + 1) % n, latency=1, klass="sr")
    return g


class ClockwiseRouting:
    """Single-VC clockwise ring routing — the textbook deadlock example."""

    num_vcs = 1

    def __init__(self, g, n):
        self.g, self.n = g, n

    def route(self, src, dst, rng):
        path, cur = [], src
        while cur != dst:
            nxt = (cur + 1) % self.n
            path.append((self.g.link_between(cur, nxt), 0))
            cur = nxt
        return path

    def enumerate_routes(self, src, dst):
        yield self.route(src, dst, None)


class DatelineRouting(ClockwiseRouting):
    """Same ring with a VC dateline at node 0 — deadlock free."""

    num_vcs = 2

    def route(self, src, dst, rng):
        path, cur, vc = [], src, 0
        while cur != dst:
            nxt = (cur + 1) % self.n
            if nxt == 0:
                vc = 1
            path.append((self.g.link_between(cur, nxt), vc))
            cur = nxt
        return path


def test_detects_ring_cycle():
    g = make_ring()
    report = verify_deadlock_free(g, ClockwiseRouting(g, 4))
    assert not report.acyclic
    assert report.cycle is not None
    assert len(report.cycle) == 4
    assert "DEADLOCK" in report.describe(g)


def test_dateline_breaks_cycle():
    g = make_ring()
    report = verify_deadlock_free(g, DatelineRouting(g, 4))
    assert report.acyclic
    assert bool(report) is True
    assert "deadlock-free" in report.describe()


def test_pair_restriction():
    """Cycles need all-to-all; a single pair is trivially acyclic."""
    g = make_ring()
    report = verify_deadlock_free(
        g, ClockwiseRouting(g, 4), pairs=[(0, 2)]
    )
    assert report.acyclic
    assert report.pairs_checked == 1


def test_invalid_paths_caught():
    g = make_ring()

    class Broken(ClockwiseRouting):
        def route(self, src, dst, rng):
            return [(0, 0)]  # ignores src

    with pytest.raises(ValueError):
        verify_deadlock_free(g, Broken(g, 4))
