"""FaultSpec validation, round-trips, and cache-key coverage."""

import pytest

from repro.engine import ExperimentSpec, ResultCache, point_key
from repro.faults import FaultSpec
from repro.network.stats import SimResult


def _mk(faults=None, **kw):
    kw.setdefault("topology", "switchless")
    kw.setdefault("topology_opts", {"preset": "radix8_equiv"})
    kw.setdefault("routing", "switchless")
    kw.setdefault("traffic", "uniform")
    kw.setdefault("rates", [0.1, 0.2])
    return ExperimentSpec.create(faults=faults, **kw)


class TestFaultSpec:
    def test_null_default(self):
        spec = FaultSpec()
        assert spec.is_null
        assert spec.to_data() == {}
        assert FaultSpec.from_opts({}) == spec

    def test_round_trip_all_models(self):
        specs = [
            FaultSpec(model="random", link_rate=0.05, die_rate=0.01, seed=3),
            FaultSpec(
                model="fixed",
                failed_channels=((1, 2), (7, 9)),
                failed_chips=(0, 4),
            ),
            FaultSpec(
                model="yield", defects_per_wafer=1.5,
                defect_radius_mm=12.0, seed=9,
            ),
        ]
        for spec in specs:
            assert FaultSpec.from_opts(spec.to_data()) == spec

    def test_from_opts_normalises_lists(self):
        spec = FaultSpec.from_opts(
            {"model": "fixed", "failed_channels": [[1, 2]],
             "failed_chips": [3]}
        )
        assert spec.failed_channels == ((1, 2),)
        assert spec.failed_chips == (3,)

    @pytest.mark.parametrize(
        "opts, match",
        [
            ({"model": "martian"}, "unknown fault model"),
            ({"model": "random", "link_rate": 1.5}, "link_rate"),
            ({"model": "random"}, "link_rate > 0 or die_rate > 0"),
            ({"model": "fixed"}, "failed_channels or failed_chips"),
            ({"model": "yield"}, "defects_per_wafer"),
            ({"model": "none", "bogus_knob": 1}, "unknown FaultSpec field"),
            (
                {"model": "fixed", "failed_channels": [[1, 1]]},
                "distinct nodes",
            ),
        ],
    )
    def test_validation(self, opts, match):
        with pytest.raises(ValueError, match=match):
            FaultSpec.from_opts(opts)

    def test_with_seed(self):
        spec = FaultSpec(model="random", link_rate=0.1, seed=1)
        assert spec.with_seed(2).seed == 2
        assert spec.with_seed(2).link_rate == spec.link_rate

    def test_describe_mentions_the_model(self):
        assert "random" in FaultSpec(model="random", link_rate=0.1).describe()
        assert "no faults" in FaultSpec().describe()


class TestExperimentSpecFaultAxis:
    def test_round_trip_through_data(self):
        spec = _mk(faults={"model": "random", "link_rate": 0.05, "seed": 2})
        clone = ExperimentSpec.from_data(spec.to_data())
        assert clone == spec
        assert clone.faults == spec.faults

    def test_old_files_without_faults_load_as_healthy(self):
        data = _mk().to_data()
        del data["faults"]
        assert ExperimentSpec.from_data(data) == _mk()

    def test_create_validates_fault_axis(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            _mk(faults={"model": "martian"})

    def test_with_faults_round_trip(self):
        healthy = _mk()
        faulty = healthy.with_faults({"model": "random", "link_rate": 0.1})
        assert faulty.faults and not healthy.faults
        assert faulty.with_faults(None) == healthy

    def test_describe_shows_faults(self):
        assert "random" in _mk(
            faults={"model": "random", "link_rate": 0.1}
        ).describe()


class TestCacheKeyCoverage:
    """A degraded run must never alias a cached healthy result."""

    def test_config_key_covers_faults(self):
        healthy = _mk()
        faulty = _mk(faults={"model": "random", "link_rate": 0.05})
        assert healthy.config_key() != faulty.config_key()

    def test_distinct_fault_seeds_hash_apart(self):
        a = _mk(faults={"model": "random", "link_rate": 0.05, "seed": 1})
        b = _mk(faults={"model": "random", "link_rate": 0.05, "seed": 2})
        assert a.config_key() != b.config_key()

    def test_point_keys_do_not_alias_in_the_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        healthy = _mk()
        faulty = _mk(faults={"model": "random", "link_rate": 0.05})
        res = SimResult(
            offered_rate=0.1, effective_offered=0.1, accepted_rate=0.1,
            avg_latency=10.0, p50_latency=10.0, p99_latency=12.0,
            packets_measured=5, packets_delivered=5, flits_ejected=20,
            active_chips=4, measure_cycles=100,
        )
        cache.put(point_key(healthy, 0.1), res)
        assert cache.get(point_key(faulty, 0.1)) is None
        assert cache.get(point_key(healthy, 0.1)) is not None

    def test_label_still_excluded_from_hash(self):
        faults = {"model": "random", "link_rate": 0.05}
        assert (
            _mk(faults=faults, label="a").config_key()
            == _mk(faults=faults, label="b").config_key()
        )
