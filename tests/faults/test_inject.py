"""Fault sampling: determinism, closure, and the yield/spatial model."""

import pytest

from repro.core import SwitchlessConfig, build_switchless
from repro.faults import FaultSpec, channel_reverse, sample_faults
from repro.layout import WaferMap
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly


@pytest.fixture(scope="module")
def system():
    return build_switchless(SwitchlessConfig.radix8_equiv())


class TestRandomModel:
    def test_same_seed_same_faults(self, system):
        spec = FaultSpec(model="random", link_rate=0.05, die_rate=0.02,
                         seed=5)
        assert sample_faults(system, spec) == sample_faults(system, spec)

    def test_different_seed_different_faults(self, system):
        a = sample_faults(
            system, FaultSpec(model="random", link_rate=0.05, seed=1)
        )
        b = sample_faults(
            system, FaultSpec(model="random", link_rate=0.05, seed=2)
        )
        assert a.failed_links != b.failed_links

    def test_channel_closure_kills_both_directions(self, system):
        fs = sample_faults(
            system, FaultSpec(model="random", link_rate=0.08, seed=3)
        )
        assert fs.failed_links
        for lid in fs.failed_links:
            assert channel_reverse(system.graph, lid) in fs.failed_links

    def test_rate_scales_failure_count(self, system):
        lo = sample_faults(
            system, FaultSpec(model="random", link_rate=0.02, seed=4)
        )
        hi = sample_faults(
            system, FaultSpec(model="random", link_rate=0.3, seed=4)
        )
        assert len(hi.failed_links) > len(lo.failed_links)

    def test_link_classes_filter(self, system):
        fs = sample_faults(
            system,
            FaultSpec(model="random", link_rate=1.0, seed=0,
                      link_classes=("global",)),
        )
        for lid in fs.failed_links:
            assert system.graph.links[lid].klass == "global"

    def test_die_closure_kills_nodes_and_attached_links(self, system):
        fs = sample_faults(
            system, FaultSpec(model="random", die_rate=0.05, seed=6)
        )
        assert fs.failed_chips
        graph = system.graph
        chips = graph.chips()
        for chip in fs.failed_chips:
            for nid in chips[chip]:
                assert nid in fs.failed_nodes
        for link in graph.links:
            if link.src in fs.failed_nodes or link.dst in fs.failed_nodes:
                assert link.id in fs.failed_links

    def test_null_spec_is_empty(self, system):
        assert sample_faults(system, FaultSpec()).is_empty


class TestFixedModel:
    def test_explicit_channel_and_chip(self, system):
        graph = system.graph
        link = next(l for l in graph.links if l.klass == "local")
        spec = FaultSpec(
            model="fixed",
            failed_channels=((link.src, link.dst),),
            failed_chips=(0,),
        )
        fs = sample_faults(system, spec)
        assert link.id in fs.failed_links
        assert channel_reverse(graph, link.id) in fs.failed_links
        assert 0 in fs.failed_chips

    def test_unknown_channel_rejected(self, system):
        spec = FaultSpec(model="fixed", failed_channels=((0, 10**6),))
        with pytest.raises(ValueError, match="no link"):
            sample_faults(system, spec)

    def test_unknown_chip_rejected(self, system):
        spec = FaultSpec(model="fixed", failed_chips=(10**6,))
        with pytest.raises(ValueError, match="does not exist"):
            sample_faults(system, spec)


class TestYieldModel:
    def test_deterministic_and_geometric(self, system):
        spec = FaultSpec(
            model="yield", defects_per_wafer=2.0, defect_radius_mm=10.0,
            seed=11,
        )
        a = sample_faults(system, spec)
        b = sample_faults(system, spec)
        assert a == b
        assert a.defects  # clusters were sampled and recorded
        wmap = WaferMap(system)
        for d in a.defects:
            assert 0 <= d.wafer < wmap.num_wafers

    def test_defects_kill_colocated_hardware(self, system):
        spec = FaultSpec(
            model="yield", defects_per_wafer=3.0, defect_radius_mm=15.0,
            seed=2,
        )
        fs = sample_faults(system, spec)
        wmap = WaferMap(system)
        # every die killed sits inside some defect disk of its wafer
        for chip in fs.failed_chips:
            site = wmap.chip_sites[chip]
            assert any(
                d.wafer == site.wafer
                and site.within(d.x_mm, d.y_mm, d.radius_mm)
                for d in fs.defects
            )

    def test_yield_needs_a_wafer_system(self):
        dfly = build_dragonfly(DragonflyConfig.radix8())
        spec = FaultSpec(
            model="yield", defects_per_wafer=1.0, seed=0
        )
        with pytest.raises(TypeError, match="wafer-integrated"):
            sample_faults(dfly, spec)


class TestWaferMap:
    def test_every_node_has_a_site_inside_its_wafer(self, system):
        wmap = WaferMap(system)
        assert set(wmap.sites) == {
            n.id for n in system.graph.nodes
        }
        cx, cy = wmap.wafer_center
        for site in wmap.sites.values():
            assert (
                (site.x_mm - cx) ** 2 + (site.y_mm - cy) ** 2
            ) <= wmap.wafer_radius_mm ** 2 * 1.01

    def test_wafer_count_matches_config(self, system):
        wmap = WaferMap(system)
        cfg = system.cfg
        assert wmap.num_wafers == cfg.num_cgroups // cfg.cgroups_per_wafer


def test_dragonfly_random_faults_work():
    """The random model is architecture-agnostic (baseline comparisons)."""
    dfly = build_dragonfly(DragonflyConfig.radix8())
    fs = sample_faults(
        dfly, FaultSpec(model="random", link_rate=0.1, seed=1)
    )
    assert fs.failed_links
    for lid in fs.failed_links:
        assert dfly.graph.links[lid].klass in ("sr", "local", "global")
