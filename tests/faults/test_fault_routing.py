"""Fault-aware routing: legality, repair VC discipline, deadlock freedom."""

import random

import pytest

from repro.core import SwitchlessConfig, build_switchless
from repro.faults import (
    FaultAwareRouting,
    FaultRoutingError,
    FaultSpec,
    degrade,
)
from repro.routing import SwitchlessRouting, verify_deadlock_free
from repro.routing.base import validate_path
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.routing.dragonfly import DragonflyRouting


@pytest.fixture(scope="module")
def system():
    return build_switchless(SwitchlessConfig.radix8_equiv())


def _wrapped(system, *, mode="minimal", **fault_opts):
    deg = degrade(system, FaultSpec.from_opts(fault_opts))
    base = SwitchlessRouting(system, mode)
    return FaultAwareRouting(base, deg), deg


def _sample_pairs(deg, rng, count):
    terms = deg.alive_terminals()
    pairs = []
    while len(pairs) < count:
        s, d = rng.sample(terms, 2)
        if deg.reachable(s, d):
            pairs.append((s, d))
    return pairs


class TestRouteLegality:
    def test_routes_avoid_failed_links_and_validate(self, system):
        fr, deg = _wrapped(
            system, model="random", link_rate=0.08, die_rate=0.02, seed=3
        )
        rng = random.Random(0)
        for s, d in _sample_pairs(deg, rng, 150):
            path = fr.route(s, d, rng)
            validate_path(system.graph, s, d, path, num_vcs=fr.num_vcs)
            assert deg.path_ok(path)
        assert fr.repaired_routes > 0  # some pairs really were severed

    def test_unaffected_pairs_keep_base_routes(self, system):
        fr, deg = _wrapped(
            system, model="random", link_rate=0.03, seed=4
        )
        base = SwitchlessRouting(system, "minimal")
        rng = random.Random(1)
        kept = 0
        for s, d in _sample_pairs(deg, rng, 100):
            base_path = base.route(s, d, rng)
            if deg.path_ok(base_path):
                assert fr.route(s, d, rng) == base_path
                kept += 1
        assert kept > 0

    def test_repair_paths_use_only_the_repair_vc(self, system):
        fr, deg = _wrapped(
            system, model="random", link_rate=0.08, seed=3
        )
        base = SwitchlessRouting(system, "minimal")
        rng = random.Random(2)
        repaired = 0
        for s, d in _sample_pairs(deg, rng, 200):
            if deg.path_ok(base.route(s, d, rng)):
                continue
            path = fr.route(s, d, rng)
            assert {vc for _l, vc in path} == {fr.repair_vc}
            repaired += 1
        assert repaired > 0

    def test_num_vcs_is_base_plus_one(self, system):
        fr, _ = _wrapped(system, model="random", link_rate=0.05, seed=1)
        assert fr.num_vcs == SwitchlessRouting(system, "minimal").num_vcs + 1

    def test_dead_endpoint_raises(self, system):
        fr, deg = _wrapped(system, model="fixed", failed_chips=(0,))
        dead = next(iter(deg.failed_nodes))
        alive = deg.alive_terminals()[0]
        with pytest.raises(FaultRoutingError, match="failed die"):
            fr.route(dead, alive, random.Random(0))

    def test_partitioned_pair_raises(self, system):
        graph = system.graph
        victim = system.cgroups[0][0].nodes[0]
        channels = tuple(
            (victim, peer) for peer in graph.neighbors_out(victim)
        )
        fr, deg = _wrapped(
            system, model="fixed", failed_channels=channels
        )
        other = next(t for t in deg.alive_terminals() if t != victim)
        with pytest.raises(FaultRoutingError, match="partition"):
            fr.route(victim, other, random.Random(0))
        # and the verifier's enumeration silently skips the pair
        assert list(fr.enumerate_routes(victim, other)) == []


class TestDeadlockFreedom:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_degraded_minimal_is_deadlock_free(self, system, seed):
        fr, _ = _wrapped(
            system, model="random", link_rate=0.08, die_rate=0.02,
            seed=seed,
        )
        report = verify_deadlock_free(system.graph, fr, max_pairs=400)
        assert report.acyclic, report.describe(system.graph)

    def test_degraded_valiant_is_deadlock_free(self, system):
        fr, _ = _wrapped(
            system, mode="valiant", model="random", link_rate=0.05, seed=5
        )
        report = verify_deadlock_free(system.graph, fr, max_pairs=250)
        assert report.acyclic, report.describe(system.graph)

    def test_degraded_dragonfly_is_deadlock_free(self):
        dfly = build_dragonfly(DragonflyConfig.radix8())
        deg = degrade(
            dfly, FaultSpec(model="random", link_rate=0.08, seed=2)
        )
        fr = FaultAwareRouting(DragonflyRouting(dfly, "minimal"), deg)
        report = verify_deadlock_free(dfly.graph, fr, max_pairs=400)
        assert report.acyclic, report.describe(dfly.graph)

    def test_yield_model_instance_is_deadlock_free(self, system):
        fr, _ = _wrapped(
            system, model="yield", defects_per_wafer=2.0,
            defect_radius_mm=12.0, seed=4,
        )
        report = verify_deadlock_free(system.graph, fr, max_pairs=300)
        assert report.acyclic, report.describe(system.graph)


class TestEnumeration:
    def test_enumerate_includes_repair_when_base_severed(self, system):
        fr, deg = _wrapped(
            system, model="random", link_rate=0.08, seed=3
        )
        base = SwitchlessRouting(system, "minimal")
        rng = random.Random(3)
        for s, d in _sample_pairs(deg, rng, 300):
            if deg.path_ok(base.route(s, d, rng)):
                continue
            routes = list(fr.enumerate_routes(s, d))
            assert routes, "severed pair must still enumerate a route"
            for path in routes:
                assert deg.path_ok(path)
            break
        else:
            pytest.fail("no severed pair found at 8% failure rate")

    def test_deterministic_flag_follows_base(self, system):
        mins, _ = _wrapped(system, model="random", link_rate=0.02, seed=1)
        vals, _ = _wrapped(
            system, mode="valiant", model="random", link_rate=0.02, seed=1
        )
        assert mins.is_deterministic is True
        assert vals.is_deterministic is False
