"""Fixed-seed degraded-run equivalence across the simulator cores.

The fault wrappers (fault-aware routing, masked traffic) are shared
Python objects consulted identically by the native, array and reference
cores, so with a pinned injection schedule a degraded run must be
bit-identical across all three — the degraded counterpart of
``tests/network/test_core_equivalence.py``.  CI runs this module in the
``resilience-smoke`` job.
"""

import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.network import SimParams, Simulator, native_available

CORES = ["array", "reference"] + (
    ["native"] if native_available() else []
)

FAULTS = {"model": "random", "link_rate": 0.06, "die_rate": 0.02, "seed": 9}


def degraded_spec(**faults):
    return ExperimentSpec.create(
        topology="switchless",
        topology_opts={"preset": "radix8_equiv"},
        routing="switchless",
        routing_opts={"mode": "minimal"},
        traffic="uniform",
        params=SimParams(
            warmup_cycles=120, measure_cycles=350, drain_cycles=200,
            seed=17,
        ),
        rates=[0.25],
        label="degraded",
        faults=faults or FAULTS,
    )


def test_pinned_degraded_results_identical_across_cores():
    spec = degraded_spec()
    graph, routing, traffic = build_experiment(spec)
    rate = spec.rates[0]
    schedule = Simulator(graph, routing, traffic, spec.params).make_schedule(
        rate
    )
    results = {}
    injected = {}
    for core in CORES:
        sim = Simulator(graph, routing, traffic, spec.params, core=core)
        results[core] = sim.run(rate, schedule=schedule).to_dict()
        injected[core] = sim.total_flits_injected
    ref = results["reference"]
    for core, res in results.items():
        assert res == ref, f"{core} core diverged on the degraded run"
    assert len(set(injected.values())) == 1, injected


def test_pinned_yield_model_identical_across_cores():
    spec = degraded_spec(
        model="yield", defects_per_wafer=1.5, defect_radius_mm=12.0, seed=3
    )
    graph, routing, traffic = build_experiment(spec)
    rate = spec.rates[0]
    schedule = Simulator(graph, routing, traffic, spec.params).make_schedule(
        rate
    )
    results = {
        core: Simulator(graph, routing, traffic, spec.params, core=core)
        .run(rate, schedule=schedule)
        .to_dict()
        for core in CORES
    }
    ref = results["reference"]
    for core, res in results.items():
        assert res == ref, f"{core} core diverged on the yield-model run"


@pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native core"
)
def test_unpinned_native_matches_array_on_degraded_run():
    spec = degraded_spec()
    graph, routing, traffic = build_experiment(spec)
    rate = spec.rates[0]
    res = {
        core: Simulator(graph, routing, traffic, spec.params, core=core)
        .run(rate)
        .to_dict()
        for core in ("native", "array")
    }
    assert res["native"] == res["array"]


def test_degraded_run_differs_from_healthy():
    """The fault axis really changes the simulated numbers (no silent
    fall-through to the healthy path)."""
    healthy = degraded_spec().with_faults(None)
    faulty = degraded_spec()
    out = []
    for spec in (healthy, faulty):
        graph, routing, traffic = build_experiment(spec)
        out.append(
            Simulator(graph, routing, traffic, spec.params)
            .run(spec.rates[0])
            .to_dict()
        )
    assert out[0] != out[1]
