"""Failed-endpoint injection masking at the traffic layer."""

import random

import pytest

from repro.core import SwitchlessConfig, build_switchless
from repro.faults import FaultMaskedTraffic, FaultSpec, degrade
from repro.traffic import UniformTraffic


@pytest.fixture(scope="module")
def system():
    return build_switchless(SwitchlessConfig.radix8_equiv())


def _masked(system, **fault_opts):
    deg = degrade(system, FaultSpec.from_opts(fault_opts))
    base = UniformTraffic(system.graph, None)
    return FaultMaskedTraffic(base, deg), deg, base


class TestInjectionMask:
    def test_dead_nodes_do_not_inject(self, system):
        tr, deg, base = _masked(system, model="fixed", failed_chips=(0, 3))
        active = set(tr.active_nodes())
        assert active < set(base.active_nodes())
        for nid in deg.failed_nodes:
            assert nid not in active

    def test_load_normalised_per_surviving_chip(self, system):
        tr, _deg, base = _masked(system, model="fixed", failed_chips=(0,))
        assert tr.num_active_chips() == base.num_active_chips() - 1

    def test_dests_to_dead_nodes_are_dropped(self, system):
        tr, deg, _ = _masked(system, model="fixed", failed_chips=(0,))
        rng = random.Random(0)
        src = tr.active_nodes()[0]
        saw_mask = False
        for _ in range(3000):
            dst = tr.dest(src, rng)
            if dst is None:
                saw_mask = True
                continue
            assert deg.alive(dst)
        assert saw_mask  # uniform traffic must have hit the dead chip
        assert tr.masked_dests > 0

    def test_dests_to_partitioned_nodes_are_dropped(self, system):
        graph = system.graph
        victim = system.cgroups[0][0].nodes[0]
        channels = tuple(
            (victim, peer) for peer in graph.neighbors_out(victim)
        )
        tr, deg, _ = _masked(
            system, model="fixed", failed_channels=channels
        )
        rng = random.Random(1)
        src = next(n for n in tr.active_nodes() if n != victim)
        for _ in range(3000):
            dst = tr.dest(src, rng)
            assert dst != victim

    def test_all_sources_dead_rejected(self):
        tiny = build_switchless(
            SwitchlessConfig(
                mesh_dim=2, chiplet_dim=1, num_local=1, num_global=0
            )
        )
        all_chips = tuple(sorted(tiny.graph.chips()))
        with pytest.raises(ValueError, match="every traffic source"):
            _masked(tiny, model="fixed", failed_chips=all_chips)

    def test_healthy_mask_is_transparent(self, system):
        deg = degrade(system, FaultSpec(model="fixed", failed_chips=(1,)))
        base = UniformTraffic(system.graph, None)
        tr = FaultMaskedTraffic(base, deg)
        # attribute delegation reaches through to the base pattern
        assert tr.graph is base.graph
        assert tr.name.endswith("+faults")
