"""Degraded-topology construction: views, partitions, properties."""

import pytest

from repro.core import SwitchlessConfig, build_switchless
from repro.faults import (
    DegradedTopology,
    FaultSpec,
    degrade,
    sample_faults,
)


@pytest.fixture(scope="module")
def system():
    return build_switchless(SwitchlessConfig.radix8_equiv())


def _degraded(system, **opts):
    return degrade(system, FaultSpec.from_opts(opts))


class TestView:
    def test_ids_stay_stable(self, system):
        deg = _degraded(system, model="random", link_rate=0.05, seed=1)
        assert deg.graph is system.graph  # a view, not a copy

    def test_failed_links_excluded_from_adjacency(self, system):
        deg = _degraded(system, model="random", link_rate=0.05, seed=1)
        for nid in range(system.graph.num_nodes):
            if not deg.alive(nid):
                continue
            for peer, lid in deg.neighbors(nid):
                assert deg.link_ok(lid)
                assert deg.alive(peer)

    def test_path_ok(self, system):
        deg = _degraded(system, model="random", link_rate=0.05, seed=1)
        dead = next(iter(deg.failed_links))
        live = next(
            l.id for l in system.graph.links if deg.link_ok(l.id)
        )
        assert deg.path_ok([(live, 0)])
        assert not deg.path_ok([(live, 0), (dead, 1)])

    def test_memoised_instance_reused(self, system):
        spec = FaultSpec(model="random", link_rate=0.05, seed=2)
        assert degrade(system, spec) is degrade(system, spec)


class TestPartitions:
    def test_healthy_graph_is_one_component(self, system):
        deg = _degraded(system)
        assert deg.num_components == 1
        props = deg.properties()
        assert props["connected"] is True
        assert props["terminal_reach_fraction"] == 1.0
        assert props["failed_channels"] == 0
        assert props["path_diversity_loss"] == 0.0

    def test_isolating_a_node_is_detected(self, system):
        # cut every channel of one node -> it becomes its own partition
        graph = system.graph
        victim = system.cgroups[0][0].nodes[0]
        channels = tuple(
            (victim, peer) for peer in graph.neighbors_out(victim)
        )
        deg = _degraded(system, model="fixed", failed_channels=channels)
        assert not deg.reachable(victim, system.cgroups[0][0].nodes[1])
        assert deg.num_components == 2
        props = deg.properties()
        assert props["connected"] is False
        assert props["num_terminal_components"] == 2
        assert props["isolated_terminals"] == 1
        assert props["terminal_reach_fraction"] < 1.0

    def test_dead_die_shrinks_alive_terminals(self, system):
        deg = _degraded(system, model="fixed", failed_chips=(0,))
        assert len(deg.alive_terminals()) < len(system.graph.terminals())
        for nid in deg.failed_nodes:
            assert not deg.alive(nid)


class TestProperties:
    def test_report_keys_and_monotonic_damage(self, system):
        lo = _degraded(
            system, model="random", link_rate=0.02, seed=3
        ).properties()
        hi = _degraded(
            system, model="random", link_rate=0.2, seed=3
        ).properties()
        for props in (lo, hi):
            for key in (
                "failed_channels", "failed_channel_fraction",
                "diameter", "average_shortest_path",
                "path_diversity", "path_diversity_loss",
                "num_components", "connected",
            ):
                assert key in props
        assert hi["failed_channels"] > lo["failed_channels"]
        assert 0 < lo["failed_channel_fraction"] < hi[
            "failed_channel_fraction"
        ]

    def test_cutting_parallel_paths_reduces_diversity(self, system):
        # sever most of one C-group's mesh: diversity for pairs through
        # it must drop relative to the healthy wafer
        deg = _degraded(system, model="random", link_rate=0.25, seed=7)
        props = deg.properties()
        assert props["path_diversity"] <= props["path_diversity_healthy"]

    def test_degraded_diameter_not_below_healthy(self, system):
        healthy = _degraded(system).properties()
        degraded = _degraded(
            system, model="random", link_rate=0.1, seed=5
        ).properties()
        if degraded["connected"]:
            assert degraded["diameter"] >= healthy["diameter"]


def test_direct_construction_from_fault_set(system=None):
    system = build_switchless(SwitchlessConfig.radix8_equiv())
    fs = sample_faults(
        system, FaultSpec(model="random", link_rate=0.05, seed=1)
    )
    deg = DegradedTopology(system.graph, fs)
    assert deg.failed_links == fs.failed_links
