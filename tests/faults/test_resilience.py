"""End-to-end resilience studies: engine, cache, report, deadlock check.

This module carries the PR's acceptance scenario: a fixed-seed
resilience study (switch-less vs switch-based Dragonfly, 3 failure
rates x 4 loads) runs through the engine with caching and parallel
workers, produces a saturation-retention report, and the degraded
routing passes the deadlock-freedom check on every sampled fault
instance.
"""

import pytest

from repro.api import (
    Study,
    build_study,
    resilience_report,
    resilience_study,
    verify_study_faults,
)
from repro.engine import ResultCache
from repro.network.params import SimParams

#: tiny but structurally honest systems: 4 W-groups of 3x3 C-groups vs
#: a 4-group p=2 Dragonfly.
ARCHES = {
    "SW-less": {
        "topology": "switchless",
        "topology_opts": {
            "mesh_dim": 3, "chiplet_dim": 1, "num_local": 2,
            "num_global": 1,
        },
        "routing": "switchless",
        "routing_opts": {"mode": "minimal"},
    },
    "SW-based": {
        "topology": "dragonfly",
        "topology_opts": {"p": 2, "a": 3, "h": 1},
        "routing": "dragonfly",
        "routing_opts": {"mode": "minimal", "vc_spread": 2},
    },
}

PARAMS = SimParams(
    warmup_cycles=80, measure_cycles=220, drain_cycles=120, seed=23
)

FAILURE_RATES = (0.0, 0.04, 0.1)
LOADS = (0.08, 0.16, 0.28, 0.4)


@pytest.fixture(scope="module")
def study():
    return resilience_study(
        name="acceptance",
        arches=ARCHES,
        failure_rates=FAILURE_RATES,
        rates=LOADS,
        params=PARAMS,
        fault_seed=5,
    )


class TestStudyShape:
    def test_one_scenario_per_failure_rate(self, study):
        assert study.names() == ["fail-0", "fail-0.04", "fail-0.1"]
        for scn in study.scenarios:
            assert set(s.label for s in scn.specs) == set(ARCHES)
            for spec in scn.specs:
                assert list(spec.rates) == list(LOADS)
        assert study.has_tag("resilience")

    def test_healthy_scenario_has_no_fault_axis(self, study):
        assert all(not s.faults for s in study["fail-0"].specs)
        assert all(s.faults for s in study["fail-0.1"].specs)

    def test_round_trips_to_json(self, study):
        import json

        clone = Study.from_data(json.loads(json.dumps(study.to_data())))
        assert clone == study

    def test_same_fault_seed_across_architectures(self, study):
        for scn in study.scenarios[1:]:
            seeds = {
                dict(s.faults).get("seed") for s in scn.specs
            }
            assert len(seeds) == 1


class TestDeadlockPerInstance:
    def test_every_sampled_fault_instance_is_deadlock_free(self, study):
        records = verify_study_faults(study, max_pairs=200)
        # one record per (arch, nonzero failure rate)
        assert len(records) == len(ARCHES) * (len(FAILURE_RATES) - 1)
        for rec in records:
            assert rec["acyclic"], (
                f"{rec['scenario']}/{rec['label']}: "
                f"{rec['report'].describe()}"
            )


class TestAcceptanceRun:
    @pytest.fixture(scope="class")
    def run(self, study, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("resilience-cache"))
        result = study.run(workers=2, cache=cache)
        return result, cache

    def test_all_curves_produced(self, run, study):
        result, _ = run
        assert result.names() == study.names()
        for scn in result.scenarios:
            assert set(c.label for c in scn.curves) == set(ARCHES)
            for curve in scn.curves:
                assert curve.points  # at least one point before cutoff
                assert curve.max_accepted > 0

    def test_retention_report(self, run):
        result, _ = run
        report = resilience_report(result)
        assert set(report.labels()) == set(ARCHES)
        for label in report.labels():
            rows = report.rows[label]
            assert [r["failure_rate"] for r in rows] == list(FAILURE_RATES)
            assert rows[0]["retention"] == 1.0
            for r in rows:
                assert 0.0 <= r["retention"] <= 1.5  # noise headroom
        text = report.render()
        assert "retention" in text and "SW-less" in text

    def test_cache_replay_is_identical(self, run, study):
        result, cache = run
        assert len(cache) > 0
        replay = study.run(workers=1, cache=cache)
        assert replay.to_dict()["scenarios"] == result.to_dict()["scenarios"]
        assert cache.hits > 0

    def test_parallel_equals_serial(self, run, study):
        result, _ = run
        serial = study.run(workers=1)
        assert (
            serial.to_dict()["scenarios"] == result.to_dict()["scenarios"]
        )


class TestStudyOptions:
    def test_routing_mode_is_forwarded(self):
        study = resilience_study(
            failure_rates=(0.0, 0.05), rates=(0.1,),
            routing_mode="valiant", params=PARAMS,
        )
        for scn in study.scenarios:
            for spec in scn.specs:
                assert dict(spec.routing_opts)["mode"] == "valiant"

    def test_local_scope_is_forwarded(self):
        study = resilience_study(
            failure_rates=(0.0,), rates=(0.1,), scope="local",
            params=PARAMS,
        )
        for spec in study.scenarios[0].specs:
            assert dict(spec.traffic_opts)["scope"] == ("group", 0)
        with pytest.raises(ValueError, match="scope"):
            resilience_study(
                failure_rates=(0.0,), rates=(0.1,), scope="sideways",
                params=PARAMS,
            )

    def test_preset_maps_to_dragonfly_equivalent(self):
        study = resilience_study(
            failure_rates=(0.0,), rates=(0.1,), preset="radix8_equiv",
            params=PARAMS,
        )
        by_label = {s.label: s for s in study.scenarios[0].specs}
        assert dict(by_label["SW-less"].topology_opts)["preset"] == (
            "radix8_equiv"
        )
        assert dict(by_label["SW-based"].topology_opts)["preset"] == "radix8"

    def test_yield_model_rejects_non_wafer_architectures(self):
        with pytest.raises(ValueError, match="wafer"):
            resilience_study(
                arches=("switchless", "dragonfly"),
                failure_rates=(0.0, 1.0), rates=(0.1,),
                fault_model="yield", params=PARAMS,
            )

    def test_yield_model_builds_for_switchless_only(self):
        study = resilience_study(
            arches=("switchless",),
            failure_rates=(0.0, 1.5), rates=(0.1,),
            fault_model="yield", preset="radix8_equiv", params=PARAMS,
        )
        faulty = study.scenarios[1].specs[0]
        assert dict(faulty.faults)["model"] == "yield"
        # the sampled instance is routable and deadlock free
        records = verify_study_faults(study, max_pairs=100)
        assert records and all(r["acyclic"] for r in records)


class TestBundledResilienceStudies:
    def test_bundled_entries_build_at_every_scale(self):
        for name in ("resilience", "resilience_smoke"):
            for scale in ("quick", "default", "full"):
                study = build_study(name, scale)
                assert study.has_tag("resilience")
                assert study.num_specs() > 0

    def test_smoke_study_runs_fast_and_reports(self):
        result = build_study("resilience_smoke", "quick").run(workers=1)
        report = resilience_report(result)
        assert set(report.labels()) == {"SW-less", "SW-based"}
        for rows in report.rows.values():
            assert len(rows) == 2  # healthy + one degraded step

    def test_report_rejects_non_resilience_results(self):
        result = build_study("smoke", "quick").run(workers=1)
        with pytest.raises(ValueError, match="resilience"):
            resilience_report(result)
