"""Load sweeps and saturation search."""

from repro.network import SimParams, find_saturation, sweep_rates
from repro.topology.graph import NetworkGraph
from repro.traffic import UniformTraffic


def tiny_net():
    g = NetworkGraph("pair")
    g.add_node("core", chip=0)
    g.add_node("core", chip=1)
    g.add_channel(0, 1, latency=1, klass="sr")

    class R:
        num_vcs = 1

        def route(self, src, dst, rng):
            return [(g.link_between(src, dst), 0)]

    return g, R(), UniformTraffic(g)


PARAMS = SimParams(
    warmup_cycles=200, measure_cycles=2500, drain_cycles=400, seed=1
)


def test_sweep_collects_results():
    g, r, t = tiny_net()
    sweep = sweep_rates(g, r, t, [0.1, 0.3, 0.5], PARAMS, label="pair")
    assert sweep.rates == [0.1, 0.3, 0.5]
    assert len(sweep.results) == 3
    assert sweep.label == "pair"


def test_sweep_stops_after_saturation():
    g, r, t = tiny_net()
    # a 2-node pair saturates near 1.0 flits/cycle/chip
    sweep = sweep_rates(
        g, r, t, [0.5, 2.0, 2.5, 3.0], PARAMS, stop_after_saturation=1
    )
    assert len(sweep.results) < 4
    assert sweep.saturation_rate <= 2.0


def test_zero_load_latency_and_rows():
    g, r, t = tiny_net()
    sweep = sweep_rates(g, r, t, [0.1], PARAMS)
    assert sweep.zero_load_latency() > 0
    rows = sweep.rows()
    assert len(rows) == 1 and len(rows[0]) == 3
    table = sweep.format_table()
    assert "offered" in table


def test_find_saturation_brackets_link_capacity():
    sat = find_saturation(
        tiny_net, params=PARAMS, lo=0.1, hi=3.0, tol=0.2, max_iter=8
    )
    # each chip's single duplex link supports ~1 flit/cycle/chip minus
    # protocol losses
    assert 0.5 < sat < 1.6


def test_loadsweep_dict_round_trip():
    g, r, t = tiny_net()
    sweep = sweep_rates(g, r, t, [0.1, 0.3], PARAMS, label="pair")
    data = sweep.to_dict()
    assert data["schema"] == "repro.load-sweep/v1"
    from repro.network import LoadSweep

    clone = LoadSweep.from_dict(data)
    assert clone.label == sweep.label
    assert clone.rates == sweep.rates
    assert [res.to_dict() for res in clone.results] == [
        res.to_dict() for res in sweep.results
    ]
