"""find_saturation bisection and LoadSweep properties on a tiny mesh."""

import math

import pytest

from repro.network import LoadSweep, SimParams, SimResult, find_saturation, sweep_rates
from repro.routing import XYMeshRouting
from repro.topology.mesh import MeshSpec, build_mesh
from repro.traffic import UniformTraffic

PARAMS = SimParams(
    warmup_cycles=300, measure_cycles=2500, drain_cycles=400, seed=9
)


def tiny_mesh():
    """2x2 mesh of single-node chips: saturates near 1.1 flits/cyc/chip."""
    block = build_mesh(MeshSpec(dim=2))
    return block.graph, XYMeshRouting(block), UniformTraffic(block.graph)


def fake_result(rate: float, saturated: bool) -> SimResult:
    """Handcrafted SimResult with a forced saturation verdict.

    Non-saturated points accept their full offered load with every
    packet delivered; saturated points accept 45% of it with most
    packets stuck — keeping both sides of the heuristic consistent.
    """
    return SimResult(
        offered_rate=rate,
        effective_offered=rate,
        accepted_rate=0.45 * rate if saturated else rate,
        avg_latency=20.0,
        p50_latency=20.0,
        p99_latency=40.0,
        packets_measured=1000,
        packets_delivered=100 if saturated else 1000,
        flits_ejected=4000,
        active_chips=4,
        measure_cycles=1000,
    )


class TestLoadSweepProperties:
    def sweep(self, flags):
        rates = [0.2 * (i + 1) for i in range(len(flags))]
        return LoadSweep(
            label="synthetic",
            rates=rates,
            results=[fake_result(r, s) for r, s in zip(rates, flags)],
        )

    def test_saturation_rate_is_first_saturated(self):
        sweep = self.sweep([False, False, True, True])
        assert sweep.saturation_rate == pytest.approx(0.6)

    def test_saturation_rate_inf_when_never_saturated(self):
        sweep = self.sweep([False, False, False])
        assert math.isinf(sweep.saturation_rate)

    def test_max_accepted_scans_all_points(self):
        # rates 0.2/0.4/0.6; the saturated tail accepts 0.45x its rate,
        # so the overall max (0.27) comes from the last point
        sweep = self.sweep([False, True, True])
        assert sweep.max_accepted == pytest.approx(0.27)

    def test_empty_sweep(self):
        sweep = LoadSweep(label="empty", rates=[], results=[])
        assert sweep.max_accepted == 0.0
        assert math.isinf(sweep.saturation_rate)
        assert math.isnan(sweep.zero_load_latency())

    def test_zero_load_latency_skips_saturated_lowest_point(self):
        """A sweep whose first offered load already saturated must not
        report that point's latency as 'zero load'."""
        sweep = self.sweep([True, False, False])
        assert sweep.zero_load_latency() == pytest.approx(
            sweep.results[1].avg_latency
        )

    def test_zero_load_latency_nan_when_all_points_saturated(self):
        sweep = self.sweep([True, True])
        assert math.isnan(sweep.zero_load_latency())


class TestStopAfterSaturation:
    RATES = [0.3, 0.8, 1.5, 2.5, 3.5]

    def test_cutoff_after_first_saturated_point(self):
        g, r, t = tiny_mesh()
        sweep = sweep_rates(
            g, r, t, self.RATES, PARAMS, stop_after_saturation=1
        )
        assert sweep.rates == self.RATES[: len(sweep.rates)]
        assert len(sweep.rates) < len(self.RATES)
        assert sweep.results[-1].saturated
        assert not any(res.saturated for res in sweep.results[:-1])

    def test_higher_cutoff_extends_the_sweep(self):
        g, r, t = tiny_mesh()
        one = sweep_rates(
            g, r, t, self.RATES, PARAMS, stop_after_saturation=1
        )
        g, r, t = tiny_mesh()
        two = sweep_rates(
            g, r, t, self.RATES, PARAMS, stop_after_saturation=2
        )
        assert len(two.rates) == len(one.rates) + 1
        assert sum(res.saturated for res in two.results) == 2
        # the shared prefix is identical (same params, same seeds)
        assert two.results[: len(one.results)] == one.results


class TestFindSaturation:
    def test_bisection_brackets_mesh_capacity(self):
        sat = find_saturation(
            tiny_mesh, params=PARAMS, lo=0.2, hi=3.5, tol=0.3, max_iter=8
        )
        # the 2x2 mesh under uniform traffic saturates near 1.1
        assert 0.6 < sat < 1.6

    def test_saturated_floor_returns_zero(self):
        assert (
            find_saturation(tiny_mesh, params=PARAMS, lo=2.5, hi=3.5)
            == 0.0
        )

    def test_unsaturated_ceiling_returns_hi(self):
        assert (
            find_saturation(tiny_mesh, params=PARAMS, lo=0.2, hi=0.8)
            == 0.8
        )

    def test_tolerance_is_respected(self):
        coarse = find_saturation(
            tiny_mesh, params=PARAMS, lo=0.2, hi=3.5, tol=1.5, max_iter=12
        )
        fine = find_saturation(
            tiny_mesh, params=PARAMS, lo=0.2, hi=3.5, tol=0.2, max_iter=12
        )
        # both are "highest non-saturated probe"; the fine search can
        # only move the answer up within the coarse bracket
        assert fine >= coarse - 1e-9
