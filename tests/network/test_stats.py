"""SimResult aggregation and saturation heuristics."""

import math

from repro.network.stats import SimResult


def make(offered=0.5, latencies=None, measured=100, delivered_flits=400,
         chips=10, cycles=100):
    latencies = latencies if latencies is not None else [10] * measured
    return SimResult.from_samples(
        offered_rate=offered,
        latencies=latencies,
        hops=[3] * len(latencies),
        packets_measured=measured,
        flits_ejected=delivered_flits,
        active_chips=chips,
        measure_cycles=cycles,
    )


def test_accepted_rate_normalisation():
    res = make(delivered_flits=400, chips=10, cycles=100)
    assert res.accepted_rate == 0.4


def test_latency_percentiles():
    res = make(latencies=list(range(1, 101)))
    assert res.avg_latency == 50.5
    assert res.p50_latency == 50.5
    assert res.p99_latency > 98


def test_empty_latencies_give_nan():
    res = make(latencies=[], measured=0, delivered_flits=0)
    assert math.isnan(res.avg_latency)
    assert res.delivered_fraction == 1.0


def test_saturation_needs_samples():
    # tiny populations never flag saturation from throughput noise
    res = make(offered=1.0, measured=30, latencies=[5] * 10,
               delivered_flits=10, chips=2, cycles=100)
    assert not res.saturated


def test_saturation_on_undelivered():
    res = make(offered=0.5, measured=400, latencies=[9] * 100,
               delivered_flits=4000, chips=10, cycles=100)
    assert res.delivered_fraction == 0.25
    assert res.saturated


def test_saturation_on_low_accept():
    res = make(offered=1.0, measured=500, latencies=[9] * 500,
               delivered_flits=100, chips=10, cycles=100)
    assert res.accepted_rate == 0.1
    assert res.saturated


def test_zero_offered_never_saturated():
    assert not make(offered=0.0).saturated


def test_str_roundtrip():
    s = str(make())
    assert "rate=0.500" in s and "lat=" in s


def test_to_dict_schema_tagged():
    data = make().to_dict()
    assert data["schema"] == "repro.sim-result/v1"
    assert SimResult.from_dict(data) is not None


def test_from_dict_accepts_untagged_legacy_payload():
    data = make().to_dict()
    del data["schema"]  # pre-tagging cache entries
    assert SimResult.from_dict(data).offered_rate == 0.5


def test_from_dict_rejects_foreign_schema():
    data = make().to_dict()
    data["schema"] = "someone-else/v3"
    try:
        SimResult.from_dict(data)
    except ValueError as exc:
        assert "someone-else/v3" in str(exc)
    else:
        raise AssertionError("foreign schema accepted")
