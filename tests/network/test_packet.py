"""Packet model invariants."""

from repro.network.packet import Packet


def make(path=((0, 0), (1, 0)), size=4):
    return Packet(1, 10, 20, size, path, t_create=100, measured=True)


def test_path_is_immutable_tuple():
    p = make(path=[(0, 0), (1, 1)])
    assert isinstance(p.path, tuple)
    assert p.path_len == 2
    assert p.hop_count() == 2


def test_latency_before_and_after_delivery():
    p = make()
    assert not p.delivered
    assert p.latency == -1
    p.t_done = 150
    assert p.delivered
    assert p.latency == 50


def test_slots_prevent_arbitrary_attrs():
    p = make()
    try:
        p.color = "red"
    except AttributeError:
        return
    raise AssertionError("Packet must use __slots__")


def test_empty_path_allowed():
    p = make(path=())
    assert p.path_len == 0
