"""Cycle-accurate simulator: conservation, latency, contention physics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import SimParams, Simulator
from repro.routing.base import path_latency
from repro.routing.mesh import SwitchStarRouting, XYMeshRouting
from repro.topology.graph import NetworkGraph
from repro.topology.mesh import (
    MeshSpec,
    build_mesh,
    build_switch_with_terminals,
)
from repro.traffic import UniformTraffic


def line_graph(n=2, latency=3):
    """n terminals in a row, unit-capacity links."""
    g = NetworkGraph("line")
    for i in range(n):
        g.add_node("core", chip=i)
    for i in range(n - 1):
        g.add_channel(i, i + 1, latency=latency, klass="sr")
    return g


class LineRouting:
    num_vcs = 1

    def __init__(self, g):
        self.g = g

    def route(self, src, dst, rng):
        step = 1 if dst > src else -1
        return [
            (self.g.link_between(i, i + step), 0)
            for i in range(src, dst, step)
        ]


class FixedTraffic:
    """Every node sends to a fixed destination."""

    def __init__(self, mapping, chips):
        self.mapping = mapping
        self.chips = chips

    def active_nodes(self):
        return list(self.mapping)

    def num_active_chips(self):
        return self.chips

    def dest(self, src, rng):
        return self.mapping[src]


def quick(seed=1, **kw):
    base = dict(
        warmup_cycles=200, measure_cycles=1000, drain_cycles=300, seed=seed
    )
    base.update(kw)
    return SimParams(**base)


class TestBasics:
    def test_flit_conservation(self):
        g = line_graph(4)
        sim = Simulator(g, LineRouting(g), UniformTraffic(g), quick())
        sim.run(0.4)
        assert (
            sim.total_flits_injected
            == sim.total_flits_ejected + sim.flits_in_flight()
        )

    def test_deterministic_with_seed(self):
        g = line_graph(4)
        results = []
        for _ in range(2):
            sim = Simulator(g, LineRouting(g), UniformTraffic(g), quick(5))
            results.append(sim.run(0.3))
        assert results[0].avg_latency == results[1].avg_latency
        assert results[0].flits_ejected == results[1].flits_ejected

    def test_different_seeds_differ(self):
        g = line_graph(4)
        r1 = Simulator(g, LineRouting(g), UniformTraffic(g), quick(1)).run(0.3)
        r2 = Simulator(g, LineRouting(g), UniformTraffic(g), quick(2)).run(0.3)
        assert r1.flits_ejected != r2.flits_ejected

    def test_zero_rate(self):
        g = line_graph(3)
        res = Simulator(g, LineRouting(g), UniformTraffic(g), quick()).run(0.0)
        assert res.packets_measured == 0
        assert res.accepted_rate == 0.0

    def test_excessive_rate_rejected(self):
        g = line_graph(2)
        sim = Simulator(g, LineRouting(g), UniformTraffic(g), quick())
        with pytest.raises(ValueError):
            sim.run(10.0)


class TestLatency:
    def test_zero_load_latency_matches_analytics(self):
        """One isolated sender: latency = wire+router latency of the path
        plus (packet_length - 1) serialization cycles."""
        g = line_graph(3, latency=4)
        params = quick(seed=3)
        mapping = {0: 2}  # only node 0 sends, to node 2
        traffic = FixedTraffic(mapping, chips=3)
        sim = Simulator(g, LineRouting(g), traffic, params)
        res = sim.run(0.05)
        path = LineRouting(g).route(0, 2, None)
        expect = path_latency(g, path, params.router_latency)
        expect += params.packet_length - 1
        assert res.avg_latency == pytest.approx(expect, abs=0.5)

    def test_latency_grows_with_load(self):
        g = line_graph(5, latency=1)
        lats = []
        for rate in (0.1, 0.5, 0.8):
            res = Simulator(
                g, LineRouting(g), UniformTraffic(g), quick()
            ).run(rate)
            lats.append(res.avg_latency)
        assert lats[0] < lats[1] < lats[2]


class TestContention:
    def test_single_link_shared_by_two_senders(self):
        """Nodes 0 and 1 both send through link (1->2): accepted sum
        capped at 1 flit/cycle."""
        g = line_graph(3, latency=1)
        traffic = FixedTraffic({0: 2, 1: 2}, chips=3)
        res = Simulator(g, LineRouting(g), traffic, quick()).run(0.9)
        # per chip accepted; total flits/cycle over the shared link <= 1
        assert res.accepted_rate * 3 <= 1.05

    def test_capacity_two_doubles_throughput(self):
        g1 = line_graph(3, latency=1)
        t1 = FixedTraffic({0: 2, 1: 2}, chips=3)
        r1 = Simulator(g1, LineRouting(g1), t1, quick()).run(0.9)

        g2 = NetworkGraph("line2")
        for i in range(3):
            g2.add_node("core", chip=i)
        for i in range(2):
            g2.add_channel(i, i + 1, latency=1, capacity=2, klass="sr")
        t2 = FixedTraffic({0: 2, 1: 2}, chips=3)
        params = quick(injection_width=2, ejection_width=2)
        r2 = Simulator(g2, LineRouting(g2), t2, params).run(1.8)
        assert r2.accepted_rate > 1.6 * r1.accepted_rate

    def test_ejection_width_limits_delivery(self):
        """Two senders to one destination: ejection port is the cap."""
        g = NetworkGraph("star")
        for i in range(3):
            g.add_node("core", chip=i)
        g.add_channel(0, 2, latency=1, klass="sr")
        g.add_channel(1, 2, latency=1, klass="sr")

        class Direct:
            num_vcs = 1

            def route(self, src, dst, rng):
                return [(g.link_between(src, dst), 0)]

        traffic = FixedTraffic({0: 2, 1: 2}, chips=3)
        res = Simulator(g, Direct(), traffic, quick()).run(0.9)
        assert res.accepted_rate * 3 <= 1.05


class TestWormhole:
    def test_packets_do_not_interleave_on_a_vc(self):
        """With a single VC and two upstream senders merging, delivered
        flit order per packet must be contiguous (checked indirectly:
        all measured packets deliver, none stall forever at low load)."""
        g = line_graph(4, latency=2)
        res = Simulator(
            g, LineRouting(g), UniformTraffic(g), quick()
        ).run(0.15)
        assert res.delivered_fraction == 1.0


class TestMeshAndSwitch:
    def test_mesh_beats_switch_locally(self, fast_params):
        """Fig. 10(a) headline at test scale: the 4x4 node mesh saturates
        well above the 4-terminal switch baseline."""
        mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
        mesh_res = Simulator(
            mesh.graph, XYMeshRouting(mesh), UniformTraffic(mesh.graph),
            fast_params,
        ).run(2.0)
        sw = build_switch_with_terminals(4, terminal_latency=1)
        sw_res = Simulator(
            sw.graph, SwitchStarRouting(sw), UniformTraffic(sw.graph),
            fast_params,
        ).run(2.0)
        assert mesh_res.accepted_rate > 1.5 * sw_res.accepted_rate


@given(rate=st.floats(0.05, 0.5), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_conservation_property(rate, seed):
    g = line_graph(3)
    sim = Simulator(
        g, LineRouting(g), UniformTraffic(g),
        SimParams(warmup_cycles=50, measure_cycles=200, drain_cycles=100,
                  seed=seed),
    )
    sim.run(rate)
    assert (
        sim.total_flits_injected
        == sim.total_flits_ejected + sim.flits_in_flight()
    )
