"""Batched native execution: VecRandom exactness and lane bit-identity.

The batch contract is absolute: N lanes packed into one
``sim_run_batch`` call produce results **bit-identical** to N serial
per-lane runs, for any thread count, any lane count, healthy or
degraded topologies, with or without probes.  These tests pin
injection schedules so every core (reference, array, native) must
agree with the batched lanes exactly, and they drive the vectorized
destination pre-pass through its decline paths (fault-masked traffic,
non-power-of-two permutation scopes).
"""

import random

import numpy as np
import pytest

from repro.engine.spec import ExperimentSpec, build_experiment
from repro.network import (
    SimParams,
    Simulator,
    native_available,
    resolve_threads,
    run_batch,
)
from repro.network.native import THREADS_ENV, NativeBatch
from repro.network.vecrandom import VecRandom

PARAMS = SimParams(
    warmup_cycles=150, measure_cycles=300, drain_cycles=300, seed=11
)


def mesh_spec(**over):
    kw = dict(
        topology="mesh",
        topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh",
        traffic="uniform",
        params=PARAMS,
        rates=[0.3],
        label="mesh",
    )
    kw.update(over)
    return ExperimentSpec.create(**kw)


def switchless_spec(**over):
    kw = dict(
        topology="switchless",
        topology_opts={"preset": "radix8_equiv"},
        routing="switchless",
        routing_opts={"mode": "minimal"},
        traffic="uniform",
        traffic_opts={"scope": ("group", 0)},
        params=PARAMS,
        rates=[0.3],
        label="switchless",
    )
    kw.update(over)
    return ExperimentSpec.create(**kw)


# ----------------------------------------------------------------------
# VecRandom: bit-exact MT19937 replication
# ----------------------------------------------------------------------
class TestVecRandom:
    def test_word_stream_matches_getrandbits(self):
        for seed in (0, 7, 123456):
            rng = random.Random(seed)
            vr = VecRandom.for_rng(random.Random(seed))
            words = vr._take_words(2000)
            expect = [rng.getrandbits(32) for _ in range(2000)]
            assert words.tolist() == expect

    @pytest.mark.parametrize(
        "n",
        [1, 2, 3, 5, 7, 17, 100, 127, 128, 129, 1023, 2**31 - 5, 2**32 - 1],
    )
    def test_randbelow_matches_randrange(self, n):
        rng = random.Random(99)
        vec = random.Random(99)
        vr = VecRandom.for_rng(vec)
        draws = vr.randbelow(n, 800)
        expect = [rng.randrange(n) for _ in range(800)]
        assert draws.tolist() == expect

    def test_commit_restores_exact_state(self):
        scalar = random.Random(5)
        vec = random.Random(5)
        vr = VecRandom.for_rng(vec)
        vr.randbelow(1000, 500)
        vr.commit()
        for _ in range(500):
            scalar.randrange(1000)
        assert vec.getstate() == scalar.getstate()
        # and the streams keep agreeing after the committed block
        assert [vec.randrange(17) for _ in range(50)] == [
            scalar.randrange(17) for _ in range(50)
        ]

    def test_interleaved_vector_and_scalar_draws(self):
        scalar = random.Random(21)
        vec = random.Random(21)
        out_s, out_v = [], []
        for block in (3, 100, 1, 257):
            vr = VecRandom.for_rng(vec)
            out_v.extend(vr.randbelow(63, block).tolist())
            vr.commit()
            out_v.append(vec.randrange(63))
            out_s.extend(scalar.randrange(63) for _ in range(block))
            out_s.append(scalar.randrange(63))
        assert out_v == out_s

    def test_wide_n_declines_without_consuming(self):
        vec = random.Random(3)
        vr = VecRandom.for_rng(vec)
        before = vec.getstate()
        assert vr.randbelow(2**33, 4) is None
        vr.commit()
        assert vec.getstate() == before

    def test_subclassed_rng_declined(self):
        class Loaded(random.Random):
            def random(self):  # pragma: no cover - never called
                return 0.5

        assert VecRandom.for_rng(Loaded(1)) is None


# ----------------------------------------------------------------------
# resolve_threads
# ----------------------------------------------------------------------
class TestResolveThreads:
    def test_explicit_clamped_to_lanes(self):
        assert resolve_threads(3, 16) == 3
        assert resolve_threads(16, 3) == 3
        assert resolve_threads(4, 1) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "2")
        assert resolve_threads(8) == 2
        monkeypatch.setenv(THREADS_ENV, "64")
        assert resolve_threads(8) == 8  # still clamped to lanes

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "0")
        assert resolve_threads(8) == 1
        assert resolve_threads(0, 4) == 1


# ----------------------------------------------------------------------
# batched lanes == serial runs, bit for bit
# ----------------------------------------------------------------------
needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native core"
)

SERIAL_CORES = ["reference", "array", "native"]


def pinned_setup(spec, lanes):
    """Build the experiment once and pin one schedule per lane."""
    graph, routing, traffic = build_experiment(spec)
    schedules = []
    for seed, rate in lanes:
        sim = Simulator(
            graph, routing, traffic, spec.params.scaled(seed=int(seed))
        )
        schedules.append(sim.make_schedule(rate))
    return graph, routing, traffic, schedules


def serial_results(spec, lanes, schedules, core, *, probes=None):
    graph, routing, traffic = build_experiment(spec)
    out = []
    for (seed, rate), sched in zip(lanes, schedules):
        sim = Simulator(
            graph,
            routing,
            traffic,
            spec.params.scaled(seed=int(seed)),
            core=core,
            probes=probes,
        )
        out.append(sim.run(rate, schedule=sched))
    return out


@needs_native
class TestBatchBitIdentity:
    LANES = [(101, 0.15), (202, 0.3), (303, 0.3), (404, 0.45), (505, 0.6)]

    @pytest.mark.parametrize("spec_fn", [mesh_spec, switchless_spec])
    def test_batch_matches_every_serial_core(self, spec_fn):
        spec = spec_fn()
        graph, routing, traffic, schedules = pinned_setup(spec, self.LANES)
        batched = run_batch(
            graph,
            routing,
            traffic,
            spec.params,
            self.LANES,
            core="native",
            schedules=schedules,
        )
        for core in SERIAL_CORES:
            serial = serial_results(spec, self.LANES, schedules, core)
            for i, (b, s) in enumerate(zip(batched, serial)):
                assert b.to_dict() == s.to_dict(), (
                    f"lane {i} diverged from serial {core} core"
                )

    def test_degraded_links_batch_matches_serial(self):
        """link_rate faults keep the routing deterministic, so the
        batch stays on the shared-route/vectorized path — and must
        still match the scalar serial runs exactly."""
        spec = mesh_spec(
            faults={"model": "random", "link_rate": 0.05, "seed": 3}
        )
        graph, routing, traffic, schedules = pinned_setup(spec, self.LANES)
        batched = run_batch(
            graph, routing, traffic, spec.params, self.LANES,
            core="native", schedules=schedules,
        )
        serial = serial_results(spec, self.LANES, schedules, "array")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    def test_failed_chips_batch_matches_serial(self):
        """FaultMaskedTraffic has no dest_batch hook, so the vectorized
        pre-pass declines and lanes resolve scalar — results must be
        unaffected either way."""
        spec = mesh_spec(
            faults={"model": "fixed", "failed_chips": [1]}
        )
        graph, routing, traffic, schedules = pinned_setup(spec, self.LANES)
        batched = run_batch(
            graph, routing, traffic, spec.params, self.LANES,
            core="native", schedules=schedules,
        )
        serial = serial_results(spec, self.LANES, schedules, "array")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    @pytest.mark.parametrize(
        "traffic_kind", ["bit_reverse", "bit_shuffle", "bit_transpose"]
    )
    def test_permutation_traffic_batch_matches_serial(self, traffic_kind):
        spec = mesh_spec(traffic=traffic_kind)
        lanes = self.LANES[:3]
        graph, routing, traffic, schedules = pinned_setup(spec, lanes)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes,
            core="native", schedules=schedules,
        )
        serial = serial_results(spec, lanes, schedules, "array")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    def test_non_pow2_permutation_scope_matches_serial(self):
        """A 13-node scope exercises the uniform-fallback tail of the
        permutation dest_batch hook (draws consumed in event order)."""
        spec = mesh_spec(
            traffic="bit_reverse",
            traffic_opts={"scope": ("nodes", list(range(13)))},
        )
        lanes = self.LANES[:3]
        graph, routing, traffic, schedules = pinned_setup(spec, lanes)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes,
            core="native", schedules=schedules,
        )
        serial = serial_results(spec, lanes, schedules, "array")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    def test_probed_batch_matches_probed_serial(self):
        spec = mesh_spec()
        lanes = self.LANES[:3]
        probes = ["link_util", "latency_hist"]
        graph, routing, traffic, schedules = pinned_setup(spec, lanes)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes,
            core="native", schedules=schedules, probes=probes,
        )
        serial = serial_results(
            spec, lanes, schedules, "array", probes=list(probes)
        )
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()
            assert set(b.channels) == {"link_util", "latency_hist"}
            for name in b.channels:
                assert (
                    b.channels[name].to_dict() == s.channels[name].to_dict()
                )


@needs_native
class TestBatchLaneEdges:
    def lanes(self, n, rate=0.3):
        return [(1000 + 17 * i, rate) for i in range(n)]

    @pytest.mark.parametrize("n_lanes,threads", [
        (1, 1),     # single lane
        (1, 8),     # threads clamp to one lane
        (5, 2),     # odd remainder: 5 lanes over 2 threads
        (3, 16),    # more threads than lanes
        (7, 3),     # another odd split
    ])
    def test_every_lane_split_is_bit_identical(self, n_lanes, threads):
        spec = mesh_spec()
        lanes = self.lanes(n_lanes)
        graph, routing, traffic, schedules = pinned_setup(spec, lanes)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes,
            core="native", schedules=schedules, threads=threads,
        )
        serial = serial_results(spec, lanes, schedules, "native")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    def test_threads_env_respected(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "3")
        spec = mesh_spec()
        lanes = self.lanes(6)
        graph, routing, traffic, schedules = pinned_setup(spec, lanes)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes,
            core="native", schedules=schedules,
        )
        serial = serial_results(spec, lanes, schedules, "native")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    def test_batch_is_one_shot(self):
        spec = mesh_spec()
        graph, routing, traffic = build_experiment(spec)
        batch = NativeBatch(
            graph, routing, traffic, spec.params, [1, 2]
        )
        batch.run([0.2, 0.2])
        with pytest.raises(RuntimeError, match="one-shot"):
            batch.run([0.2, 0.2])

    def test_lane_count_mismatch_rejected(self):
        spec = mesh_spec()
        graph, routing, traffic = build_experiment(spec)
        batch = NativeBatch(graph, routing, traffic, spec.params, [1, 2])
        with pytest.raises(ValueError, match="rates"):
            batch.run([0.2])

    def test_unpinned_batch_matches_unpinned_serial(self):
        """Free-running lanes sample their own schedules from their
        seed-derived streams — identical to free-running serial runs."""
        spec = switchless_spec()
        lanes = self.lanes(4)
        graph, routing, traffic = build_experiment(spec)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes, core="native"
        )
        serial = []
        for seed, rate in lanes:
            sim = Simulator(
                graph,
                routing,
                traffic,
                spec.params.scaled(seed=int(seed)),
                core="native",
            )
            serial.append(sim.run(rate))
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()


class TestRunBatchFacade:
    def test_non_native_core_fallback_matches_per_lane(self):
        spec = mesh_spec()
        lanes = [(11, 0.2), (22, 0.35)]
        graph, routing, traffic, schedules = pinned_setup(spec, lanes)
        batched = run_batch(
            graph, routing, traffic, spec.params, lanes,
            core="array", schedules=schedules,
        )
        serial = serial_results(spec, lanes, schedules, "array")
        for b, s in zip(batched, serial):
            assert b.to_dict() == s.to_dict()

    def test_unknown_core_rejected(self):
        spec = mesh_spec()
        graph, routing, traffic = build_experiment(spec)
        with pytest.raises(ValueError, match="unknown simulation core"):
            run_batch(
                graph, routing, traffic, spec.params, [(1, 0.2)],
                core="turbo",
            )

    def test_schedule_count_mismatch_rejected(self):
        spec = mesh_spec()
        graph, routing, traffic = build_experiment(spec)
        with pytest.raises(ValueError, match="schedules"):
            run_batch(
                graph, routing, traffic, spec.params,
                [(1, 0.2), (2, 0.2)], schedules=[None],
            )


# ----------------------------------------------------------------------
# traffic dest_batch hooks in isolation
# ----------------------------------------------------------------------
class TestDestBatchHooks:
    def _check_hook(self, traffic, srcs):
        """dest_batch over ``srcs`` must equal scalar dest() per event,
        leaving the RNG in the identical state."""
        scalar = random.Random(77)
        vec = random.Random(77)
        vr = VecRandom.for_rng(vec)
        out = traffic.dest_batch(np.asarray(srcs, dtype=np.int64), vr)
        if out is None:
            return False
        vr.commit()
        expect = []
        for s in srcs:
            d = traffic.dest(int(s), scalar)
            expect.append(-1 if d is None else d)
        assert out.tolist() == expect
        assert vec.getstate() == scalar.getstate()
        return True

    def test_uniform_hook_exact(self):
        spec = mesh_spec()
        graph, _, traffic = build_experiment(spec)
        srcs = [n for n in traffic.active_nodes()][:8] * 40
        assert self._check_hook(traffic, srcs)

    def test_permutation_hooks_exact(self):
        for kind in ("bit_reverse", "bit_shuffle", "bit_transpose"):
            spec = mesh_spec(traffic=kind)
            graph, _, traffic = build_experiment(spec)
            srcs = [n for n in traffic.active_nodes()][:8] * 40
            assert self._check_hook(traffic, srcs)

    def test_non_pow2_scope_fallback_exact(self):
        spec = mesh_spec(
            traffic="bit_reverse",
            traffic_opts={"scope": ("nodes", list(range(13)))},
        )
        graph, _, traffic = build_experiment(spec)
        srcs = [n for n in traffic.active_nodes()] * 30
        assert self._check_hook(traffic, srcs)

    def test_fault_masked_traffic_has_no_hook(self):
        """FaultMaskedTraffic filters dest() per event, so it offers no
        dest_batch — the vectorized pre-pass must see None and decline
        to the scalar path (covered end-to-end by the failed-chips
        bit-identity test above)."""
        spec = mesh_spec(faults={"model": "fixed", "failed_chips": [1]})
        graph, _, traffic = build_experiment(spec)
        assert getattr(traffic, "dest_batch", None) is None
