"""Cross-core equivalence: array, native and reference cores agree.

With a pinned :class:`~repro.network.schedule.InjectionSchedule` the
only randomness left (destination and route choice) is drawn from the
same stdlib RNG stream in the same order by every core, so all
``SimResult`` fields must be *identical* — these tests pin the smoke
scenario's configurations plus a wafer-scale switchless one.

Unpinned, the array and native cores sample the same schedule from the
same numpy stream, so they must also agree bit-for-bit with each other
(the reference core consumes the numpy stream differently and is only
statistically equivalent; ``benchmarks/bench_simcore.py`` covers that).
"""

from pathlib import Path

import pytest

from repro.api import load_study
from repro.engine.spec import ExperimentSpec, build_experiment
from repro.network import SimParams, Simulator, native_available

REPO = Path(__file__).resolve().parents[2]

CORES = ["array", "reference"] + (
    ["native"] if native_available() else []
)


def smoke_specs():
    study = load_study(REPO / "scenarios" / "smoke.json")
    return [
        pytest.param(spec, id=spec.label or spec.topology)
        for scenario in study.scenarios
        for spec in scenario.specs
    ]


def switchless_spec():
    return ExperimentSpec.create(
        topology="switchless",
        topology_opts={
            "preset": "radix16_equiv",
            "num_wgroups": 2,
            "cgroups_per_wafer": 1,
        },
        routing="switchless",
        routing_opts={"mode": "minimal"},
        traffic="uniform",
        traffic_opts={"scope": ("group", 0)},
        params=SimParams(
            warmup_cycles=150,
            measure_cycles=400,
            drain_cycles=250,
            seed=13,
        ),
        rates=[0.4],
        label="SW-less",
    )


def run_cores(spec, rate, *, pinned):
    graph, routing, traffic = build_experiment(spec)
    schedule = None
    if pinned:
        schedule = Simulator(
            graph, routing, traffic, spec.params
        ).make_schedule(rate)
    sims = {
        core: Simulator(graph, routing, traffic, spec.params, core=core)
        for core in CORES
    }
    results = {
        core: sim.run(rate, schedule=schedule)
        for core, sim in sims.items()
    }
    return sims, results


class TestPinnedSchedule:
    @pytest.mark.parametrize("spec", smoke_specs())
    def test_smoke_scenario_results_identical(self, spec):
        for rate in spec.rates:
            sims, results = run_cores(spec, rate, pinned=True)
            ref = results["reference"].to_dict()
            for core, res in results.items():
                assert res.to_dict() == ref, (
                    f"{core} core diverged at rate {rate}"
                )
            base = sims["reference"]
            for core, sim in sims.items():
                assert (
                    sim.total_flits_injected == base.total_flits_injected
                ), core
                assert (
                    sim.total_flits_ejected == base.total_flits_ejected
                ), core

    def test_switchless_results_identical(self):
        spec = switchless_spec()
        _, results = run_cores(spec, spec.rates[0], pinned=True)
        ref = results["reference"].to_dict()
        for core, res in results.items():
            assert res.to_dict() == ref, f"{core} core diverged"

    def test_events_past_measurement_window_ignored_everywhere(self):
        """No core injects schedule events at or past warmup+measure
        (the reference core's injection gate) even when a hand-built
        schedule's horizon extends into the drain window."""
        from repro.network import InjectionSchedule

        study = load_study(REPO / "scenarios" / "smoke.json")
        spec = study.scenarios[0].specs[1]
        graph, routing, traffic = build_experiment(spec)
        params = spec.params
        base = Simulator(graph, routing, traffic, params).make_schedule(
            0.5
        )
        window = params.warmup_cycles + params.measure_cycles
        late = InjectionSchedule(
            list(base.cycles) + [window + 5, window + 9],
            list(base.nodes) + list(base.nodes[:2]),
            horizon=window + params.drain_cycles,
        )
        sims, results = {}, {}
        for core in CORES:
            sims[core] = Simulator(
                graph, routing, traffic, params, core=core
            )
            results[core] = sims[core].run(0.5, schedule=late)
        ref = results["reference"].to_dict()
        for core, res in results.items():
            assert res.to_dict() == ref, f"{core} core diverged"
        injected = {c: s.total_flits_injected for c, s in sims.items()}
        assert len(set(injected.values())) == 1, injected


@pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native core"
)
class TestNativeMatchesArray:
    def test_unpinned_results_identical(self):
        """Free-running native and array cores share the schedule
        sampler and RNG streams, so they agree without pinning."""
        spec = switchless_spec()
        graph, routing, traffic = build_experiment(spec)
        rate = spec.rates[0]
        res_n = Simulator(
            graph, routing, traffic, spec.params, core="native"
        ).run(rate)
        res_a = Simulator(
            graph, routing, traffic, spec.params, core="array"
        ).run(rate)
        assert res_n.to_dict() == res_a.to_dict()

    def test_repeated_runs_accumulate_identically(self):
        """run() twice on one instance (drain leftovers persist)."""
        study = load_study(REPO / "scenarios" / "smoke.json")
        spec = study.scenarios[0].specs[1]  # the mesh config
        graph, routing, traffic = build_experiment(spec)
        sims = [
            Simulator(graph, routing, traffic, spec.params, core=c)
            for c in ("native", "array")
        ]
        for rate in (0.6, 0.3):
            res = [sim.run(rate) for sim in sims]
            assert res[0].to_dict() == res[1].to_dict(), f"rate {rate}"
        assert sims[0].flits_in_flight() == sims[1].flits_in_flight()

    def test_leftover_packets_survive_truncated_drain(self):
        """A zero-cycle drain strands measured packets in flight; the
        next run() must deliver them with sane (non-negative) latencies
        and identical results across cores — regression test for an
        out-of-bounds latency buffer and run-local clock restarts."""
        study = load_study(REPO / "scenarios" / "smoke.json")
        spec = study.scenarios[0].specs[1]
        params = spec.params.scaled(drain_cycles=0)
        graph, routing, traffic = build_experiment(spec)
        sims = [
            Simulator(graph, routing, traffic, params, core=c)
            for c in ("native", "array")
        ]
        first = [sim.run(0.9) for sim in sims]
        assert first[0].to_dict() == first[1].to_dict()
        assert sims[0].flits_in_flight() > 0  # drain really truncated
        second = [sim.run(0.0) for sim in sims]
        assert second[0].to_dict() == second[1].to_dict()
        for res in second:
            assert res.avg_latency >= 0
            assert res.p50_latency >= 0


def test_unknown_core_rejected():
    study = load_study(REPO / "scenarios" / "smoke.json")
    spec = study.scenarios[0].specs[0]
    graph, routing, traffic = build_experiment(spec)
    with pytest.raises(ValueError, match="unknown simulation core"):
        Simulator(graph, routing, traffic, spec.params, core="turbo")
