"""SimParams: Table IV defaults and validation."""

import pytest

from repro.network import SimParams


def test_table_iv_defaults():
    p = SimParams()
    assert p.packet_length == 4
    assert p.vc_buffer_size == 32
    assert p.warmup_cycles == 5000
    assert p.measure_cycles == 10000


def test_scaled_copy():
    p = SimParams().scaled(measure_cycles=100, seed=9)
    assert p.measure_cycles == 100
    assert p.seed == 9
    assert p.packet_length == 4


def test_total_cycles():
    p = SimParams(warmup_cycles=10, measure_cycles=20, drain_cycles=5)
    assert p.total_cycles == 35


@pytest.mark.parametrize(
    "kw",
    [
        {"packet_length": 0},
        {"vc_buffer_size": 2},  # smaller than a packet
        {"injection_width": 0},
        {"ejection_width": 0},
        {"warmup_cycles": -1},
        {"router_latency": -1},
    ],
)
def test_validation(kw):
    with pytest.raises(ValueError):
        SimParams(**kw)
