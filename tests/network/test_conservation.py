"""Flit-conservation property tests across cores and configurations.

Two invariants, checked over a grid of (topology, routing, rate)
configurations that includes capacity > 1 links and ejection_width > 1:

* always: ``total_flits_injected == total_flits_ejected +
  flits_in_flight()`` — no flit is created or destroyed in transit;
* after a full run at sub-saturation load with a generous drain
  window: the network is empty (``flits_in_flight() == 0``) and every
  injected flit was ejected.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.spec import ExperimentSpec, build_experiment
from repro.network import SimParams, Simulator, native_available
from repro.routing.mesh import XYMeshRouting
from repro.topology.mesh import MeshSpec, build_mesh
from repro.traffic import UniformTraffic

from .test_simulator import LineRouting, line_graph

CORES = ["array", "reference"] + (
    ["native"] if native_available() else []
)


def _params(seed, **kw):
    base = dict(
        warmup_cycles=100, measure_cycles=250, drain_cycles=600, seed=seed
    )
    base.update(kw)
    return SimParams(**base)


def _build(config, seed):
    """(graph, routing, traffic, params) for a named grid point."""
    if config == "line":
        g = line_graph(4, latency=2)
        return g, LineRouting(g), UniformTraffic(g), _params(seed)
    if config == "mesh":
        mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
        return (
            mesh.graph,
            XYMeshRouting(mesh),
            UniformTraffic(mesh.graph),
            _params(seed),
        )
    if config == "mesh_cap2":
        # capacity-2 links with matching injection/ejection widths
        mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2, capacity=2))
        return (
            mesh.graph,
            XYMeshRouting(mesh),
            UniformTraffic(mesh.graph),
            _params(seed, injection_width=2, ejection_width=2),
        )
    raise AssertionError(config)


def _assert_conserved(sim, drained=True):
    in_flight = sim.flits_in_flight()
    assert (
        sim.total_flits_injected == sim.total_flits_ejected + in_flight
    )
    if drained:
        assert in_flight == 0
        assert sim.total_flits_injected == sim.total_flits_ejected


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("config", ["line", "mesh", "mesh_cap2"])
@given(rate=st.floats(0.05, 0.4), seed=st.integers(0, 50))
@settings(max_examples=5, deadline=None)
def test_conservation_grid(config, core, rate, seed):
    graph, routing, traffic, params = _build(config, seed)
    sim = Simulator(graph, routing, traffic, params, core=core)
    sim.run(rate)
    _assert_conserved(sim)


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("mode", ["minimal", "valiant"])
def test_conservation_switchless(core, mode):
    """Wafer-scale switchless topology, both routing modes."""
    spec = ExperimentSpec.create(
        topology="switchless",
        topology_opts={
            "preset": "radix16_equiv",
            "num_wgroups": 2,
            "cgroups_per_wafer": 1,
        },
        routing="switchless",
        routing_opts={"mode": mode},
        traffic="uniform",
        traffic_opts={"scope": ("group", 0)},
        params=SimParams(
            warmup_cycles=100,
            measure_cycles=250,
            drain_cycles=800,
            seed=21,
        ),
        rates=[0.3],
    )
    graph, routing, traffic = build_experiment(spec)
    sim = Simulator(graph, routing, traffic, spec.params, core=core)
    sim.run(0.3)
    _assert_conserved(sim)


@pytest.mark.parametrize("core", CORES)
def test_conservation_holds_mid_flight(core):
    """At saturating load the drain window is too short to empty the
    network — the running invariant must still hold exactly."""
    g = line_graph(4, latency=2)
    params = _params(3, drain_cycles=0)
    traffic = UniformTraffic(g)
    sim = Simulator(g, LineRouting(g), traffic, params, core=core)
    sim.run(0.9)
    _assert_conserved(sim, drained=False)
