"""Regression: saturation detection with partially active patterns.

Permutation patterns leave fixed-point nodes inactive, so the injected
load is below the nominal flits/cycle/chip.  The saturation heuristic
must compare accepted throughput against the *effective* offered load,
otherwise unsaturated permutation runs are misflagged (found while
regenerating Fig. 10(b))."""

from repro.network import SimParams, Simulator
from repro.routing import XYMeshRouting
from repro.topology.mesh import MeshSpec, build_mesh
from repro.traffic import BitReverseTraffic, UniformTraffic

PARAMS = SimParams(
    warmup_cycles=300, measure_cycles=1500, drain_cycles=400, seed=4
)


def test_bitreverse_not_misflagged_below_saturation():
    mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    # 12 of 16 nodes are active -> effective offered = 0.75 * nominal
    traffic = BitReverseTraffic(mesh.graph)
    sim = Simulator(mesh.graph, XYMeshRouting(mesh), traffic, PARAMS)
    res = sim.run(0.8)
    assert res.effective_offered < res.offered_rate
    assert abs(res.effective_offered - 0.6) < 0.01
    # accepted tracks the effective load; must NOT read as saturated
    assert res.accepted_rate > 0.5
    assert not res.saturated


def test_uniform_effective_equals_nominal():
    mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    traffic = UniformTraffic(mesh.graph)
    sim = Simulator(mesh.graph, XYMeshRouting(mesh), traffic, PARAMS)
    res = sim.run(0.5)
    assert res.effective_offered == res.offered_rate


def test_true_saturation_still_detected():
    mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    traffic = BitReverseTraffic(mesh.graph)
    sim = Simulator(mesh.graph, XYMeshRouting(mesh), traffic, PARAMS)
    res = sim.run(3.9)
    assert res.saturated
