"""C-group ports, Property-2 ordering, boundary walks, delivery paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SwitchlessConfig
from repro.core.cgroup import CGroup
from repro.routing.base import validate_path
from repro.topology.graph import NetworkGraph


def make_cgroup(mesh_dim=4, num_local=7, num_global=5, index=3, **kw):
    cfg = SwitchlessConfig(
        mesh_dim=mesh_dim, chiplet_dim=1,
        num_local=num_local, num_global=num_global, **kw
    )
    graph = NetworkGraph("test")
    return CGroup(cfg, wgroup=0, index=index, graph=graph, chip_base=0), graph


class TestPorts:
    def test_port_count(self):
        cg, _ = make_cgroup()
        assert len(cg.ports) == 12

    def test_property2_order(self):
        """Locals to lower C-groups, then globals, then locals to higher."""
        cg, _ = make_cgroup(index=3)
        roles = [(p.role, p.peer) for p in cg.ports]
        lowers = [peer for role, peer in roles if role == "local" and peer < 3]
        highers = [peer for role, peer in roles if role == "local" and peer > 3]
        first_global = next(
            i for i, (role, _) in enumerate(roles) if role == "global"
        )
        last_global = max(
            i for i, (role, _) in enumerate(roles) if role == "global"
        )
        for i, (role, peer) in enumerate(roles):
            if role == "local" and peer < 3:
                assert i < first_global
            if role == "local" and peer > 3:
                assert i > last_global
        assert lowers == sorted(lowers)
        assert highers == sorted(highers)

    def test_positions_monotone_in_rank(self):
        cg, _ = make_cgroup()
        positions = [p.position for p in cg.ports]
        assert positions == sorted(positions)

    def test_labels_above_nodes(self):
        cg, _ = make_cgroup()
        for p in cg.ports:
            assert p.label >= cg.cfg.nodes_per_cgroup

    def test_no_local_port_to_self(self):
        cg, _ = make_cgroup(index=2)
        with pytest.raises(KeyError):
            cg.local_port(2)

    def test_more_ports_than_perimeter_allowed(self):
        cg, _ = make_cgroup(mesh_dim=2, num_local=7, num_global=5)
        assert len(cg.ports) == 12
        positions = [p.position for p in cg.ports]
        assert positions == sorted(positions)


class TestBoundaryWalk:
    @given(
        i=st.integers(0, 11),
        j=st.integers(0, 11),
    )
    @settings(max_examples=40, deadline=None)
    def test_walk_valid_and_monotone(self, i, j):
        cg, graph = make_cgroup(mesh_dim=4)
        a, b = cg.perimeter[i], cg.perimeter[j]
        links = cg.boundary_walk(a, b)
        validate_path(graph, a, b, [(lid, 0) for lid in links])
        # positions strictly monotone along the walk (never cross seam)
        positions = [cg.position_of[a]]
        for lid in links:
            positions.append(cg.position_of[graph.links[lid].dst])
        diffs = {q - p for p, q in zip(positions, positions[1:])}
        assert diffs <= {1} or diffs <= {-1}

    def test_walk_direction(self):
        cg, _ = make_cgroup()
        a, b = cg.perimeter[2], cg.perimeter[7]
        assert cg.walk_is_up(a, b) is True
        assert cg.walk_is_up(b, a) is False
        assert cg.walk_is_up(a, a) is None


class TestDelivery:
    @given(
        entry=st.integers(0, 11),
        dsty=st.integers(0, 4),
        dstx=st.integers(0, 4),
        dim=st.sampled_from([3, 4, 5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_delivery_paths_valid(self, entry, dsty, dstx, dim):
        cg, graph = make_cgroup(mesh_dim=dim)
        perim = cg.perimeter
        a = perim[entry % len(perim)]
        b = cg.mesh.grid[dsty % dim][dstx % dim]
        links = cg.delivery_links(a, b)
        validate_path(graph, a, b, [(lid, 0) for lid in links])

    def test_dive_leaves_ring_quickly(self):
        """Delivery to interior nodes must not ride the boundary ring."""
        cg, graph = make_cgroup(mesh_dim=5)
        a = cg.perimeter[2]  # non-corner top node
        b = cg.mesh.grid[2][2]  # interior
        links = cg.delivery_links(a, b)
        perim = set(cg.perimeter)
        ring_links = sum(
            1
            for lid in links
            if graph.links[lid].src in perim and graph.links[lid].dst in perim
        )
        assert ring_links == 0

    def test_corner_delivery_uses_one_ring_hop(self):
        cg, graph = make_cgroup(mesh_dim=5)
        a = cg.perimeter[2]
        corner = cg.mesh.grid[4][4]
        links = cg.delivery_links(a, corner)
        perim = set(cg.perimeter)
        ring_links = sum(
            1
            for lid in links
            if graph.links[lid].src in perim and graph.links[lid].dst in perim
        )
        assert ring_links <= 1


class TestIORouterCGroup:
    def test_structure(self):
        from repro.core.cgroup_io import IORouterCGroup

        cfg = SwitchlessConfig.small_equiv(cgroup_style="io-router")
        graph = NetworkGraph("io")
        cg = IORouterCGroup(cfg, 0, 1, graph, chip_base=0)
        assert len(cg.cores) == cfg.chips_per_cgroup
        assert all(p.attach == cg.hub for p in cg.ports)
        assert cg.transit_links(cg.hub, cg.hub) == []
        path = cg.delivery_links(cg.hub, cg.cores[0])
        assert len(path) == 1
        two_hop = cg.route_links(cg.cores[0], cg.cores[1])
        assert len(two_hop) == 2
