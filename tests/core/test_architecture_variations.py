"""Sec. III-D architecture variations beyond the flagship configuration."""

import random

import pytest

from repro.analysis import switchless_diameter
from repro.core import SwitchlessConfig, build_switchless
from repro.routing import SwitchlessRouting, verify_deadlock_free
from repro.routing.base import validate_path


class TestSingleWGroupSystem:
    """Sec. III-D1: small-scale networks as one fully connected W-group."""

    @pytest.fixture(scope="class")
    def system(self):
        return build_switchless(SwitchlessConfig(
            mesh_dim=3, chiplet_dim=1, num_local=5, num_global=0,
        ))

    def test_routes_need_one_local_hop_max(self, system):
        r = SwitchlessRouting(system, "minimal")
        rng = random.Random(0)
        terms = system.graph.terminals()
        for _ in range(150):
            s, d = rng.choice(terms), rng.choice(terms)
            if s == d:
                continue
            path = r.route(s, d, rng)
            validate_path(system.graph, s, d, path, num_vcs=r.num_vcs)
            classes = [system.graph.links[l].klass for l, _ in path]
            assert classes.count("local") <= 1
            assert classes.count("global") == 0

    def test_deadlock_free(self, system):
        r = SwitchlessRouting(system, "minimal")
        assert verify_deadlock_free(system.graph, r, max_pairs=800).acyclic

    def test_diameter_model(self, system):
        d = switchless_diameter(system.cfg)
        assert d.global_hops == 0 and d.local_hops == 1


class TestUnbalancedConfigs:
    """Sec. III-D2: parameters can trade local vs global bandwidth."""

    def test_global_heavy_builds_and_routes(self):
        cfg = SwitchlessConfig(
            mesh_dim=3, chiplet_dim=1, num_local=2, num_global=5,
            num_wgroups=6,
        )
        system = build_switchless(cfg)
        r = SwitchlessRouting(system, "minimal")
        rng = random.Random(1)
        terms = system.graph.terminals()
        for _ in range(100):
            s, d = rng.choice(terms), rng.choice(terms)
            if s != d:
                validate_path(
                    system.graph, s, d, r.route(s, d, rng), num_vcs=r.num_vcs
                )

    def test_local_heavy_throughput_bounds_shift(self):
        from repro.analysis import (
            global_throughput_bound,
            local_throughput_bound,
        )

        local_heavy = SwitchlessConfig(
            mesh_dim=2, chiplet_dim=1, num_local=6, num_global=1,
        )
        global_heavy = SwitchlessConfig(
            mesh_dim=2, chiplet_dim=1, num_local=2, num_global=5,
        )
        assert local_throughput_bound(local_heavy) > local_throughput_bound(
            global_heavy
        )
        assert global_throughput_bound(global_heavy) > global_throughput_bound(
            local_heavy
        )


class TestMeshDimOne:
    """Degenerate single-node C-groups ("a single-chiplet C-group")."""

    def test_builds_and_routes(self):
        cfg = SwitchlessConfig(
            mesh_dim=1, chiplet_dim=1, num_local=3, num_global=2,
            num_wgroups=4,
        )
        system = build_switchless(cfg)
        r = SwitchlessRouting(system, "minimal")
        rng = random.Random(2)
        terms = system.graph.terminals()
        for _ in range(100):
            s, d = rng.choice(terms), rng.choice(terms)
            if s != d:
                path = r.route(s, d, rng)
                validate_path(system.graph, s, d, path, num_vcs=r.num_vcs)
                # no mesh hops exist at all
                classes = {system.graph.links[l].klass for l, _ in path}
                assert classes <= {"local", "global"}

    def test_deadlock_free(self):
        cfg = SwitchlessConfig(
            mesh_dim=1, chiplet_dim=1, num_local=3, num_global=2,
            num_wgroups=4,
        )
        system = build_switchless(cfg)
        r = SwitchlessRouting(system, "minimal")
        assert verify_deadlock_free(system.graph, r, max_pairs=600).acyclic
