"""Ring-peel labeling and up/down typing (Sec. IV-B properties)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import (
    CGroupLabeling,
    downonly_reachable_fraction,
    ring_peel_labels,
)


class TestRingPeel:
    @given(dim=st.integers(1, 9))
    @settings(max_examples=20, deadline=None)
    def test_bijection(self, dim):
        labels = ring_peel_labels(dim)
        flat = sorted(l for row in labels for l in row)
        assert flat == list(range(dim * dim))

    @given(dim=st.integers(2, 9))
    @settings(max_examples=20, deadline=None)
    def test_perimeter_consecutive_clockwise(self, dim):
        labels = ring_peel_labels(dim)
        # clockwise boundary walk from top-left
        walk = (
            [(0, x) for x in range(dim)]
            + [(y, dim - 1) for y in range(1, dim)]
            + [(dim - 1, x) for x in range(dim - 2, -1, -1)]
            + [(y, 0) for y in range(dim - 2, 0, -1)]
        )
        values = [labels[y][x] for (y, x) in walk]
        base = dim * dim - len(walk)
        assert values == list(range(base, dim * dim))

    @given(dim=st.integers(3, 9))
    @settings(max_examples=20, deadline=None)
    def test_inner_rings_below_outer(self, dim):
        labels = ring_peel_labels(dim)
        outer_min = dim * dim - (4 * (dim - 1))
        for y in range(1, dim - 1):
            for x in range(1, dim - 1):
                assert labels[y][x] < outer_min


class TestCGroupLabeling:
    def test_ports_above_cores(self):
        lab = CGroupLabeling.build(4, 12)
        assert min(lab.port_labels) >= 16
        assert lab.port_labels == sorted(lab.port_labels)

    def test_up_typing(self):
        lab = CGroupLabeling.build(3, 5)
        # boundary hop from position 0 to 1 is up
        assert lab.is_up_mesh_hop((0, 0), (0, 1))
        assert not lab.is_up_mesh_hop((0, 1), (0, 0))


class TestDownOnlyReachability:
    def test_quantifies_c1_gap(self):
        """The literal Property 1(c1) cannot hold: from any start, nodes
        labeled above it are unreachable by down-only paths.  This test
        pins the reproduction finding."""
        labels = ring_peel_labels(5)
        # the global maximum sits at the end of the boundary walk (1, 0)
        assert labels[1][0] == 24
        assert downonly_reachable_fraction(labels, (1, 0)) == 1.0
        # every other perimeter node has labels above it -> gap
        frac = downonly_reachable_fraction(labels, (0, 2))
        assert frac < 1.0
        # a down-only path can never reach more than (label+1) nodes
        assert frac <= (labels[0][2] + 1) / 25

    @given(dim=st.integers(2, 7))
    @settings(max_examples=15, deadline=None)
    def test_max_label_reaches_all(self, dim):
        labels = ring_peel_labels(dim)
        # find the max-label node
        best = max(
            ((y, x) for y in range(dim) for x in range(dim)),
            key=lambda p: labels[p[0]][p[1]],
        )
        assert downonly_reachable_fraction(labels, best) == 1.0
