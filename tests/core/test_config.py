"""SwitchlessConfig derivations and paper configurations."""

import pytest

from repro.core import SwitchlessConfig


class TestPaperConfigs:
    def test_radix16_equiv(self):
        cfg = SwitchlessConfig.radix16_equiv()
        assert cfg.cgroups_per_wgroup == 8
        assert cfg.num_ports == 12
        assert cfg.num_wgroups_effective == 41
        assert cfg.num_chips == 1312
        assert cfg.num_nodes == 5248
        assert cfg.paper_m == 2
        assert cfg.paper_n == 6.0
        # (a, b) = (2, 4) per Sec. III-B1
        assert cfg.cgroups_per_wafer == 2
        assert cfg.wafers_per_wgroup == 4

    def test_radix32_equiv(self):
        cfg = SwitchlessConfig.radix32_equiv()
        assert cfg.cgroups_per_wgroup == 16
        assert cfg.num_ports == 24
        assert cfg.num_wgroups_effective == 145
        assert cfg.mesh_dim == 7

    def test_case_study(self):
        cfg = SwitchlessConfig.case_study()
        assert cfg.num_ports == 48
        assert cfg.cgroups_per_wgroup == 32
        assert cfg.num_global == 17
        assert cfg.num_wgroups_effective == 545
        assert cfg.num_chips == 279040
        assert cfg.cgroups_per_wafer == 4
        assert cfg.wafers_per_wgroup == 8

    def test_small_equiv_matches_baseline(self):
        from repro.topology.dragonfly import DragonflyConfig

        sl = SwitchlessConfig.small_equiv()
        df = DragonflyConfig.small_equiv()
        assert sl.chips_per_cgroup == df.p
        assert sl.cgroups_per_wgroup == df.a
        assert sl.num_global == df.h
        assert sl.num_chips == df.num_chips


class TestValidation:
    def test_chiplet_dim_divides(self):
        with pytest.raises(ValueError):
            SwitchlessConfig(
                mesh_dim=4, chiplet_dim=3, num_local=3, num_global=2
            )

    def test_too_many_wgroups(self):
        with pytest.raises(ValueError):
            SwitchlessConfig(
                mesh_dim=3, chiplet_dim=1, num_local=3, num_global=2,
                num_wgroups=100,
            )

    def test_multi_wgroup_needs_globals(self):
        with pytest.raises(ValueError):
            SwitchlessConfig(
                mesh_dim=3, chiplet_dim=1, num_local=3, num_global=0,
                num_wgroups=2,
            )

    def test_single_wgroup_without_globals_ok(self):
        cfg = SwitchlessConfig(
            mesh_dim=3, chiplet_dim=1, num_local=3, num_global=0,
        )
        assert cfg.num_wgroups_effective == 1
        assert cfg.max_wgroups == 1

    def test_cgroups_per_wafer_divides(self):
        with pytest.raises(ValueError):
            SwitchlessConfig(
                mesh_dim=3, chiplet_dim=1, num_local=3, num_global=2,
                cgroups_per_wafer=3,
            )

    def test_bad_style(self):
        with pytest.raises(ValueError):
            SwitchlessConfig(
                mesh_dim=3, chiplet_dim=1, num_local=3, num_global=2,
                cgroup_style="torus",
            )


class TestDerived:
    def test_with_bandwidth(self):
        cfg = SwitchlessConfig.small_equiv().with_bandwidth(2)
        assert cfg.mesh_capacity == 2
        assert cfg.num_chips == SwitchlessConfig.small_equiv().num_chips

    def test_truncated_system(self):
        cfg = SwitchlessConfig.small_equiv(num_wgroups=4)
        assert cfg.num_wgroups_effective == 4
        assert cfg.num_chips == 4 * 4 * 4

    def test_nodes_per_chip(self):
        cfg = SwitchlessConfig.small_equiv()
        assert cfg.nodes_per_chip == 4
        assert cfg.nodes_per_cgroup == 16
