"""SwitchlessSystem construction: Fig. 6 interconnection invariants."""

import pytest

from repro.core import SwitchlessConfig, build_switchless


class TestStructure:
    def test_counts(self, small_switchless):
        cfg = small_switchless.cfg
        assert small_switchless.graph.num_nodes == cfg.num_nodes
        assert small_switchless.graph.num_chips == cfg.num_chips

    def test_local_all_to_all(self, small_switchless):
        sys = small_switchless
        ab = sys.cfg.cgroups_per_wgroup
        for w in range(sys.num_wgroups):
            for i in range(ab):
                for j in range(ab):
                    if i != j:
                        ch = sys.local_channel(w, i, j)
                        link = sys.graph.links[ch.link]
                        assert link.klass == "local"
                        assert sys.location_of(link.src) == (w, i)
                        assert sys.location_of(link.dst) == (w, j)

    def test_global_all_to_all(self, small_switchless):
        sys = small_switchless
        g = sys.num_wgroups
        for w1 in range(g):
            for w2 in range(g):
                if w1 != w2:
                    ch = sys.global_channel(w1, w2)
                    link = sys.graph.links[ch.link]
                    assert link.klass == "global"
                    assert sys.location_of(link.src)[0] == w1
                    assert sys.location_of(link.dst)[0] == w2

    def test_channel_symmetry(self, small_switchless):
        sys = small_switchless
        for w1 in range(sys.num_wgroups):
            for w2 in range(sys.num_wgroups):
                if w1 == w2:
                    continue
                fwd = sys.graph.links[sys.global_channel(w1, w2).link]
                rev = sys.graph.links[sys.global_channel(w2, w1).link]
                assert (fwd.src, fwd.dst) == (rev.dst, rev.src)

    def test_gateway_owns_global_channel(self, small_switchless):
        sys = small_switchless
        for w1 in range(sys.num_wgroups):
            for w2 in range(sys.num_wgroups):
                if w1 == w2:
                    continue
                gw = sys.gateway_cgroup(w1, w2)
                ch = sys.global_channel(w1, w2)
                assert sys.location_of(
                    sys.graph.links[ch.link].src
                ) == (w1, gw)

    def test_global_ports_per_cgroup_within_h(self, small_switchless):
        sys = small_switchless
        h = sys.cfg.num_global
        used = {}
        for (w1, _w2), ch in sys._global.items():
            loc = sys.location_of(sys.graph.links[ch.link].src)
            used.setdefault(loc, set()).add(ch.src_port.peer)
        for ports in used.values():
            assert len(ports) <= h

    def test_group_nodes_partition(self, small_switchless):
        sys = small_switchless
        seen = set()
        for w in range(sys.num_wgroups):
            nodes = sys.group_nodes(w)
            assert not (seen & set(nodes))
            seen.update(nodes)
        assert len(seen) == sys.graph.num_nodes

    def test_chip_ids_dense(self, small_switchless):
        chips = sorted(small_switchless.graph.chips())
        assert chips == list(range(small_switchless.cfg.num_chips))


class TestVariants:
    def test_single_wgroup_system(self):
        """Sec. III-D1: a single fully-connected W-group, no globals."""
        cfg = SwitchlessConfig(
            mesh_dim=3, chiplet_dim=1, num_local=3, num_global=0,
        )
        sys = build_switchless(cfg)
        assert sys.num_wgroups == 1
        counts = sys.graph.link_class_counts()
        assert "global" not in counts
        assert counts["local"] == 4 * 3  # all-to-all over 4 C-groups

    def test_io_router_variant(self, small_switchless_io):
        sys = small_switchless_io
        hubs = [n for n in sys.graph.nodes if n.kind == "io-router"]
        assert len(hubs) == sys.cfg.num_cgroups
        # every inter-C-group link terminates on hubs
        for link in sys.graph.links:
            if link.klass in ("local", "global"):
                assert sys.graph.nodes[link.src].kind == "io-router"
                assert sys.graph.nodes[link.dst].kind == "io-router"

    def test_truncated_wgroups(self):
        cfg = SwitchlessConfig.small_equiv(num_wgroups=3)
        sys = build_switchless(cfg)
        assert sys.num_wgroups == 3
        sys.graph.validate()

    def test_2b_capacity_applied(self):
        cfg = SwitchlessConfig.small_equiv(mesh_capacity=2)
        sys = build_switchless(cfg)
        for link in sys.graph.links:
            if link.klass in ("onchip", "sr"):
                assert link.capacity == 2
            else:
                assert link.capacity == 1
