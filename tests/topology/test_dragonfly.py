"""Switch-based Dragonfly builder: paper-scale counts and arrangement."""

import pytest

from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.topology.properties import terminal_diameter


class TestConfig:
    def test_radix16_paper_numbers(self):
        cfg = DragonflyConfig.radix16()
        assert cfg.radix == 16
        assert (cfg.p, cfg.a, cfg.h) == (4, 8, 5)
        assert cfg.num_groups == 41
        assert cfg.num_switches == 328
        assert cfg.num_chips == 1312

    def test_radix32_paper_numbers(self):
        cfg = DragonflyConfig.radix32()
        assert cfg.radix == 32
        assert cfg.num_groups == 145
        assert cfg.num_chips == 18560

    def test_slingshot_numbers(self):
        from repro.analysis.case_study import slingshot_config

        cfg = slingshot_config()
        assert cfg.radix == 64
        assert cfg.num_groups == 545
        assert cfg.num_switches == 17440
        assert cfg.num_chips == 279040

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            DragonflyConfig(p=2, a=2, h=1, g=10)

    def test_truncated_groups_allowed(self):
        cfg = DragonflyConfig(p=2, a=4, h=2, g=5)
        sys = build_dragonfly(cfg)
        assert sys.num_groups == 5


class TestArrangement:
    def test_global_links_pair_consistently(self, radix8_dragonfly):
        sys = radix8_dragonfly
        g = sys.cfg.num_groups
        for w1 in range(g):
            for w2 in range(g):
                if w1 == w2:
                    continue
                fwd = sys.global_link(w1, w2)
                rev = sys.global_link(w2, w1)
                lf = sys.graph.links[fwd]
                lr = sys.graph.links[rev]
                assert (lf.src, lf.dst) == (lr.dst, lr.src)

    def test_every_group_pair_connected_once(self, radix8_dragonfly):
        sys = radix8_dragonfly
        count = sys.graph.link_class_counts()["global"]
        g = sys.cfg.num_groups
        assert count == g * (g - 1)  # one duplex channel per ordered pair

    def test_gateway_owns_channel(self, radix8_dragonfly):
        sys = radix8_dragonfly
        for w1 in range(sys.cfg.num_groups):
            for w2 in range(sys.cfg.num_groups):
                if w1 == w2:
                    continue
                gw = sys.gateway_switch(w1, w2)
                link = sys.graph.links[sys.global_link(w1, w2)]
                assert link.src == sys.switches[w1][gw]

    def test_local_all_to_all(self, radix8_dragonfly):
        sys = radix8_dragonfly
        a = sys.cfg.a
        for gi in range(sys.cfg.num_groups):
            for i in range(a):
                for j in range(a):
                    if i != j:
                        assert sys.graph.has_link(
                            sys.switches[gi][i], sys.switches[gi][j]
                        )

    def test_global_ports_within_radix(self, radix8_dragonfly):
        sys = radix8_dragonfly
        for row in sys.switches:
            for sw in row:
                globals_used = sum(
                    1 for l in sys.graph.out_links(sw) if l.klass == "global"
                )
                assert globals_used <= sys.cfg.h


class TestStructure:
    def test_terminal_diameter_is_five_hops(self, radix8_dragonfly):
        # terminal-switch, local, global, local, switch-terminal
        assert terminal_diameter(radix8_dragonfly.graph) == 5

    def test_group_nodes(self, radix8_dragonfly):
        sys = radix8_dragonfly
        nodes = sys.group_nodes(0)
        assert len(nodes) == sys.cfg.a * sys.cfg.p
        assert all(sys.group_of(n) == 0 for n in nodes)

    def test_switch_of_terminal(self, radix8_dragonfly):
        sys = radix8_dragonfly
        t = sys.terminals[2][1][0]
        assert sys.switch_of_terminal(t) == sys.switches[2][1]
