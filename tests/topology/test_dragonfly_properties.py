"""Property-based Dragonfly construction checks over random configs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.dragonfly import DragonflyConfig, build_dragonfly


@st.composite
def dfly_configs(draw):
    p = draw(st.integers(1, 3))
    a = draw(st.integers(2, 5))
    h = draw(st.integers(1, 3))
    gmax = a * h + 1
    g = draw(st.integers(2, min(gmax, 8)))
    return DragonflyConfig(p=p, a=a, h=h, g=g)


@given(cfg=dfly_configs())
@settings(max_examples=25, deadline=None)
def test_counts_match_formulas(cfg):
    sys = build_dragonfly(cfg)
    assert sys.graph.num_chips == cfg.num_chips
    switches = sum(1 for n in sys.graph.nodes if n.kind == "switch")
    assert switches == cfg.num_switches


@given(cfg=dfly_configs())
@settings(max_examples=25, deadline=None)
def test_arrangement_consistent(cfg):
    """Forward and reverse global channels always agree endpoint-wise."""
    sys = build_dragonfly(cfg)
    for w1 in range(cfg.num_groups):
        for w2 in range(cfg.num_groups):
            if w1 == w2:
                continue
            fwd = sys.graph.links[sys.global_link(w1, w2)]
            rev = sys.graph.links[sys.global_link(w2, w1)]
            assert (fwd.src, fwd.dst) == (rev.dst, rev.src)
            assert fwd.klass == "global"


@given(cfg=dfly_configs())
@settings(max_examples=20, deadline=None)
def test_radix_budget_respected(cfg):
    """No switch exceeds its configured port budget."""
    sys = build_dragonfly(cfg)
    for row in sys.switches:
        for sw in row:
            counts = {}
            for link in sys.graph.out_links(sw):
                counts[link.klass] = counts.get(link.klass, 0) + 1
            assert counts.get("terminal", 0) == cfg.p
            assert counts.get("local", 0) == cfg.a - 1
            assert counts.get("global", 0) <= cfg.h
