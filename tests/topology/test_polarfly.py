"""PolarFly ER(q): Moore-bound structure checks."""

import pytest

from repro.topology.polarfly import build_polarfly, polarfly_size
from repro.topology.properties import degree_histogram


@pytest.mark.parametrize("q", [3, 5, 7])
class TestPolarFly:
    def test_router_count(self, q):
        sys = build_polarfly(q)
        assert len(sys.routers) == polarfly_size(q) == q * q + q + 1

    def test_diameter_two(self, q):
        import networkx as nx

        sys = build_polarfly(q)
        router_graph = nx.Graph()
        for link in sys.graph.links:
            if link.klass == "global":
                router_graph.add_edge(link.src, link.dst)
        assert nx.diameter(router_graph) == 2

    def test_degrees(self, q):
        sys = build_polarfly(q)
        for r in sys.routers:
            deg = sum(
                1 for l in sys.graph.out_links(r) if l.klass == "global"
            )
            if r in sys.quadric:
                assert deg == q
            else:
                assert deg == q + 1

    def test_quadric_count(self, q):
        # PG(2,q) has exactly q+1 self-orthogonal points
        assert len(build_polarfly(q).quadric) == q + 1


class TestValidation:
    def test_non_prime_rejected(self):
        with pytest.raises(ValueError):
            build_polarfly(4)
        with pytest.raises(ValueError):
            build_polarfly(63)

    def test_terminals_attached(self):
        sys = build_polarfly(3, terminals_per_router=2)
        assert sys.graph.num_chips == 2 * polarfly_size(3)
