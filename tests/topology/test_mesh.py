"""Mesh/switch/DOJO builders and XY paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.base import validate_path
from repro.topology.mesh import (
    DojoSpec,
    MeshSpec,
    build_dojo_mesh_with_switch,
    build_mesh,
    build_switch_with_terminals,
    xy_links,
)


class TestMeshSpec:
    def test_chiplet_must_divide(self):
        with pytest.raises(ValueError):
            MeshSpec(dim=4, chiplet_dim=3)

    def test_counts(self):
        s = MeshSpec(dim=4, chiplet_dim=2)
        assert s.num_nodes == 16
        assert s.num_chips == 4
        assert s.chips_per_side == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            MeshSpec(dim=2, capacity=0)


class TestBuildMesh:
    def test_link_count(self):
        block = build_mesh(MeshSpec(dim=4))
        # 2 * d * (d-1) channels, two directed links each
        assert block.graph.num_links == 2 * 2 * 4 * 3

    def test_chiplet_boundary_classes(self):
        block = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
        counts = block.graph.link_class_counts()
        # per row: 3 x-links, 1 crossing a chiplet boundary; same for cols
        assert counts["sr"] == 2 * 4 * 1 * 2
        assert counts["onchip"] == 2 * 4 * 2 * 2

    def test_chip_blocks(self):
        block = build_mesh(MeshSpec(dim=4, chiplet_dim=2), chip_base=10)
        chips = block.graph.chips()
        assert sorted(chips) == [10, 11, 12, 13]
        assert all(len(nodes) == 4 for nodes in chips.values())

    def test_perimeter_clockwise(self):
        block = build_mesh(MeshSpec(dim=3))
        perim = block.perimeter_nodes()
        coords = [block.coords[n] for n in perim]
        assert coords == [
            (0, 0), (0, 1), (0, 2), (1, 2), (2, 2), (2, 1), (2, 0), (1, 0),
        ]

    def test_perimeter_adjacent_pairs(self):
        block = build_mesh(MeshSpec(dim=5))
        perim = block.perimeter_nodes()
        for a, b in zip(perim, perim[1:] + perim[:1]):
            ya, xa = block.coords[a]
            yb, xb = block.coords[b]
            assert abs(ya - yb) + abs(xa - xb) == 1

    def test_dim1(self):
        block = build_mesh(MeshSpec(dim=1))
        assert block.perimeter_nodes() == [block.grid[0][0]]
        assert block.graph.num_links == 0


class TestXYLinks:
    @given(
        dim=st.integers(2, 6),
        src=st.integers(0, 35),
        dst=st.integers(0, 35),
    )
    @settings(max_examples=60, deadline=None)
    def test_xy_paths_valid_and_shortest(self, dim, src, dst):
        src %= dim * dim
        dst %= dim * dim
        block = build_mesh(MeshSpec(dim=dim))
        path = [(lid, 0) for lid in xy_links(block, src, dst)]
        validate_path(block.graph, src, dst, path)
        sy, sx = block.coords[src]
        dy, dx = block.coords[dst]
        assert len(path) == abs(sy - dy) + abs(sx - dx)

    def test_xy_goes_x_first(self):
        block = build_mesh(MeshSpec(dim=3))
        links = xy_links(block, block.grid[0][0], block.grid[2][2])
        first = block.graph.links[links[0]]
        assert block.coords[first.dst] == (0, 1)


class TestSwitchBlock:
    def test_structure(self):
        sw = build_switch_with_terminals(6)
        assert len(sw.terminals) == 6
        assert sw.graph.degree_out(sw.switch) == 6
        assert not sw.graph.nodes[sw.switch].is_terminal
        sw.graph.validate()


class TestDojo:
    def test_structure(self):
        dojo = build_dojo_mesh_with_switch(DojoSpec(dim=4))
        # every perimeter node gets a switch channel
        assert dojo.graph.degree_out(dojo.switch) == 12
        dojo.graph.validate()

    def test_switch_cuts_diameter(self):
        from repro.topology.properties import terminal_diameter

        spec = DojoSpec(dim=6)
        with_sw = build_dojo_mesh_with_switch(spec)
        plain = build_mesh(MeshSpec(dim=6))
        assert terminal_diameter(with_sw.graph) < terminal_diameter(plain.graph)
