"""Three-stage fat-tree builder checks."""

import pytest

from repro.topology.fattree import build_fattree
from repro.topology.properties import terminal_diameter


def test_k4_counts():
    sys = build_fattree(4)
    assert len(sys.core) == 4
    assert sys.num_switches == 4 + 4 * (2 + 2)
    assert len(sys.terminals) == 16


def test_terminal_count_formula():
    for k in (2, 4, 6):
        sys = build_fattree(k)
        assert len(sys.terminals) == k ** 3 // 4


def test_diameter_six_hops():
    # terminal-edge-agg-core-agg-edge-terminal
    assert terminal_diameter(build_fattree(4).graph) == 6


def test_odd_radix_rejected():
    with pytest.raises(ValueError):
        build_fattree(5)


def test_full_bisection_port_budget():
    sys = build_fattree(6)
    for pod in sys.edge:
        for e in pod:
            links = list(sys.graph.out_links(e))
            down = sum(1 for l in links if l.klass == "terminal")
            up = sum(1 for l in links if l.klass == "local")
            assert down == up == 3
