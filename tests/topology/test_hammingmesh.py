"""HammingMesh builder structure checks."""

from repro.topology.hammingmesh import HammingMeshConfig, build_hammingmesh
from repro.topology.properties import terminal_diameter


def test_counts():
    cfg = HammingMeshConfig(board_dim=4, array_rows=2, array_cols=3)
    sys = build_hammingmesh(cfg)
    assert cfg.num_chips == 4 * 4 * 2 * 3
    assert len(sys.row_switches) == 8
    assert len(sys.col_switches) == 12
    sys.graph.validate()


def test_onboard_links_do_not_cross_boards():
    cfg = HammingMeshConfig(board_dim=2, array_rows=2, array_cols=2)
    sys = build_hammingmesh(cfg)
    for link in sys.graph.links:
        if link.klass != "sr":
            continue
        (r1, c1) = sys.graph.nodes[link.src].coords
        (r2, c2) = sys.graph.nodes[link.dst].coords
        assert (r1 // 2, c1 // 2) == (r2 // 2, c2 // 2)


def test_edge_chips_reach_trees():
    cfg = HammingMeshConfig(board_dim=4, array_rows=2, array_cols=2)
    sys = build_hammingmesh(cfg)
    # west-edge chip of board (0,0), row 1
    nid = sys.grid[1][0]
    assert sys.graph.has_link(nid, sys.row_switches[1])
    # interior chip has no tree link
    interior = sys.grid[1][1]
    assert not sys.graph.has_link(interior, sys.row_switches[1])
    assert not sys.graph.has_link(interior, sys.col_switches[1])


def test_diameter_bounded():
    cfg = HammingMeshConfig(board_dim=2, array_rows=3, array_cols=3)
    sys = build_hammingmesh(cfg)
    # any chip reaches any other within: to board edge (<=2), row tree,
    # across, column tree, to destination (<= 8 total at this scale)
    assert terminal_diameter(sys.graph) <= 8
