"""NetworkGraph substrate: construction, validation, export."""

import pytest

from repro.topology.graph import LINK_CLASSES, Link, NetworkGraph


def ring(n=4, **link_kw):
    g = NetworkGraph("ring")
    for i in range(n):
        g.add_node("core", chip=i)
    for i in range(n):
        g.add_channel(i, (i + 1) % n, latency=1, **link_kw)
    return g


class TestConstruction:
    def test_node_ids_dense(self):
        g = NetworkGraph()
        ids = [g.add_node("core", chip=i) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert g.num_nodes == 5

    def test_channel_creates_two_links(self):
        g = ring(3)
        assert g.num_links == 6
        for link in g.links:
            assert g.has_link(link.dst, link.src)

    def test_links_between_order(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        g.add_node("b", 1)
        l1, _ = g.add_channel(0, 1, latency=1)
        l2, _ = g.add_channel(0, 1, latency=2)
        assert g.links_between(0, 1) == [l1, l2]
        assert g.link_between(0, 1, 1) == l2

    def test_link_between_missing_raises(self):
        g = ring(4)
        with pytest.raises(KeyError):
            g.link_between(0, 2)
        with pytest.raises(KeyError):
            g.link_between(0, 1, index=5)

    def test_self_link_rejected(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        with pytest.raises(ValueError):
            g.add_link(0, 0, latency=1)

    def test_unknown_node_rejected(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        with pytest.raises(KeyError):
            g.add_link(0, 9, latency=1)

    def test_bad_link_class_rejected(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        g.add_node("b", 1)
        with pytest.raises(ValueError):
            g.add_link(0, 1, latency=1, klass="warp")

    def test_bad_latency_capacity_rejected(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        g.add_node("b", 1)
        with pytest.raises(ValueError):
            g.add_link(0, 1, latency=0)
        with pytest.raises(ValueError):
            g.add_link(0, 1, latency=1, capacity=0)


class TestChipsAndTerminals:
    def test_chips_grouping(self):
        g = NetworkGraph()
        for i in range(6):
            g.add_node("core", chip=i // 2)
        chips = g.chips()
        assert set(chips) == {0, 1, 2}
        assert all(len(v) == 2 for v in chips.values())

    def test_non_terminal_not_in_chips(self):
        g = NetworkGraph()
        g.add_node("switch", chip=-1, is_terminal=False)
        g.add_node("core", chip=0)
        assert g.terminals() == [1]
        assert -1 not in g.chips()


class TestValidation:
    def test_missing_reverse_detected(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        g.add_node("b", 1)
        g.add_link(0, 1, latency=1)
        with pytest.raises(ValueError, match="reverse"):
            g.validate()

    def test_no_terminals_detected(self):
        g = NetworkGraph()
        g.add_node("s", -1, is_terminal=False)
        g.add_node("s2", -1, is_terminal=False)
        g.add_channel(0, 1, latency=1)
        with pytest.raises(ValueError, match="terminal"):
            g.validate()

    def test_valid_ring_passes(self):
        ring(5).validate()


class TestExport:
    def test_to_networkx_simple(self):
        g = ring(6)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 6

    def test_to_networkx_multigraph_keeps_parallels(self):
        g = NetworkGraph()
        g.add_node("a", 0)
        g.add_node("b", 1)
        g.add_channel(0, 1, latency=1)
        g.add_channel(0, 1, latency=1)
        assert g.to_networkx(multigraph=True).number_of_edges() == 2
        assert g.to_networkx().number_of_edges() == 1

    def test_link_class_counts(self):
        g = ring(4, klass="sr")
        assert g.link_class_counts() == {"sr": 8}

    def test_degree_and_neighbors(self):
        g = ring(4)
        assert g.degree_out(0) == 2
        assert sorted(g.neighbors_out(0)) == [1, 3]
        assert len(g.in_links(0)) == 2
