"""Graph property helpers cross-checked on known topologies."""

from repro.topology.graph import NetworkGraph
from repro.topology.mesh import MeshSpec, build_mesh
from repro.topology.properties import (
    average_shortest_path,
    bisection_channels,
    degree_histogram,
    hop_diameter,
    terminal_diameter,
)


def test_mesh_diameter():
    block = build_mesh(MeshSpec(dim=4))
    assert hop_diameter(block.graph) == 6  # 2*(4-1)
    assert terminal_diameter(block.graph) == 6


def test_average_shortest_path_positive():
    block = build_mesh(MeshSpec(dim=3))
    avg = average_shortest_path(block.graph)
    assert 1.0 < avg < 4.0


def test_bisection_channels_mesh():
    block = build_mesh(MeshSpec(dim=4))
    left = [block.grid[y][x] for y in range(4) for x in range(2)]
    right = [block.grid[y][x] for y in range(4) for x in range(2, 4)]
    # 4 rows x 1 crossing channel x 2 directions
    assert bisection_channels(block.graph, left, right) == 8


def test_bisection_respects_capacity():
    block = build_mesh(MeshSpec(dim=4, capacity=2))
    left = [block.grid[y][x] for y in range(4) for x in range(2)]
    right = [block.grid[y][x] for y in range(4) for x in range(2, 4)]
    assert bisection_channels(block.graph, left, right) == 16


def test_degree_histogram():
    block = build_mesh(MeshSpec(dim=3))
    hist = degree_histogram(block.graph)
    # 4 corners (deg 2), 4 edges (deg 3), 1 centre (deg 4)
    assert hist == {2: 4, 3: 4, 4: 1}


def test_snake_chip_nodes_adjacency():
    """Consecutive chips in snake order share a mesh boundary."""
    block = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    order = block.snake_chip_nodes()
    assert len(order) == 16
    # chips of 4 nodes each; check chip order is 0,1,3,2 (row-major ids)
    chips = [block.graph.nodes[n].chip for n in order]
    assert chips == [0] * 4 + [1] * 4 + [3] * 4 + [2] * 4
