"""Table III cost arithmetic against the paper's published numbers."""

import pytest

from repro.analysis import (
    build_table_iii,
    dragonfly_cost,
    fattree_cost,
    format_table_iii,
    slingshot_config,
    switchless_cost,
)
from repro.core import SwitchlessConfig


class TestFatTreeRows:
    def test_full_fattree(self):
        c = fattree_cost(num_processors=65536, planes=1)
        assert c.num_switches == 5120
        assert c.num_cabinets == 608
        assert c.cable_count == 196608  # 197K

    def test_four_plane(self):
        c = fattree_cost(num_processors=65536, planes=4)
        assert c.num_switches == 20480
        assert c.num_cabinets == 896
        assert round(c.cable_count / 1e3) == 786

    def test_tapered(self):
        c = fattree_cost(num_processors=98304, planes=4, taper=3)
        assert c.num_switches == 14336
        assert c.num_cabinets == 960
        assert round(c.cable_count / 1e3) == 655


class TestDragonflyRow:
    def test_slingshot(self):
        c = dragonfly_cost(slingshot_config())
        assert c.num_switches == 17440
        assert c.num_cabinets == 2180
        assert c.num_processors == 279040
        assert round(c.cable_count / 1e3) == 698


class TestSwitchlessRow:
    def test_case_study(self):
        c = switchless_cost(SwitchlessConfig.case_study())
        assert c.num_switches == 0
        assert c.num_cabinets == 545
        assert c.num_processors == 279040
        assert round(c.cable_count / 1e3) == 419
        # global cables only, E/2 average: ~74K*E (paper: 73K*E)
        assert round(c.cable_length_coeff / 1e3) == 74

    def test_cable_length_less_than_half_of_slingshot(self):
        """The Sec. III-C3 claim under our documented estimator."""
        sl = switchless_cost(SwitchlessConfig.case_study())
        ss = dragonfly_cost(slingshot_config())
        assert sl.cable_length_coeff < 0.5 * ss.cable_length_coeff

    def test_cabinet_reduction_4x(self):
        sl = switchless_cost(SwitchlessConfig.case_study())
        ss = dragonfly_cost(slingshot_config())
        assert ss.num_cabinets / sl.num_cabinets == 4.0


class TestTableIII:
    def test_computed_matches_paper_where_exact(self):
        rows = {r.name: r for r in build_table_iii()}
        for name in (
            "Three-Stage Fat-Tree",
            "Three-Stage Fat-Tree x4",
            "Three-Stage F-T (3:1 Taper)",
            "Co-Packaged PolarFly (p=32)",
            "Dragonfly (Slingshot)",
        ):
            row = rows[name]
            paper_sw, paper_cab, paper_proc, paper_cables = row.paper
            assert row.num_switches == paper_sw
            assert row.num_processors == paper_proc
            if paper_cables is not None:
                assert row.cable_count_k == pytest.approx(
                    paper_cables, rel=0.02
                )

    def test_switchless_wins_local_throughput(self):
        rows = {r.name: r for r in build_table_iii()}
        sl = rows["Switch-less Dragonfly"]
        ss = rows["Dragonfly (Slingshot)"]
        assert sl.t_local > ss.t_local
        assert sl.t_global >= ss.t_global
        assert sl.num_switches == 0

    def test_formatting(self):
        table = format_table_iii()
        assert "Switch-less Dragonfly" in table
        assert "Slingshot" in table
        assert len(table.splitlines()) == 2 + 9
