"""Channel-consuming analysis helpers (repro.analysis.telemetry)."""

import math

import pytest

from repro.analysis import (
    channel_frame,
    congestion_evolution,
    hot_links,
    link_load_summary,
    misroute_rows,
    misroute_table,
)
from repro.api import build_study

METRICS = ["link_util", "misroute", "timeseries"]


@pytest.fixture(scope="module")
def result():
    return build_study("smoke", "quick").with_metrics(METRICS).run(workers=1)


def first_point(result):
    return result.scenarios[0].curves[0].points[0]


def test_channel_frame_is_column_major(result):
    ch = first_point(result).channel("link_util")
    frame = channel_frame(ch)
    assert set(frame) == set(ch.columns)
    assert len(frame["link"]) == ch.num_rows


def test_hot_links_sorted_by_flits(result):
    ch = first_point(result).channel("link_util")
    top = hot_links(ch, 3)
    flits = [row[3] for row in top]
    assert flits == sorted(flits, reverse=True)
    assert len(top) <= 3


def test_link_load_summary_imbalance(result):
    s = link_load_summary(first_point(result))
    assert s["imbalance"] >= 1.0 or math.isnan(s["imbalance"])
    assert s["max_flits_per_cycle"] >= s["mean_flits_per_cycle"]


def test_misroute_rows_per_point(result):
    curve = result.scenarios[0].curves[0]
    rows = misroute_rows(curve)
    assert [r[0] for r in rows] == [p.rate for p in curve.points]
    for _, ratio, excess in rows:
        assert 0.0 <= ratio <= 1.0
        assert excess >= 0.0


def test_misroute_table_renders_all_curves(result):
    text = misroute_table(result)
    for scn in result.scenarios:
        for curve in scn.curves:
            assert curve.label in text
    # works on a bare ScenarioResult too
    assert result.scenarios[0].name in misroute_table(result.scenarios[0])


def test_congestion_evolution_columns(result):
    frame = congestion_evolution(first_point(result))
    assert set(frame) == {
        "t_start", "t_end", "injected", "completed", "backlog",
        "avg_latency",
    }
    assert all(b >= 0 for b in frame["backlog"])


def test_missing_channel_raises_with_names(result):
    with pytest.raises(KeyError, match="no channel"):
        first_point(result).channel("latency_hist2")
