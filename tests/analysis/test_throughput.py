"""Equations (2)-(6) and the balance condition (3)."""

import pytest

from repro.analysis import (
    balanced_parameters,
    cgroup_bisection_bandwidth,
    global_throughput_bound,
    intra_cgroup_throughput_bound,
    is_balanced,
    local_throughput_bound,
)
from repro.core import SwitchlessConfig


class TestPaperValues:
    def test_radix16_equiv_bounds(self):
        cfg = SwitchlessConfig.radix16_equiv()
        # m=2, n=6, ab=8: Tcg = n/m = 3, Tlocal = ab/m^2 = 2,
        # Tglobal = (mn - ab + 1)/m^2 = 5/4
        assert intra_cgroup_throughput_bound(cfg) == 3.0
        assert local_throughput_bound(cfg) == 2.0
        assert global_throughput_bound(cfg) == 1.25

    def test_case_study_bounds(self):
        cfg = SwitchlessConfig.case_study()
        # m=4, n=12, ab=32: Tlocal = 2, Tglobal = (48-32+1)/16 > 1
        assert local_throughput_bound(cfg) == 2.0
        assert global_throughput_bound(cfg) == pytest.approx(17 / 16)
        assert intra_cgroup_throughput_bound(cfg) == 3.0

    def test_eq6_bisection_half_of_switch(self):
        cfg = SwitchlessConfig.radix16_equiv()
        # B_cg = k/2: half of what a k-port non-blocking switch offers
        assert cgroup_bisection_bandwidth(cfg) == cfg.num_ports / 2

    def test_2b_scales_mesh_bounds(self):
        cfg = SwitchlessConfig.radix16_equiv(mesh_capacity=2)
        assert intra_cgroup_throughput_bound(cfg) == 6.0
        assert cgroup_bisection_bandwidth(cfg) == 12.0


class TestBalance:
    def test_eq3_reaches_unit_global_throughput(self):
        for m in (1, 2, 3, 4):
            params = balanced_parameters(m)
            # T_global = (mn - ab + 1)/m^2 with n=3m, ab=2m^2
            t = (m * params["n"] - params["ab"] + 1) / (m * m)
            # exactly 1 + 1/m^2: approaches the 1 flit/cycle/chip target
            assert t == pytest.approx(1.0 + 1.0 / (m * m))

    def test_balanced_detection(self):
        assert is_balanced(SwitchlessConfig.radix16_equiv())
        # a wildly local-starved config is not balanced
        lop = SwitchlessConfig(
            mesh_dim=4, chiplet_dim=1, num_local=1, num_global=11
        )
        assert not is_balanced(lop)

    def test_global_local_ratio_near_half(self):
        params = balanced_parameters(4)
        ratio = params["h"] / (params["ab"] - 1)
        assert 0.4 < ratio < 0.7
