"""Tables I, II, IV reference data."""

import pytest

from repro.analysis import TABLE_I, format_table_i, format_table_ii, format_table_iv


def test_table_i_throughput_arithmetic():
    by_name = {s.name: s for s in TABLE_I}
    assert by_name["NVSwitch"].throughput_tbps == pytest.approx(12.8)
    assert by_name["Tofino2"].throughput_tbps == pytest.approx(12.8)
    assert by_name["H100"].throughput_tbps == pytest.approx(3.6)
    assert by_name["DOJO D1"].throughput_tbps == pytest.approx(64.5, abs=0.1)


def test_computing_chips_rival_switches():
    """Table I's point: computing chips match switching chips in IO."""
    by_cat = {}
    for s in TABLE_I:
        by_cat.setdefault(s.category, []).append(s.throughput_tbps)
    assert max(by_cat["Computing Chip"]) > max(by_cat["Switching Chip"])


def test_formatters_contain_rows():
    t1 = format_table_i()
    assert "DOJO D1" in t1 and "NVSwitch" in t1
    t2 = format_table_ii()
    assert "Hsr" in t2 and "Optical Cable" in t2
    t4 = format_table_iv()
    assert "4 flits" in t4
    assert "10000 cycles after 5000" in t4
