"""Equation (1) and the design-space search."""

import pytest

from repro.analysis import search_configurations, total_chiplets, verify_equation_1
from repro.core import SwitchlessConfig


class TestEquationOne:
    def test_paper_small_config(self):
        """(a,b,m,n) = (2,4,2,6) reaches ~1K chiplets (Sec. III-B1)."""
        assert total_chiplets(2, 4, 2, 6) == 1312

    def test_case_study_scale(self):
        assert total_chiplets(4, 8, 4, 12) == 279040

    def test_matches_built_config(self):
        for cfg in (
            SwitchlessConfig.radix16_equiv(),
            SwitchlessConfig.case_study(),
        ):
            formula, built = verify_equation_1(cfg)
            assert formula == built

    def test_insufficient_ports_rejected(self):
        with pytest.raises(ValueError):
            total_chiplets(8, 8, 2, 2)  # k=4 cannot connect ab=64


class TestSearch:
    def test_finds_kilochip_config(self):
        configs = search_configurations(min_chips=1000, max_chips=5000)
        assert any(c["N"] == 1312 for c in configs)

    def test_sorted_and_bounded(self):
        configs = search_configurations(min_chips=100, max_chips=10**6)
        sizes = [c["N"] for c in configs]
        assert sizes == sorted(sizes)
        assert all(100 <= n <= 10**6 for n in sizes)

    def test_balanced_structure(self):
        for c in search_configurations(min_chips=100, max_chips=10**7):
            assert c["n"] == 3 * c["m"]
            assert c["ab"] == 2 * c["m"] ** 2
            assert c["g"] == c["ab"] * c["h"] + 1
