"""Fig. 15 energy accounting."""

import pytest

from repro.analysis import (
    FIG15_ENERGY,
    TABLE_II_ENERGY,
    average_energy,
    path_energy,
)
from repro.routing import DragonflyRouting, SwitchlessRouting
from repro.traffic import UniformTraffic


class TestPathEnergy:
    def test_per_class_sums(self, small_switchless):
        import random

        sys = small_switchless
        r = SwitchlessRouting(sys, "minimal")
        s = sys.group_nodes(0)[0]
        d = sys.group_nodes(3)[0]
        path = r.route(s, d, random.Random(0))
        split = path_energy(sys.graph, path, TABLE_II_ENERGY)
        assert split.get("global", 0) == 20.0  # exactly one global hop
        assert split.get("local", 0) <= 40.0


class TestAverageEnergy:
    def test_switchless_cheaper_than_switch_based(
        self, small_switchless, radix8_dragonfly
    ):
        """Fig. 15's conclusion: eliminating switches reduces average
        transmission energy for minimal routing."""
        sl = average_energy(
            small_switchless.graph,
            SwitchlessRouting(small_switchless, "minimal"),
            UniformTraffic(small_switchless.graph),
            samples=1200,
        )
        df = average_energy(
            radix8_dragonfly.graph,
            DragonflyRouting(radix8_dragonfly, "minimal"),
            UniformTraffic(radix8_dragonfly.graph),
            samples=1200,
        )
        assert sl.total_pj < df.total_pj

    def test_misrouting_costs_more(self, small_switchless):
        uni = UniformTraffic(small_switchless.graph)
        mini = average_energy(
            small_switchless.graph,
            SwitchlessRouting(small_switchless, "minimal"),
            uni, samples=800,
        )
        mis = average_energy(
            small_switchless.graph,
            SwitchlessRouting(small_switchless, "valiant"),
            uni, samples=800,
        )
        assert mis.total_pj > mini.total_pj
        assert mis.inter_cgroup_pj > mini.inter_cgroup_pj

    def test_intra_portion_small_for_small_mesh(self, small_switchless):
        """Fig. 15(a): for 4x4-node C-groups the on-wafer energy is a
        small fraction of the long-reach energy."""
        b = average_energy(
            small_switchless.graph,
            SwitchlessRouting(small_switchless, "minimal"),
            UniformTraffic(small_switchless.graph),
            samples=800,
        )
        assert b.intra_cgroup_pj < 0.35 * b.inter_cgroup_pj

    def test_hops_recorded(self, small_switchless):
        b = average_energy(
            small_switchless.graph,
            SwitchlessRouting(small_switchless, "minimal"),
            UniformTraffic(small_switchless.graph),
            samples=400,
        )
        assert b.samples == 400
        assert b.hops_per_class.get("global", 0) <= 1.0

    def test_table_choice_matters(self, small_switchless):
        uni = UniformTraffic(small_switchless.graph)
        r = SwitchlessRouting(small_switchless, "minimal")
        fig15 = average_energy(
            small_switchless.graph, r, uni, table=FIG15_ENERGY, samples=400
        )
        raw = average_energy(
            small_switchless.graph, r, uni, table=TABLE_II_ENERGY, samples=400
        )
        assert fig15.intra_cgroup_pj != raw.intra_cgroup_pj
