"""Equation (7) diameter decomposition and Table II hop costs."""

import pytest

from repro.analysis import TABLE_II, DiameterModel, switchless_diameter
from repro.core import SwitchlessConfig


class TestEquationSeven:
    def test_case_study_30_sr_hops(self):
        """The Table III row: Hg + 2Hl + 30Hsr for m=4."""
        d = switchless_diameter(SwitchlessConfig.case_study())
        assert d.global_hops == 1
        assert d.local_hops == 2
        assert d.sr_hops == 8 * 4 - 2 == 30

    def test_radix16_equiv(self):
        d = switchless_diameter(SwitchlessConfig.radix16_equiv())
        assert d.sr_hops == 8 * 2 - 2

    def test_single_wgroup_variant(self):
        """Sec. III-D1: diameter Hl + (4m-2)Hsr."""
        cfg = SwitchlessConfig(
            mesh_dim=4, chiplet_dim=1, num_local=3, num_global=0
        )
        d = switchless_diameter(cfg)
        assert d.global_hops == 0
        assert d.local_hops == 1
        assert d.sr_hops == 4 * 4 - 2


class TestHopCosts:
    def test_latency_dominated_by_long_reach(self):
        d = DiameterModel(global_hops=1, local_hops=2, terminal_hops=0,
                          sr_hops=30)
        lat = d.latency_ns()
        assert lat == 1 * 150 + 2 * 150 + 30 * 5

    def test_energy_sums(self):
        d = DiameterModel(global_hops=1, local_hops=2, terminal_hops=2,
                          sr_hops=0)
        assert d.energy_pj() == 20 + 4 * 20

    def test_describe(self):
        d = DiameterModel(1, 2, 0, 30)
        assert d.describe() == "1Hg + 2Hl + 30Hsr"

    def test_table_ii_ordering(self):
        """On-wafer hops are orders of magnitude cheaper (the paper's
        whole premise)."""
        assert TABLE_II["Hsr"].energy_pj_per_bit * 10 == pytest.approx(
            TABLE_II["Hg"].energy_pj_per_bit
        )
        assert TABLE_II["Hg"].latency_ns / TABLE_II["Hsr"].latency_ns == 30
