"""Table III rows beyond the cost columns: throughput and diameter."""

from repro.analysis import build_table_iii


def rows():
    return {r.name: r for r in build_table_iii()}


def test_all_nine_rows_present():
    assert len(build_table_iii()) == 9


def test_dojo_row():
    r = rows()["2D-Mesh & Switch (DOJO)"]
    assert r.chip_radix == 8
    assert r.num_processors == 450
    assert r.t_global == 0.53
    assert "18Hsr" in r.diameter


def test_fattree_taper_global_throughput():
    r = rows()["Three-Stage F-T (3:1 Taper)"]
    assert abs(r.t_global - 4 / 3) < 1e-9
    assert r.t_local == 4.0


def test_hammingmesh_throughput_ratios():
    one = rows()["1-Plane Hx4Mesh"]
    four = rows()["4-Plane Hx4Mesh"]
    assert four.t_local == 4 * one.t_local
    assert four.t_global == 4 * one.t_global


def test_polarfly_lowest_diameter():
    r = rows()["Co-Packaged PolarFly (p=32)"]
    assert r.diameter == "2Hg + 2Hsr"


def test_switchless_eliminates_switches_only():
    names = rows()
    for name, row in names.items():
        if name == "Switch-less Dragonfly":
            assert row.num_switches == 0
        else:
            assert row.num_switches >= 1


def test_dragonfly_diameter_shorter_than_fattree():
    """Hg + 2Hl + 2Hl* (Dragonfly) vs 2Hg + 2Hl + 2Hl* (Fat-Tree)."""
    df = rows()["Dragonfly (Slingshot)"]
    ft = rows()["Three-Stage Fat-Tree"]
    assert df.diameter.count("Hg") < ft.diameter.count("2Hg") + 1
    assert df.diameter == "Hg + 2Hl + 2Hl*"


def test_format_contains_paper_reference():
    r = rows()["Switch-less Dragonfly"]
    assert r.paper == (0, 545, 279040, 419)
    out = r.format()
    assert "545" in out and "279040" in out
