"""ResultCache crash safety: a torn write must never look like a hit.

Regression tests for the atomic write protocol (temp file +
``os.replace``): a writer dying mid-``put`` leaves either the complete
entry or nothing — readers see a miss, never a half-written payload —
and abandoned temp files are invisible to the entry glob.
"""

import json
import os

import pytest

from repro.engine import ExperimentSpec, ResultCache, run_experiments
from repro.engine.spec import point_key
from repro.network import SimParams, SimResult


def _spec(rates=(0.5,)):
    return ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=SimParams(
            warmup_cycles=100, measure_cycles=300, drain_cycles=150, seed=3
        ),
        rates=list(rates), label="atomic",
    )


def _result(**over):
    base = dict(
        offered_rate=0.5, effective_offered=0.5, accepted_rate=0.4,
        avg_latency=9.0, p50_latency=8.0, p99_latency=20.0,
        packets_measured=100, packets_delivered=90, flits_ejected=400,
        active_chips=16, measure_cycles=300, avg_hops=2.5,
    )
    base.update(over)
    return SimResult(**base)


class TestCrashMidWrite:
    def test_failed_put_leaves_no_entry_and_no_visible_temp(self, tmp_path):
        cache = ResultCache(tmp_path)
        # an unserialisable extra makes json.dump raise midway through
        # writing the temp file — exactly a "crash" between open and
        # os.replace
        poisoned = _result(extras={"bad": object()})
        with pytest.raises(TypeError):
            cache.put("deadbeef", poisoned)
        assert "deadbeef" not in cache
        assert cache.get("deadbeef") is None
        assert len(cache) == 0
        # the temp path was cleaned up by put's error path
        assert list(tmp_path.glob(".tmp-*")) == []

    def test_abandoned_temp_is_not_an_entry(self, tmp_path):
        # simulate a writer killed *between* mkstemp and os.replace:
        # the temp file survives but must never be globbed as an entry
        cache = ResultCache(tmp_path)
        (tmp_path / ".tmp-orphan.part").write_text('{"half": ')
        assert len(cache) == 0
        cache.put("aa", _result())
        assert len(cache) == 1
        # clear() reclaims the orphan too
        assert cache.clear() == 1
        assert list(tmp_path.glob(".tmp-*")) == []

    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("bb", _result())
        path = tmp_path / "bb.json"
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write
        assert cache.get("bb") is None
        assert cache.misses == 1

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "cc.json").write_text(json.dumps({"not": "a result"}))
        assert cache.get("cc") is None

    def test_engine_recovers_from_torn_entry(self, tmp_path):
        """End to end: a torn cache file is recomputed and overwritten."""
        spec = _spec()
        cache = ResultCache(tmp_path)
        [first] = run_experiments([spec], workers=1, cache=cache)
        key = point_key(spec, spec.rates[0])
        path = tmp_path / f"{key}.json"
        assert path.exists()
        path.write_text(path.read_text()[:40])
        cache2 = ResultCache(tmp_path)
        [again] = run_experiments([spec], workers=1, cache=cache2)
        assert again.results == first.results
        # the entry was rewritten and is valid JSON again
        assert json.loads(path.read_text())["key"] == key


class TestVersionStamp:
    def test_engine_stamps_entries_with_engine_version(self, tmp_path):
        from repro.engine.spec import ENGINE_VERSION

        spec = _spec()
        cache = ResultCache(tmp_path)
        run_experiments([spec], workers=1, cache=cache)
        [path] = tmp_path.glob("*.json")
        meta = json.loads(path.read_text())["meta"]
        assert meta["engine"] == ENGINE_VERSION
        assert meta["label"] == "atomic"
        assert meta["rate"] == spec.rates[0]
