"""Engine crash containment: a dead worker process fails only the
points it was carrying — retried under probation, then blamed as a
poison point — never the whole run."""

import os

import pytest

from repro.engine.cache import ResultCache
from repro.engine.executor import (
    PointFailure,
    run_experiments,
)
from repro.engine.spec import ExperimentSpec
from repro.network import SimParams, native_available
from repro.service import chaos

PARAMS = SimParams(
    warmup_cycles=100, measure_cycles=200, drain_cycles=150, seed=9
)

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native core"
)


def mesh_spec(rates, label="m", **over):
    kw = dict(
        topology="mesh",
        topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh",
        traffic="uniform",
        params=PARAMS,
        rates=list(rates),
        label=label,
    )
    kw.update(over)
    return ExperimentSpec.create(**kw)


def sweeps_equal(a, b):
    assert a.rates == b.rates
    for ra, rb in zip(a.results, b.results):
        assert ra.to_dict() == rb.to_dict()


@pytest.fixture()
def arm_chaos(monkeypatch):
    def arm(directives):
        monkeypatch.setenv("REPRO_CHAOS", directives)
        chaos.reset()

    yield arm
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()


@pytest.fixture()
def pool_cpus(monkeypatch):
    """Crash containment needs a real worker pool; on a single-CPU box
    ``_resolve_workers`` would clamp ``workers=2`` down to the serial
    path and ``crash-worker`` (child-only) could never fire."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    monkeypatch.setenv("REPRO_SIM_THREADS", "1")


class TestParallelCrashContainment:
    def test_single_worker_crash_is_contained(
        self, tmp_path, arm_chaos, pool_cpus
    ):
        """One worker SIGKILLs itself mid-point; the run completes and
        every point is bit-identical to the crash-free baseline."""
        spec = mesh_spec([0.1, 0.2, 0.3, 0.4])
        [baseline] = run_experiments([spec], workers=1, batch=False)

        arm_chaos(f"crash-worker:once={tmp_path}/crash.marker")
        [survived] = run_experiments([spec], workers=2, batch=False)
        sweeps_equal(survived, baseline)

    def test_poison_point_blamed_not_the_run(
        self, tmp_path, arm_chaos, pool_cpus
    ):
        """A point that crashes its worker on every attempt raises
        PointFailure naming it — and the innocent points' results are
        already in the cache."""
        spec = mesh_spec([0.1, 0.2, 0.3])
        arm_chaos("crash-worker:match=m@0.3")
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(PointFailure, match="crashed its worker"):
            run_experiments(
                [spec], workers=2, batch=False, cache=cache
            )
        assert len(cache) == 2  # 0.1 and 0.2 landed before the blame

    def test_transient_point_error_retried_in_worker(
        self, tmp_path, arm_chaos
    ):
        """A raising (not crashing) point is retried inside the worker
        via the per-point retry budget."""
        spec = mesh_spec([0.1, 0.2])
        [baseline] = run_experiments([spec], workers=1, batch=False)

        arm_chaos(f"fail-point:once={tmp_path}/fail.marker")
        [survived] = run_experiments([spec], workers=1, batch=False)
        sweeps_equal(survived, baseline)

    def test_retry_budget_exhaustion_propagates(
        self, monkeypatch, arm_chaos
    ):
        """With retries disabled, an injected point failure surfaces."""
        from repro.service.chaos import ChaosError

        monkeypatch.setenv("REPRO_POINT_RETRIES", "0")
        spec = mesh_spec([0.1])
        arm_chaos("fail-point:match=m@0.1")
        with pytest.raises(ChaosError):
            run_experiments([spec], workers=1, batch=False)


@needs_native
class TestBatchedCrashContainment:
    def test_sweep_crash_retried_solo(self, tmp_path, arm_chaos, pool_cpus):
        """Batched pooled path: a worker crash re-runs the lost sweeps
        one at a time; results stay bit-identical to the baseline."""
        specs = [
            mesh_spec([0.1, 0.2], label="a"),
            mesh_spec([0.1, 0.2], label="b", traffic="bit_reverse"),
        ]
        baseline = run_experiments(specs, workers=1, batch=True)

        arm_chaos(f"crash-worker:once={tmp_path}/crash.marker")
        survived = run_experiments(specs, workers=2, batch=True)
        for s, b in zip(survived, baseline):
            sweeps_equal(s, b)

    def test_poison_sweep_blamed(self, tmp_path, arm_chaos, pool_cpus):
        specs = [
            mesh_spec([0.1], label="a"),
            mesh_spec([0.1], label="b", traffic="bit_reverse"),
        ]
        arm_chaos("crash-worker:match=b@")
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(PointFailure, match="crashed its worker"):
            run_experiments(specs, workers=2, batch=True, cache=cache)
        assert len(cache) == 1  # sweep 'a' completed and landed
