"""Engine determinism: serial == parallel == cache replay, bit for bit."""

import json

import pytest

from repro.engine import ExperimentSpec, ResultCache, run_experiments, simulate_point
from repro.engine.spec import point_key
from repro.network import SimParams, SimResult

PARAMS = SimParams(
    warmup_cycles=100, measure_cycles=300, drain_cycles=150, seed=3
)

RATES = [0.5, 1.0, 1.5, 2.2, 3.0]


def mesh_spec(label="mesh", seed=3):
    return ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=PARAMS.scaled(seed=seed), rates=RATES, label=label,
    )


def switch_spec():
    return ExperimentSpec.create(
        topology="switch",
        topology_opts={"num_terminals": 4, "terminal_latency": 1},
        routing="switch_star", traffic="uniform",
        params=PARAMS, rates=RATES, label="switch",
    )


class TestSerialParallelEquivalence:
    def test_bit_identical_results(self):
        specs = [mesh_spec(), switch_spec()]
        serial = run_experiments(specs, workers=1, stop_after_saturation=2)
        parallel = run_experiments(specs, workers=2, stop_after_saturation=2)
        for s, par in zip(serial, parallel):
            assert s.rates == par.rates
            assert s.results == par.results

    def test_sweep_cutoff_matches_serial_semantics(self):
        # the 4-terminal switch saturates near 1.0, so the cutoff bites
        [sweep] = run_experiments(
            [switch_spec()], workers=2, stop_after_saturation=1
        )
        assert len(sweep.rates) < len(RATES)
        assert sweep.results[-1].saturated
        assert not any(r.saturated for r in sweep.results[:-1])

    def test_point_is_independent_of_execution_order(self):
        spec = mesh_spec()
        alone = simulate_point(spec, RATES[2])
        [sweep] = run_experiments([spec], workers=1)
        assert sweep.results[2] == alone

    def test_different_seed_changes_results(self):
        [a] = run_experiments([mesh_spec(seed=3)], workers=1)
        [b] = run_experiments([mesh_spec(seed=4)], workers=1)
        assert a.results != b.results


class TestCache:
    def test_round_trip_without_resimulation(self, tmp_path):
        spec = mesh_spec()
        cache = ResultCache(tmp_path)
        [first] = run_experiments([spec], workers=1, cache=cache)
        stored = len(cache)
        assert stored == len(first.rates)

        replay_cache = ResultCache(tmp_path)
        [second] = run_experiments([spec], workers=1, cache=replay_cache)
        # every returned point came from disk; nothing was re-simulated
        assert replay_cache.hits == len(first.rates)
        assert len(replay_cache) == stored
        assert second.rates == first.rates
        assert second.results == first.results

    def test_extending_rates_only_simulates_new_points(self, tmp_path):
        # stop_after_saturation high enough that no cutoff interferes:
        # the appended point must actually be needed
        cache = ResultCache(tmp_path)
        run_experiments(
            [mesh_spec()], workers=1, cache=cache, stop_after_saturation=9
        )
        stored = len(cache)
        assert stored == len(RATES)

        extended = mesh_spec().with_rates(RATES + [3.5])
        replay = ResultCache(tmp_path)
        run_experiments(
            [extended], workers=1, cache=replay, stop_after_saturation=9
        )
        assert replay.hits == stored
        assert len(replay) == stored + 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = mesh_spec()
        cache = ResultCache(tmp_path)
        res = simulate_point(spec, 0.5)
        key = point_key(spec, 0.5)
        cache.put(key, res)
        (tmp_path / f"{key}.json").write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.misses == 1

    def test_simresult_json_round_trip(self):
        res = simulate_point(mesh_spec(), 0.5)
        clone = SimResult.from_dict(
            json.loads(json.dumps(res.to_dict()))
        )
        assert clone == res

    def test_simresult_round_trip_preserves_nan(self):
        res = simulate_point(mesh_spec(), 0.5)
        res.avg_latency = float("nan")
        clone = SimResult.from_dict(res.to_dict())
        assert clone.avg_latency != clone.avg_latency  # NaN survives
