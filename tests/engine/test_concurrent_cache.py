"""Two processes, one cache dir, one computation (satellite: shared
store with cross-process single-flight).

Process A starts first and — because the engine's replay scan misses
every point — acquires the single-flight lock for all of them.  Process
B starts only once A holds the locks (the parent polls for the lock
files), so B never becomes an owner: it blocks on A's locks and replays
each point from the store the moment A publishes it.  The physics runs
exactly once, and both processes end with bit-identical sweeps.
"""

import multiprocessing
import time

import pytest

from repro.engine import ExperimentSpec, run_experiments
from repro.network import SimParams
from repro.service import ResultStore, SingleFlight

PARAMS = SimParams(
    warmup_cycles=100, measure_cycles=300, drain_cycles=150, seed=3
)
RATES = [0.4, 0.8, 1.2]


def _spec():
    return ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=PARAMS, rates=RATES, label="shared",
    )


def _run_with_shared_store(root, started, conn):
    """Child: run the sweep through a SingleFlightCache over ``root``."""
    store = ResultStore(root)
    with store.single_flight_cache() as cache:
        started.set()
        [sweep] = run_experiments([_spec()], workers=1, cache=cache)
        conn.send(
            {
                "computed": cache.computed,
                "fallbacks": cache.fallbacks,
                "results": [r.to_dict() for r in sweep.results],
            }
        )
    conn.close()


def test_two_processes_compute_each_point_exactly_once(tmp_path):
    ctx = multiprocessing.get_context("fork")
    procs, pipes, events = [], [], []
    for _ in range(2):
        parent_conn, child_conn = ctx.Pipe()
        started = ctx.Event()
        proc = ctx.Process(
            target=_run_with_shared_store,
            args=(str(tmp_path), started, child_conn),
        )
        procs.append(proc)
        pipes.append(parent_conn)
        events.append(started)

    procs[0].start()
    assert events[0].wait(timeout=30)
    # B enters only once A owns every point's lock (or has already
    # published some results) — so B can never become a second owner
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        locks = len(list(tmp_path.glob("*.lock")))
        entries = len(list(tmp_path.glob("*.json")))
        if locks + entries >= len(RATES):
            break
        time.sleep(0.005)
    else:
        pytest.fail("process A never acquired the point locks")
    procs[1].start()

    reports = [conn.recv() for conn in pipes]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    total_computed = sum(rep["computed"] for rep in reports)
    assert total_computed == len(RATES), (
        f"expected exactly-once compute of {len(RATES)} points, got "
        f"{[rep['computed'] for rep in reports]}"
    )
    assert all(rep["fallbacks"] == 0 for rep in reports)
    assert reports[0]["results"] == reports[1]["results"]
    # no lock file survives a clean finish
    assert list(tmp_path.glob("*.lock")) == []
    # and the store holds exactly the unique points
    assert len(list(tmp_path.glob("*.json"))) == len(RATES)


def test_third_run_replays_without_locks(tmp_path):
    """After the store is warm, a fresh run computes nothing."""
    store = ResultStore(tmp_path)
    with store.single_flight_cache() as cache:
        [first] = run_experiments([_spec()], workers=1, cache=cache)
        assert cache.computed == len(RATES)
    again = ResultStore(tmp_path)
    with again.single_flight_cache() as cache2:
        [replay] = run_experiments([_spec()], workers=1, cache=cache2)
        assert cache2.computed == 0
    assert [r.to_dict() for r in replay.results] == [
        r.to_dict() for r in first.results
    ]


def test_stale_lock_of_dead_process_is_stolen(tmp_path):
    sf = SingleFlight(tmp_path)
    # fabricate a lock held by a pid that cannot exist
    (tmp_path / "somekey.lock").write_text("99999999 0.0")
    assert sf.try_acquire("somekey")
    assert sf.steals == 1
    sf.release("somekey")
