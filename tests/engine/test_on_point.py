"""Per-point completion callbacks across every scheduling path.

``run_experiments(on_point=...)`` must fire exactly once per simulated
point — whatever path computed it (serial, process pool, batched native
kernel, cache replay) — with the right indices and source tag, and the
callback must observe the same result object that lands in the sweep.
"""

import pytest

from repro.engine import ExperimentSpec, ResultCache, run_experiments
from repro.network import SimParams

PARAMS = SimParams(
    warmup_cycles=100, measure_cycles=300, drain_cycles=150, seed=3
)
RATES = [0.4, 0.8]


def _mesh(label="m0", seed=3):
    return ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=PARAMS.scaled(seed=seed), rates=RATES, label=label,
    )


def _switch():
    return ExperimentSpec.create(
        topology="switch",
        topology_opts={"num_terminals": 4, "terminal_latency": 1},
        routing="switch_star", traffic="uniform",
        params=PARAMS, rates=RATES, label="sw",
    )


def _collect(**kwargs):
    calls = []

    def on_point(si, ri, rate, res, source):
        calls.append((si, ri, rate, res, source))

    sweeps = run_experiments(on_point=on_point, **kwargs)
    return sweeps, calls


class TestEnginePaths:
    def test_serial_fires_once_per_point(self):
        specs = [_mesh(), _switch()]
        sweeps, calls = _collect(specs=specs, workers=1)
        assert len(calls) == 4
        assert sorted((si, ri) for si, ri, *_ in calls) == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        assert {c[4] for c in calls} == {"fresh"}
        for si, ri, rate, res, _ in calls:
            assert rate == RATES[ri]
            assert sweeps[si].results[ri] == res

    def test_parallel_pool_fires_in_parent(self):
        specs = [_mesh(), _mesh(label="m1", seed=5)]
        sweeps, calls = _collect(specs=specs, workers=2)
        assert len(calls) == 4
        for si, ri, rate, res, _ in calls:
            assert sweeps[si].results[ri] == res

    def test_batched_native_path(self):
        # two same-shape mesh specs take the packed-arena batch path
        specs = [_mesh(), _mesh(label="m1", seed=5)]
        serial = run_experiments(specs, workers=1)
        sweeps, calls = _collect(specs=specs, workers=1)
        assert [s.results for s in sweeps] == [s.results for s in serial]
        assert len(calls) == 4

    def test_cache_replay_tags_source(self, tmp_path):
        spec = _mesh()
        cache = ResultCache(tmp_path)
        _, first = _collect(specs=[spec], workers=1, cache=cache)
        assert {c[4] for c in first} == {"fresh"}
        _, second = _collect(
            specs=[spec], workers=1, cache=ResultCache(tmp_path)
        )
        assert {c[4] for c in second} == {"cache"}
        assert len(second) == len(RATES)

    def test_callback_exception_propagates(self):
        class Boom(Exception):
            pass

        def on_point(*_):
            raise Boom

        with pytest.raises(Boom):
            run_experiments([_switch()], workers=1, on_point=on_point)


class TestStudyLevel:
    def test_study_run_maps_scenario_and_curve_names(self):
        from repro.api import Scenario, Study

        scenario = Scenario(
            name="cb", specs=(_mesh(), _switch()), title="callbacks"
        )
        study = Study.wrap(scenario)
        seen = []

        def on_point(scn, label, rate, res, source):
            seen.append((scn, label, rate, source))

        result = study.run(workers=1, on_point=on_point)
        assert len(seen) == study.num_points() == 4
        assert {s[0] for s in seen} == {"cb"}
        labels = {curve.label for curve in result.scenarios[0].curves}
        assert {s[1] for s in seen} == labels

    def test_num_points_counts_rates(self):
        from repro.api import Scenario, Study

        study = Study.wrap(
            Scenario(name="n", specs=(_mesh(), _switch()), title="n")
        )
        assert study.num_points() == 2 * len(RATES)
