"""Engine batched fast path: parity with the per-point schedulers.

``run_experiments(batch=True)`` must be a pure performance feature:
identical sweeps, identical per-point seeds, interchangeable cache
entries, and the same saturation-cutoff semantics as the serial and
parallel per-point paths.
"""

import os

import pytest

from repro.engine import executor as ex
from repro.engine.cache import ResultCache
from repro.engine.executor import run_experiments, simulate_point
from repro.engine.spec import ExperimentSpec, point_key
from repro.network import SimParams, native_available

PARAMS = SimParams(
    warmup_cycles=150, measure_cycles=300, drain_cycles=300, seed=7
)

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native core"
)


def mesh_spec(rates, label="mesh", **over):
    kw = dict(
        topology="mesh",
        topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh",
        traffic="uniform",
        params=PARAMS,
        rates=list(rates),
        label=label,
    )
    kw.update(over)
    return ExperimentSpec.create(**kw)


def sweeps_equal(a, b):
    assert a.rates == b.rates
    for ra, rb in zip(a.results, b.results):
        assert ra.to_dict() == rb.to_dict()
        assert set(ra.channels) == set(rb.channels)
        for name in ra.channels:
            assert (
                ra.channels[name].to_dict() == rb.channels[name].to_dict()
            )


@needs_native
class TestBatchedSweepParity:
    def test_batched_equals_per_point(self, tmp_path):
        specs = [
            mesh_spec([0.1, 0.2, 0.3], label="a"),
            mesh_spec([0.1, 0.25], label="b", traffic="bit_reverse"),
        ]
        c_b = ResultCache(tmp_path / "batched")
        c_p = ResultCache(tmp_path / "perpoint")
        sw_b = run_experiments(specs, cache=c_b, batch=True, workers=1)
        sw_p = run_experiments(specs, cache=c_p, batch=False, workers=1)
        for b, p in zip(sw_b, sw_p):
            sweeps_equal(b, p)

    def test_per_point_seeds_unchanged(self):
        """Every batched point is simulate_point's exact result — the
        lane seed is the same point_seed-derived value."""
        spec = mesh_spec([0.15, 0.3])
        sw = run_experiments([spec], batch=True, workers=1)[0]
        for rate, res in zip(sw.rates, sw.results):
            assert res.to_dict() == simulate_point(spec, rate).to_dict()

    def test_cache_entries_interchangeable(self, tmp_path):
        """A cache written by the batched path replays into a
        batch=False run untouched, and vice versa."""
        spec = mesh_spec([0.1, 0.2])
        cache = ResultCache(tmp_path / "cache")
        sw_b = run_experiments([spec], cache=cache, batch=True, workers=1)
        sw_r = run_experiments([spec], cache=cache, batch=False, workers=1)
        sweeps_equal(sw_b[0], sw_r[0])
        # the replay run simulated nothing: every point was a cache hit
        sw_b2 = run_experiments([spec], cache=cache, batch=True, workers=1)
        sweeps_equal(sw_b[0], sw_b2[0])

    def test_probed_batched_sweep(self):
        spec = mesh_spec(
            [0.1, 0.2], metrics=["link_util", "latency_hist"]
        )
        sw_b = run_experiments([spec], batch=True, workers=1)[0]
        sw_p = run_experiments([spec], batch=False, workers=1)[0]
        assert sw_b.results[0].channels
        sweeps_equal(sw_b, sw_p)

    def test_saturation_cutoff_short_circuits(self, tmp_path):
        """Rates far past saturation must not all be simulated: the
        chunked walk re-checks the cutoff between batch dispatches, so
        at most one speculative chunk runs past it."""
        rates = [0.05, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0]
        spec = mesh_spec(rates, label="cutoff")
        cache = ResultCache(tmp_path / "cutoff")
        sw = run_experiments(
            [spec], cache=cache, batch=True, workers=1
        )[0]
        simulated = sum(
            1 for r in rates if cache.get(point_key(spec, r)) is not None
        )
        assert simulated < len(rates)
        assert len(sw.rates) < len(rates)
        # the assembled sweep matches the per-point walk exactly
        sw_p = run_experiments([spec], batch=False, workers=1)[0]
        sweeps_equal(sw, sw_p)

    def test_pool_branch_matches_inline(self, tmp_path):
        """_run_batched over a pool (workers > 1, several specs) and
        inline produce the same points and cache writes."""
        specs = [
            mesh_spec([0.1, 0.2], label="p1"),
            mesh_spec([0.1, 0.2], label="p2", traffic="bit_shuffle"),
        ]
        c_pool = ResultCache(tmp_path / "pool")
        c_inline = ResultCache(tmp_path / "inline")
        have_pool = [{}, {}]
        have_inline = [{}, {}]
        ex._run_batched(specs, have_pool, c_pool, 1, workers=2, threads=1)
        ex._run_batched(
            specs, have_inline, c_inline, 1, workers=1, threads=1
        )
        for hp, hi in zip(have_pool, have_inline):
            assert set(hp) == set(hi)
            for ri in hp:
                assert hp[ri].to_dict() == hi[ri].to_dict()
        for spec in specs:
            for rate in spec.rates:
                key = point_key(spec, rate)
                assert (
                    c_pool.get(key).to_dict() == c_inline.get(key).to_dict()
                )


class TestWorkerThreadBudget:
    def test_resolve_workers_counts_kernel_threads(self, monkeypatch):
        monkeypatch.delenv(ex.WORKERS_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        # default: all CPUs when the kernel is single-threaded
        assert ex._resolve_workers(None, 100) == 8
        # workers x threads <= cpu_count
        assert ex._resolve_workers(None, 100, kernel_threads=4) == 2
        assert ex._resolve_workers(None, 100, kernel_threads=8) == 1
        assert ex._resolve_workers(None, 100, kernel_threads=16) == 1
        # explicit workers still respect the thread budget
        assert ex._resolve_workers(6, 100, kernel_threads=4) == 2
        # and the amount of work
        assert ex._resolve_workers(None, 1, kernel_threads=1) == 1

    def test_kernel_threads_env(self, monkeypatch):
        monkeypatch.setenv(ex.THREADS_ENV, "3")
        assert ex._kernel_threads() == 3
        monkeypatch.delenv(ex.THREADS_ENV)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert ex._kernel_threads() == 5


class TestBatchEnable:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ex.BATCH_ENV, "off")
        assert ex._batch_enabled(True) is True
        monkeypatch.delenv(ex.BATCH_ENV)
        assert ex._batch_enabled(False) is False

    def test_env_disables_auto(self, monkeypatch):
        monkeypatch.setenv(ex.BATCH_ENV, "0")
        assert ex._batch_enabled(None) is False

    def test_non_native_core_disables_auto(self, monkeypatch):
        monkeypatch.delenv(ex.BATCH_ENV, raising=False)
        monkeypatch.setenv("REPRO_SIM_CORE", "array")
        assert ex._batch_enabled(None) is False

    @needs_native
    def test_auto_on_with_native(self, monkeypatch):
        monkeypatch.delenv(ex.BATCH_ENV, raising=False)
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        assert ex._batch_enabled(None) is True

    def test_forced_batch_works_on_array_core(self, monkeypatch):
        """batch=True on a non-native session uses the serial fallback
        of run_batch — same results, no packed kernel."""
        monkeypatch.setenv("REPRO_SIM_CORE", "array")
        spec = mesh_spec([0.1, 0.2])
        sw_b = run_experiments([spec], batch=True, workers=1)[0]
        sw_p = run_experiments([spec], batch=False, workers=1)[0]
        sweeps_equal(sw_b, sw_p)
