"""ExperimentSpec: hashing, pickling, registries, realisation."""

import pickle

import pytest

from repro.engine import (
    ExperimentSpec,
    build_experiment,
    list_presets,
    list_routings,
    list_topologies,
    list_traffics,
    point_key,
    point_seed,
)
from repro.network import SimParams
from repro.routing import SwitchlessRouting, XYMeshRouting
from repro.traffic import RingAllReduceTraffic, UniformTraffic

PARAMS = SimParams(warmup_cycles=100, measure_cycles=200, drain_cycles=100)


def mesh_spec(**kw):
    base = dict(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=PARAMS, rates=[0.2, 0.4], label="mesh",
    )
    base.update(kw)
    return ExperimentSpec.create(**base)


class TestRegistries:
    def test_builtin_kinds_registered(self):
        assert {"switchless", "dragonfly", "mesh", "switch"} <= set(
            list_topologies()
        )
        assert {"switchless", "dragonfly", "xy_mesh", "switch_star"} <= set(
            list_routings()
        )
        assert {
            "uniform", "bit_reverse", "bit_shuffle", "bit_transpose",
            "hotspot", "worst_case", "ring_allreduce",
        } <= set(list_traffics())

    def test_unknown_kind_rejected_at_create(self):
        with pytest.raises(ValueError, match="unknown topology"):
            mesh_spec(topology="torus9d")
        with pytest.raises(ValueError, match="unknown routing"):
            mesh_spec(routing="ouija")
        with pytest.raises(ValueError, match="unknown traffic"):
            mesh_spec(traffic="rush-hour")

    def test_unknown_kind_at_realisation_lists_registered(self):
        # a spec built around create() (e.g. unpickled from another
        # session) must still fail with the registered names, not a
        # bare KeyError
        rogue = ExperimentSpec(
            topology="torus9d", routing="xy_mesh", traffic="uniform"
        )
        with pytest.raises(ValueError, match="registered.*mesh"):
            build_experiment(rogue)

    def test_list_presets(self):
        assert "small_equiv" in list_presets("switchless")
        assert "radix16_equiv" in list_presets("switchless")
        assert "radix16" in list_presets("dragonfly")
        assert list_presets("mesh") == []


class TestSpecValue:
    def test_hashable_and_picklable(self):
        spec = mesh_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert {spec: "v"}[clone] == "v"
        assert clone.config_key() == spec.config_key()

    def test_option_order_does_not_matter(self):
        a = mesh_spec(topology_opts={"dim": 4, "chiplet_dim": 2})
        b = mesh_spec(topology_opts={"chiplet_dim": 2, "dim": 4})
        assert a == b

    def test_config_key_ignores_label_and_rates(self):
        spec = mesh_spec()
        assert (
            spec.with_label("other").with_rates([0.9]).config_key()
            == spec.config_key()
        )

    def test_config_key_tracks_simulation_inputs(self):
        spec = mesh_spec()
        assert (
            mesh_spec(topology_opts={"dim": 4}).config_key()
            != spec.config_key()
        )
        assert (
            mesh_spec(params=PARAMS.scaled(seed=7)).config_key()
            != spec.config_key()
        )

    def test_unserialisable_option_rejected(self):
        with pytest.raises(TypeError):
            mesh_spec(topology_opts={"dim": object()})

    def test_nested_dict_option_rejected(self):
        # a nested dict would not survive the freeze/thaw round-trip,
        # so create() refuses it outright
        with pytest.raises(TypeError, match="nested dict"):
            mesh_spec(topology_opts={"dim": 4, "extra": {"a": 1}})


class TestDeclarativeForm:
    def test_to_data_round_trip(self):
        spec = mesh_spec(
            traffic="ring_allreduce",
            traffic_opts={"scope": "snake", "bidirectional": True},
        )
        clone = ExperimentSpec.from_data(spec.to_data())
        assert clone == spec
        assert clone.config_key() == spec.config_key()

    def test_from_data_survives_json_lists(self):
        import json

        spec = mesh_spec(traffic_opts={"scope": ("nodes", [0, 3])})
        data = json.loads(json.dumps(spec.to_data()))
        assert ExperimentSpec.from_data(data) == spec

    def test_from_data_ignores_unknown_params(self):
        data = mesh_spec().to_data()
        data["params"]["quantum_flux"] = 9
        assert ExperimentSpec.from_data(data) == mesh_spec()


class TestPointDerivation:
    def test_point_seed_deterministic_and_distinct(self):
        spec = mesh_spec()
        assert point_seed(spec, 0.2) == point_seed(spec, 0.2)
        assert point_seed(spec, 0.2) != point_seed(spec, 0.4)
        assert point_key(spec, 0.2) != point_key(spec, 0.4)

    def test_point_key_tracks_params(self):
        spec = mesh_spec()
        other = mesh_spec(params=PARAMS.scaled(seed=5))
        assert point_key(spec, 0.2) != point_key(other, 0.2)


class TestRealisation:
    def test_mesh_spec_builds_triple(self):
        graph, routing, traffic = build_experiment(mesh_spec())
        assert isinstance(routing, XYMeshRouting)
        assert isinstance(traffic, UniformTraffic)
        assert graph.num_nodes == 16

    def test_group_scope_resolution(self):
        spec = ExperimentSpec.create(
            topology="switchless", topology_opts={"preset": "radix8_equiv"},
            routing="switchless", routing_opts={"mode": "minimal"},
            traffic="uniform", traffic_opts={"scope": ("group", 0)},
            params=PARAMS, rates=[0.2],
        )
        graph, routing, traffic = build_experiment(spec)
        assert isinstance(routing, SwitchlessRouting)
        # one W-group of the radix8_equiv system: 4 C-groups x 9 nodes
        assert traffic.index.num_nodes == 36

    def test_snake_scope_resolution(self):
        spec = mesh_spec(
            traffic="ring_allreduce",
            traffic_opts={"scope": "snake", "bidirectional": True},
        )
        _, _, traffic = build_experiment(spec)
        assert isinstance(traffic, RingAllReduceTraffic)
        assert traffic.bidirectional

    def test_unknown_scope_rejected(self):
        spec = mesh_spec(traffic_opts={"scope": ("galaxy", 3)})
        with pytest.raises(ValueError, match="scope"):
            build_experiment(spec)

    def test_unknown_preset_rejected(self):
        spec = ExperimentSpec.create(
            topology="switchless", topology_opts={"preset": "radix_999"},
            routing="switchless", traffic="uniform",
            params=PARAMS, rates=[0.2],
        )
        with pytest.raises(ValueError, match="preset"):
            build_experiment(spec)
