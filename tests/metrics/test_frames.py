"""MetricChannel streaming frames: split, reassemble, reject garbage."""

import math

import pytest

from repro.metrics import METRIC_CHANNEL_FRAME_SCHEMA, MetricChannel


def _channel(num_rows, name="link_util"):
    rows = tuple(
        (f"n{i}", float(i), float(i) * 0.5 if i % 3 else float("nan"))
        for i in range(num_rows)
    )
    return MetricChannel(
        name=name,
        kind="per_link",
        columns=("link", "flits", "util"),
        rows=rows,
        summary={"mean_util": 0.4},
        meta={"source": "test"},
    )


class TestRoundTrip:
    @pytest.mark.parametrize("num_rows", [0, 1, 5, 256, 257, 1000])
    def test_round_trip(self, num_rows):
        chan = _channel(num_rows)
        frames = chan.to_frames(max_rows=256)
        back = MetricChannel.from_frames(frames)
        # NaN != NaN, so compare the JSON forms (NaN encodes to None)
        assert back.to_dict() == chan.to_dict()

    def test_frame_count_and_schema(self):
        frames = _channel(1000).to_frames(max_rows=256)
        assert len(frames) == 4  # ceil(1000/256)
        assert all(
            f["schema"] == METRIC_CHANNEL_FRAME_SCHEMA for f in frames
        )
        assert frames[0]["frame"] == 0
        assert frames[0]["frames"] == 4
        assert frames[0]["num_rows"] == 1000
        # header frame carries the identity; all frames carry the name
        assert {f["name"] for f in frames} == {"link_util"}

    def test_rowless_channel_is_one_header_frame(self):
        frames = _channel(0).to_frames()
        assert len(frames) == 1
        back = MetricChannel.from_frames(frames)
        assert back.rows == ()

    def test_frames_are_json_scalars_only(self):
        import json

        frames = _channel(300).to_frames(max_rows=256)
        encoded = json.dumps(frames)  # must not raise
        decoded = json.loads(encoded)
        back = MetricChannel.from_frames(decoded)
        assert back.to_dict() == _channel(300).to_dict()


class TestRejection:
    def test_missing_frame_rejected(self):
        frames = _channel(600).to_frames(max_rows=256)
        with pytest.raises(ValueError, match="frame"):
            MetricChannel.from_frames([frames[0], frames[2]])

    def test_reordered_frames_rejected(self):
        frames = _channel(600).to_frames(max_rows=256)
        with pytest.raises(ValueError, match="frame"):
            MetricChannel.from_frames(
                [frames[0], frames[2], frames[1]]
            )

    def test_mixed_channels_rejected(self):
        a = _channel(300, name="a").to_frames(max_rows=256)
        b = _channel(300, name="b").to_frames(max_rows=256)
        with pytest.raises(ValueError, match="belongs to"):
            MetricChannel.from_frames([a[0], b[1]])

    def test_wrong_schema_rejected(self):
        frames = _channel(10).to_frames()
        frames[0] = dict(frames[0], schema="something/else")
        with pytest.raises(ValueError, match="cannot read"):
            MetricChannel.from_frames(frames)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            MetricChannel.from_frames([])
