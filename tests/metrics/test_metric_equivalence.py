"""Cross-core metric equivalence: probe channels agree bit-for-bit.

With a pinned injection schedule all three cores build the same packet
table, so the post-run probe decode must produce *identical* channels —
on the smoke scenario's configurations and on a degraded (faulted)
switchless system, whose repair routes exercise the probe layer's
route decoding on an irregular graph.
"""

from pathlib import Path

import pytest

from repro.api import load_study
from repro.engine.spec import ExperimentSpec, build_experiment
from repro.network import SimParams, Simulator, native_available

REPO = Path(__file__).resolve().parents[2]

CORES = ["array", "reference"] + (
    ["native"] if native_available() else []
)

PROBES = [
    "link_util", "vc_util", "latency_hist", "timeseries", "misroute",
    "ejection_fairness",
]


def channels_per_core(spec, rate):
    graph, routing, traffic = build_experiment(spec)
    schedule = Simulator(
        graph, routing, traffic, spec.params
    ).make_schedule(rate)
    out = {}
    for core in CORES:
        sim = Simulator(
            graph, routing, traffic, spec.params, core=core, probes=PROBES
        )
        res = sim.run(rate, schedule=schedule)
        out[core] = {
            name: ch.to_dict() for name, ch in res.channels.items()
        }
    return out


def assert_identical(per_core):
    ref_core = CORES[0]
    ref = per_core[ref_core]
    assert sorted(ref) == sorted(PROBES)
    for core in CORES[1:]:
        for name in ref:
            assert per_core[core][name] == ref[name], (
                f"{core} core's {name} channel diverged from {ref_core}"
            )


def smoke_specs():
    study = load_study(REPO / "scenarios" / "smoke.json")
    return [
        pytest.param(spec, id=spec.label or spec.topology)
        for scenario in study.scenarios
        for spec in scenario.specs
    ]


class TestHealthy:
    @pytest.mark.parametrize("spec", smoke_specs())
    def test_smoke_scenario_channels_identical(self, spec):
        for rate in spec.rates:
            assert_identical(channels_per_core(spec, rate))


class TestDegraded:
    def degraded_spec(self):
        return ExperimentSpec.create(
            topology="switchless",
            topology_opts={
                "mesh_dim": 3, "chiplet_dim": 1, "num_local": 2,
                "num_global": 1,
            },
            routing="switchless",
            routing_opts={"mode": "minimal"},
            traffic="uniform",
            faults={"model": "random", "link_rate": 0.08, "seed": 3},
            params=SimParams(
                warmup_cycles=120, measure_cycles=300, drain_cycles=200,
                seed=9,
            ),
            rates=[0.25],
            label="SW-less-degraded",
        )

    def test_degraded_channels_identical(self):
        spec = self.degraded_spec()
        per_core = channels_per_core(spec, spec.rates[0])
        assert_identical(per_core)

    def test_degraded_misroute_uses_observed_floor(self):
        """Repaired routes may exceed the healthy graph's BFS distance;
        the probe must not report negative excess."""
        spec = self.degraded_spec()
        per_core = channels_per_core(spec, spec.rates[0])
        hist = per_core[CORES[0]]["misroute"]
        assert all(row[0] >= 0 for row in hist["rows"])
