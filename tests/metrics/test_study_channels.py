"""Channels through the full stack: spec axis -> engine -> cache ->
StudyResult -> JSON/CSV -> CLI report."""

import json

import pytest

from repro.api import StudyResult, build_study, load_study
from repro.engine import ExperimentSpec, ResultCache
from repro.engine.spec import ENGINE_VERSION

METRICS = ["link_util", "latency_hist", "misroute"]


def probed_study():
    return build_study("smoke", "quick").with_metrics(METRICS)


@pytest.fixture(scope="module")
def study_result(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    result = probed_study().run(workers=1, cache=cache)
    return result, cache


class TestSpecAxis:
    def test_metrics_change_the_config_key(self):
        spec = probed_study().scenarios[0].specs[0]
        assert spec.metrics
        assert spec.config_key() != spec.with_metrics(None).config_key()

    def test_probe_options_change_the_config_key(self):
        spec = probed_study().scenarios[0].specs[0]
        a = spec.with_metrics([("latency_hist", {"bins": 8})])
        b = spec.with_metrics([("latency_hist", {"bins": 16})])
        assert a.config_key() != b.config_key()

    def test_engine_version_bumped_for_metrics_axis(self):
        assert ENGINE_VERSION >= 3

    def test_axis_round_trips_through_data(self):
        spec = probed_study().scenarios[0].specs[0].with_metrics(
            ["link_util", ("latency_hist", {"bins": 8})]
        )
        clone = ExperimentSpec.from_data(
            json.loads(json.dumps(spec.to_data()))
        )
        assert clone == spec
        assert clone.metrics == spec.metrics

    def test_probe_off_spec_serialises_without_metrics_key(self):
        spec = probed_study().scenarios[0].specs[0].with_metrics(None)
        assert "metrics" not in spec.to_data()

    def test_unknown_probe_kind_fails_at_spec_creation(self):
        with pytest.raises(ValueError, match="unknown probe kind"):
            probed_study().with_metrics(["link_utils"])


class TestThroughTheStack:
    def test_channels_on_every_point(self, study_result):
        result, _ = study_result
        assert result.channel_names() == METRICS
        for scn in result.scenarios:
            for curve in scn.curves:
                assert curve.channel_names() == METRICS
                for p in curve.points:
                    assert sorted(p.channels) == sorted(METRICS)

    def test_cache_replay_preserves_channels(self, study_result):
        result, cache = study_result
        replay_cache = ResultCache(cache.root)
        replay = probed_study().run(workers=1, cache=replay_cache)
        assert replay_cache.misses == 0
        assert replay_cache.hits > 0
        a, b = result.to_dict(), replay.to_dict()
        a.pop("meta"), b.pop("meta")
        assert a == b

    def test_probe_off_points_do_not_alias_probe_on_cache(self, study_result):
        result, cache = study_result
        off_cache = ResultCache(cache.root)
        off = build_study("smoke", "quick").run(workers=1, cache=off_cache)
        assert off_cache.hits == 0  # different config keys entirely
        assert off.channel_names() == []

    def test_json_round_trip_preserves_channels(self, study_result):
        result, _ = study_result
        clone = StudyResult.from_json(result.to_json())
        a, b = result.to_dict(), clone.to_dict()
        a.pop("meta"), b.pop("meta")
        assert a == b
        point = clone.scenarios[0].curves[0].points[0]
        assert point.channel("link_util").summary["total_flit_hops"] > 0

    def test_channel_csv_long_form(self, study_result):
        result, _ = study_result
        csv = result.channel_csv("link_util")
        lines = csv.splitlines()
        assert lines[0].startswith("scenario,curve,rate,link,")
        assert len(lines) > 2
        assert lines[1].startswith("mesh-vs-switch,")
        with pytest.raises(KeyError, match="no channel"):
            result.channel_csv("phlogiston")

    def test_render_channel(self, study_result):
        result, _ = study_result
        text = result.render_channel("misroute")
        assert "misroute" in text
        assert "rate 0.3" in text


class TestCli:
    def test_run_metrics_report_channel(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "res.json"
        rc = main([
            "run", "smoke", "--scale", "quick", "--workers", "1",
            "--metrics", "link_util,timeseries", "--out", str(out),
        ])
        assert rc == 0
        capsys.readouterr()

        assert main(["metrics", str(out)]) == 0
        listing = capsys.readouterr().out
        assert "link_util" in listing and "timeseries" in listing

        csv_file = tmp_path / "links.csv"
        rc = main([
            "report", str(out), "--channel", "link_util",
            "--csv", str(csv_file),
        ])
        assert rc == 0
        rendered = capsys.readouterr().out
        assert "channel link_util" in rendered
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("scenario,curve,rate,link,")

    def test_metrics_listing(self, capsys):
        from repro.cli import main

        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        for name in METRICS:
            assert name in out

    def test_report_unknown_channel(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "res.json"
        assert main([
            "run", "smoke", "--scale", "quick", "--workers", "1",
            "--metrics", "link_util", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(out), "--channel", "zap"]) == 2
        assert "no channel" in capsys.readouterr().err

    def test_run_unknown_metric_suggests(self, capsys):
        from repro.cli import main

        rc = main([
            "run", "smoke", "--scale", "quick", "--workers", "1",
            "--metrics", "link_utils",
        ])
        assert rc == 2
        assert "unknown probe kind" in capsys.readouterr().err
