"""MetricChannel: construction, serialisation, CSV and rendering."""

import json
import math

import pytest

from repro.metrics import METRIC_CHANNEL_SCHEMA, MetricChannel


def channel():
    return MetricChannel(
        name="link_util",
        kind="table",
        columns=("link", "flits", "load"),
        rows=((0, 12, 0.25), (3, 4, float("nan"))),
        summary={"links_used": 2.0, "max_load": 0.25, "gap": float("nan")},
        meta={"top": 0},
    )


class TestConstruction:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="needs a name"):
            MetricChannel(name="")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="does not match"):
            MetricChannel(
                name="x", columns=("a", "b"), rows=((1,),)
            )

    def test_column_access(self):
        ch = channel()
        assert ch.column("flits") == [12, 4]
        with pytest.raises(KeyError, match="no column"):
            ch.column("zap")

    def test_top(self):
        ch = channel()
        assert ch.top("flits", 1) == [(0, 12, 0.25)]


class TestJsonRoundTrip:
    def test_round_trip_identity(self):
        ch = channel()
        clone = MetricChannel.from_json(ch.to_json())
        # NaN != NaN, so compare the serialised forms
        assert clone.to_dict() == ch.to_dict()
        assert clone.name == ch.name
        assert clone.columns == ch.columns
        assert clone.rows[0] == ch.rows[0]
        assert math.isnan(clone.rows[1][2])
        assert math.isnan(clone.summary["gap"])

    def test_schema_tagged(self):
        data = channel().to_dict()
        assert data["schema"] == METRIC_CHANNEL_SCHEMA
        # NaN encodes as null, so the payload is strict JSON
        text = json.dumps(data, allow_nan=False)
        assert "NaN" not in text

    def test_foreign_schema_rejected(self):
        data = channel().to_dict()
        data["schema"] = "martian/v7"
        with pytest.raises(ValueError, match="martian/v7"):
            MetricChannel.from_dict(data)

    def test_untagged_payload_accepted(self):
        data = channel().to_dict()
        del data["schema"]
        assert MetricChannel.from_dict(data).name == "link_util"


class TestCsv:
    def test_header_and_rows(self):
        lines = channel().to_csv().splitlines()
        assert lines[0] == "link,flits,load"
        assert lines[1] == "0,12,0.25"
        # NaN cells are empty, like StudyResult.to_csv
        assert lines[2] == "3,4,"

    def test_prefix_columns(self):
        lines = channel().to_csv(
            prefix=("curve=SW-less", "rate=0.4")
        ).splitlines()
        assert lines[0] == "curve,rate,link,flits,load"
        assert lines[1].startswith("SW-less,0.4,")

    def test_format_table_truncates(self):
        text = channel().format_table(max_rows=1)
        assert "link_util" in text
        assert "(1 more rows)" in text
