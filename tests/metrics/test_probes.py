"""Built-in probes against a small deterministic workload."""

import math

import pytest

from repro.engine.spec import ExperimentSpec, build_experiment
from repro.metrics import (
    Probe,
    RunRecord,
    build_probe,
    build_probes,
    list_probes,
    normalize_metrics,
    probe_descriptions,
)
from repro.network import SimParams, Simulator

PARAMS = SimParams(
    warmup_cycles=100, measure_cycles=300, drain_cycles=200, seed=5
)

ALL_PROBES = [
    "ejection_fairness", "latency_hist", "link_util", "misroute",
    "timeseries", "vc_util",
]


def run_probed(mode="minimal", probes=ALL_PROBES, rate=0.3):
    spec = ExperimentSpec.create(
        topology="switchless",
        topology_opts={"preset": "small_equiv"},
        routing="switchless",
        routing_opts={"mode": mode},
        traffic="uniform",
        params=PARAMS,
    )
    graph, routing, traffic = build_experiment(spec)
    sim = Simulator(graph, routing, traffic, PARAMS, probes=probes)
    return sim.run(rate), sim


class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_PROBES) <= set(list_probes())

    def test_descriptions_nonempty(self):
        for name, desc in probe_descriptions().items():
            assert desc, f"{name} has no description"

    def test_unknown_kind_fails(self):
        with pytest.raises(ValueError, match="unknown probe kind"):
            build_probe("heisenberg")

    def test_normalize_accepts_names_and_options(self):
        axis = normalize_metrics(["link_util", ("latency_hist", {"bins": 8})])
        assert axis == (
            ("link_util", ()),
            ("latency_hist", (("bins", 8),)),
        )
        # idempotent on the frozen form
        assert normalize_metrics(axis) == axis

    def test_normalize_rejects_bad_options(self):
        with pytest.raises(TypeError, match="not spec-serialisable"):
            normalize_metrics([("latency_hist", {"bins": [1, 2]})])

    def test_normalize_rejects_duplicate_kinds(self):
        """Channels are keyed by name: a duplicate kind would silently
        overwrite the first one's channel."""
        with pytest.raises(ValueError, match="appears twice"):
            normalize_metrics([("link_util", {"top": 5}), "link_util"])

    def test_build_probes_realises_options(self):
        probes = build_probes([("latency_hist", {"bins": 4})])
        assert probes[0].bins == 4


class TestChannelsOnResult:
    def test_channels_present_and_named(self):
        res, _ = run_probed()
        assert sorted(res.channels) == sorted(ALL_PROBES)
        for name, ch in res.channels.items():
            assert ch.name == name

    def test_simresult_aggregates_unchanged_by_probes(self):
        res_on, _ = run_probed()
        spec_off, _ = None, None
        res_off, _ = run_probed(probes=None)
        d_on, d_off = res_on.to_dict(), res_off.to_dict()
        d_on.pop("channels")
        assert d_on == d_off

    def test_link_util_accounts_measured_delivered_flits(self):
        res, sim = run_probed()
        record = sim.last_record
        ch = res.channels["link_util"]
        pkt_len = PARAMS.packet_length
        expect = sum(
            record.p_hops[pid] * pkt_len
            for pid in record.measured_delivered_pids()
        )
        assert ch.summary["total_flit_hops"] == expect
        assert sum(ch.column("flits")) == expect

    def test_top_n_truncates_rows_but_not_summary(self):
        """top-N thins the exported table only; summary statistics
        (mean load, links_used) still describe every used link."""
        res_full, _ = run_probed(probes=["link_util"])
        res_top, _ = run_probed(probes=[("link_util", {"top": 5})])
        full = res_full.channels["link_util"]
        top = res_top.channels["link_util"]
        assert top.num_rows == 5 < full.num_rows
        assert top.summary == full.summary
        hottest = max(full.rows, key=lambda r: r[3])
        assert hottest in top.rows

    def test_vc_util_totals_match_link_util(self):
        res, _ = run_probed()
        assert sum(res.channels["vc_util"].column("flits")) == sum(
            res.channels["link_util"].column("flits")
        )

    def test_latency_hist_matches_simresult_percentiles(self):
        res, _ = run_probed()
        s = res.channels["latency_hist"].summary
        assert s["avg"] == pytest.approx(res.avg_latency)
        assert s["p50"] == pytest.approx(res.p50_latency)
        assert s["p99"] == pytest.approx(res.p99_latency)
        assert sum(res.channels["latency_hist"].column("count")) == s["packets"]

    def test_timeseries_covers_measurement_window(self):
        res, sim = run_probed()
        ch = res.channels["timeseries"]
        record = sim.last_record
        assert ch.rows[0][0] == record.measure_start
        assert ch.rows[-1][1] == record.measure_end
        injected = sum(ch.column("injected"))
        assert injected == res.packets_measured
        completed = sum(ch.column("completed"))
        assert completed + ch.summary["completed_in_drain"] == (
            res.packets_delivered
        )

    def test_flat_minimal_routing_never_misroutes(self):
        """XY routes in a mesh are graph-minimal: excess must be 0."""
        spec = ExperimentSpec.create(
            topology="mesh",
            topology_opts={"dim": 4, "chiplet_dim": 2},
            routing="xy_mesh",
            traffic="uniform",
            params=PARAMS,
        )
        graph, routing, traffic = build_experiment(spec)
        res = Simulator(
            graph, routing, traffic, PARAMS, probes=["misroute"]
        ).run(0.4)
        s = res.channels["misroute"].summary
        assert s["misroute_ratio"] == 0.0
        assert s["avg_excess"] == 0.0

    def test_valiant_misroutes_more_than_minimal(self):
        """The Fig. 13 signal: Valiant detours lift hop counts and the
        misroute ratio far above the minimal policy's structural
        offset on the same switch-less system."""
        res_min, _ = run_probed("minimal")
        res_val, _ = run_probed("valiant")
        s_min = res_min.channels["misroute"].summary
        s_val = res_val.channels["misroute"].summary
        assert s_val["misroute_ratio"] > s_min["misroute_ratio"]
        assert s_val["avg_excess"] > s_min["avg_excess"]
        assert s_val["avg_hops"] > s_min["avg_hops"]

    def test_ejection_fairness_uniform_is_fair(self):
        res, _ = run_probed()
        s = res.channels["ejection_fairness"].summary
        assert 0.8 < s["jain_index"] <= 1.0
        assert s["chips"] > 1


class TestMisrouteFloor:
    def record(self, failed=frozenset()):
        """One packet 0->2 routed via node 1 (2 hops) on a graph that
        also has a direct 0->2 shortcut (link 0)."""
        return RunRecord(
            core="synthetic", rate=0.1, num_nodes=3, num_links=3,
            num_vcs=1, packet_length=4,
            measure_start=0, measure_end=100, measure_cycles=100,
            active_chips=3,
            p_src=[0], p_dst=[2], p_t0=[10], p_meas=[1], p_done=[20],
            p_hops=[2], p_off=[0], route_lv=[1, 2],
            node_chip={0: 0, 1: 1, 2: 2},
            link_ends=[(0, 2), (0, 1), (1, 2)],
            failed_links=frozenset(failed),
        )

    def test_healthy_floor_counts_the_shortcut(self):
        s = build_probe("misroute").collect(self.record()).summary
        assert s["misroute_ratio"] == 1.0
        assert s["avg_excess"] == 1.0

    def test_degraded_floor_excludes_failed_links(self):
        """When the shortcut is a failed link, the repaired 2-hop route
        IS minimal over the surviving graph — not a misroute."""
        s = build_probe("misroute").collect(self.record({0})).summary
        assert s["misroute_ratio"] == 0.0
        assert s["avg_excess"] == 0.0


class TestEventSurface:
    def test_generic_probe_replay_matches_bulk_decode(self):
        """A probe written against the event surface counts the same
        traversals as the vectorised built-in."""

        class CountingProbe(Probe):
            name = "link_util"  # same channel name for comparison

            def begin(self, record):
                self.counts = {}
                self.pkt_len = record.packet_length

            def on_hop(self, pkt, hop):
                self.counts[hop.link] = (
                    self.counts.get(hop.link, 0) + self.pkt_len
                )

            def finish(self, record):
                from repro.metrics import MetricChannel

                return MetricChannel(
                    name="link_util",
                    columns=("link", "flits"),
                    rows=tuple(sorted(self.counts.items())),
                )

        spec = ExperimentSpec.create(
            topology="mesh",
            topology_opts={"dim": 4, "chiplet_dim": 2},
            routing="xy_mesh",
            traffic="uniform",
            params=PARAMS,
        )
        graph, routing, traffic = build_experiment(spec)
        sched = Simulator(graph, routing, traffic, PARAMS).make_schedule(0.4)
        sim_ev = Simulator(
            graph, routing, traffic, PARAMS, probes=[CountingProbe()]
        )
        res_ev = sim_ev.run(0.4, schedule=sched)
        sim_blk = Simulator(
            graph, routing, traffic, PARAMS, probes=["link_util"]
        )
        res_blk = sim_blk.run(0.4, schedule=sched)
        ev = dict(zip(res_ev.channels["link_util"].column("link"),
                      res_ev.channels["link_util"].column("flits")))
        blk = dict(zip(res_blk.channels["link_util"].column("link"),
                       res_blk.channels["link_util"].column("flits")))
        assert ev == blk


class TestProbeGuards:
    def test_probes_must_be_enabled_before_first_run(self):
        spec = ExperimentSpec.create(
            topology="mesh",
            topology_opts={"dim": 4, "chiplet_dim": 2},
            routing="xy_mesh",
            traffic="uniform",
            params=PARAMS,
        )
        graph, routing, traffic = build_experiment(spec)
        sim = Simulator(graph, routing, traffic, PARAMS, core="array")
        sim.run(0.2)
        with pytest.raises(RuntimeError, match="before the first run"):
            sim._core.enable_probes()

    def test_run_record_requires_probe_mode(self):
        spec = ExperimentSpec.create(
            topology="mesh",
            topology_opts={"dim": 4, "chiplet_dim": 2},
            routing="xy_mesh",
            traffic="uniform",
            params=PARAMS,
        )
        graph, routing, traffic = build_experiment(spec)
        sim = Simulator(graph, routing, traffic, PARAMS, core="array")
        sim.run(0.2)
        with pytest.raises(RuntimeError, match="not enabled"):
            sim._core.run_record(0.2)

    def test_probed_simulator_is_single_run(self):
        """A second probed run() would decode one record against two
        measurement windows; it must raise, not mis-report."""
        _, sim = run_probed()
        with pytest.raises(RuntimeError, match="single-run"):
            sim.run(0.3)

    def test_unprobed_simulator_still_supports_repeated_runs(self):
        spec = ExperimentSpec.create(
            topology="mesh",
            topology_opts={"dim": 4, "chiplet_dim": 2},
            routing="xy_mesh",
            traffic="uniform",
            params=PARAMS,
        )
        graph, routing, traffic = build_experiment(spec)
        sim = Simulator(graph, routing, traffic, PARAMS)
        sim.run(0.3)
        sim.run(0.3)  # accumulating reruns stay supported probe-off

    def test_empty_traffic_probes_report_nan_not_crash(self):
        res, _ = run_probed(rate=0.0)
        s = res.channels["latency_hist"].summary
        assert s["packets"] == 0
        assert math.isnan(s["avg"])
        assert res.channels["link_util"].num_rows == 0
