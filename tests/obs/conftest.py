"""Shared telemetry fixtures: a clean sink list per test."""

import pytest

from repro.obs import trace


@pytest.fixture()
def capture_spans(monkeypatch):
    """Collect every emitted span dict in a plain list, leaving the
    global sink list as the test found it."""
    monkeypatch.delenv(trace.SPANLOG_ENV, raising=False)
    monkeypatch.delenv(trace.TRACEPARENT_ENV, raising=False)
    monkeypatch.delenv(trace.TRACEPARENT_PID_ENV, raising=False)
    spans = []
    trace.add_sink(spans.append)
    yield spans
    trace.remove_sink(spans.append)
