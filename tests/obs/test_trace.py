"""Trace context: propagation carriers, span lifecycle, no-op path."""

import os

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanContext,
    format_traceparent,
    new_context,
    parse_traceparent,
    span,
    start_span,
    use_context,
)


class TestTraceparent:
    def test_roundtrip(self):
        ctx = new_context()
        assert len(ctx.trace_id) == 32 and len(ctx.span_id) == 16
        header = format_traceparent(ctx)
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        assert parse_traceparent(header) == ctx

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-short-span-01",
            "00-" + "z" * 32 + "-" + "a" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "a" * 16 + "-01",  # zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # zero span
        ],
    )
    def test_malformed_values_parse_to_none(self, bad):
        assert parse_traceparent(bad) is None

    def test_env_carrier_is_for_child_processes_only(self, monkeypatch):
        ctx = new_context()
        monkeypatch.setenv(trace.TRACEPARENT_ENV, format_traceparent(ctx))
        # no PID marker: treated as inherited from a parent process
        assert trace.current_context() == ctx
        # our own marker: sibling threads of the exporter see nothing
        monkeypatch.setenv(trace.TRACEPARENT_PID_ENV, str(os.getpid()))
        assert trace.current_context() is None
        # a different PID (the worker case) reads the carrier again
        monkeypatch.setenv(trace.TRACEPARENT_PID_ENV, "1")
        assert trace.current_context() == ctx


class TestSpanLifecycle:
    def test_noop_without_sink_or_context(self):
        assert not trace.tracing_active()
        with span("nothing") as sp:
            assert sp is NOOP_SPAN
        assert start_span("nothing") is NOOP_SPAN

    def test_nesting_builds_parent_chain(self, capture_spans):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        names = [s["name"] for s in capture_spans]
        assert names == ["inner", "outer"]  # children close first
        for s in capture_spans:
            assert s["schema"] == "repro.span/v1"
            assert s["end"] >= s["start"]

    def test_exception_marks_error_and_propagates(self, capture_spans):
        with pytest.raises(RuntimeError, match="boom"):
            with span("work"):
                raise RuntimeError("boom")
        (record,) = capture_spans
        assert record["status"] == "error"
        assert "RuntimeError: boom" in record["error"]

    def test_end_is_idempotent(self, capture_spans):
        sp = Span("stage")
        sp.end()
        sp.end(status="error", error="too late")
        (record,) = capture_spans
        assert record["status"] == "ok" and "error" not in record

    def test_attrs_and_links_recorded(self, capture_spans):
        sp = Span("stage", points=4)
        sp.set(rate=0.4).add_link("feedbeef00000000").add_link(None)
        sp.end()
        (record,) = capture_spans
        assert record["attrs"] == {"points": 4, "rate": 0.4}
        assert record["links"] == ["feedbeef00000000"]

    def test_explicit_parent_overrides_ambient(self, capture_spans):
        foreign = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
        with span("ambient"):
            with span("child", parent=foreign) as sp:
                assert sp.trace_id == foreign.trace_id
                assert sp.parent_id == foreign.span_id

    def test_use_context_sets_ambient(self, capture_spans):
        ctx = new_context()
        with use_context(ctx):
            assert trace.current_context() == ctx
            with span("stage") as sp:
                assert sp.trace_id == ctx.trace_id
        assert trace.current_context() is None

    def test_parented_span_recorded_even_without_sink(self, monkeypatch):
        # a parent context means someone upstream is collecting: the
        # span must be real (so its context can propagate), even if
        # emission then goes nowhere in this process
        assert not trace.tracing_active()
        with span("stage", parent=new_context()) as sp:
            assert sp is not NOOP_SPAN


class TestEnvSpanlogSink:
    def test_worker_bootstrap_appends_to_file(self, tmp_path, monkeypatch):
        path = tmp_path / "spans.ndjson"
        monkeypatch.setenv(trace.SPANLOG_ENV, str(path))
        assert trace.tracing_active()
        with span("worker.stage"):
            pass
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        import json

        assert json.loads(lines[0])["name"] == "worker.stage"
