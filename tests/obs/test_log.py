"""Structured logging: field kwargs, trace stamping, both formatters."""

import io
import json
import logging

import pytest

from repro.obs import get_logger, setup_logging
from repro.obs.trace import new_context, use_context


@pytest.fixture()
def json_log():
    """An isolated logger with a JSON handler writing to a buffer."""
    stream = io.StringIO()
    name = "repro.test.jsonlog"
    handler = setup_logging(fmt="json", stream=stream, logger_name=name)
    logger = get_logger(name)
    logger.logger.propagate = False
    yield logger, stream
    logging.getLogger(name).removeHandler(handler)


@pytest.fixture()
def text_log():
    stream = io.StringIO()
    name = "repro.test.textlog"
    handler = setup_logging(fmt="text", stream=stream, logger_name=name)
    logger = get_logger(name)
    logger.logger.propagate = False
    yield logger, stream
    logging.getLogger(name).removeHandler(handler)


class TestJsonFormat:
    def test_fields_and_printf_args(self, json_log):
        logger, stream = json_log
        logger.info("job %s queued", "j01", job="j01", state="queued")
        rec = json.loads(stream.getvalue())
        assert rec["msg"] == "job j01 queued"
        assert rec["job"] == "j01" and rec["state"] == "queued"
        assert rec["level"] == "info"
        assert rec["logger"].endswith("jsonlog")

    def test_trace_context_stamped(self, json_log):
        logger, stream = json_log
        ctx = new_context()
        with use_context(ctx):
            logger.info("inside")
        rec = json.loads(stream.getvalue())
        assert rec["trace_id"] == ctx.trace_id
        assert rec["span_id"] == ctx.span_id

    def test_no_context_no_trace_fields(self, json_log):
        logger, stream = json_log
        logger.info("outside")
        rec = json.loads(stream.getvalue())
        assert "trace_id" not in rec

    def test_exception_carries_traceback(self, json_log):
        logger, stream = json_log
        try:
            raise ValueError("kaput")
        except ValueError:
            logger.exception("stage failed", job="j02")
        rec = json.loads(stream.getvalue())
        assert rec["exc_type"] == "ValueError"
        assert "kaput" in rec["traceback"]
        assert rec["job"] == "j02"

    def test_every_line_is_one_json_object(self, json_log):
        logger, stream = json_log
        for i in range(3):
            logger.info("line %d", i, n=i)
        lines = stream.getvalue().strip().splitlines()
        assert [json.loads(l)["n"] for l in lines] == [0, 1, 2]


class TestTextFormat:
    def test_field_tail(self, text_log):
        logger, stream = text_log
        logger.info("job queued", job="j01", state="queued")
        line = stream.getvalue().strip()
        assert "job queued" in line
        assert line.endswith("| job=j01 state=queued")

    def test_plain_message_has_no_tail(self, text_log):
        logger, stream = text_log
        logger.info("nothing structured")
        assert "|" not in stream.getvalue()


class TestSetup:
    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="log format"):
            setup_logging(fmt="yaml")

    def test_idempotent_reinstall(self):
        name = "repro.test.idem"
        h1 = setup_logging(fmt="text", logger_name=name)
        h2 = setup_logging(fmt="json", logger_name=name)
        target = logging.getLogger(name)
        try:
            ours = [
                h for h in target.handlers
                if getattr(h, "_repro_obs_handler", False)
            ]
            assert ours == [h2] and h1 not in target.handlers
        finally:
            target.removeHandler(h2)
