"""Metrics registry: get-or-create semantics, label handling, export."""

import json
import threading

import pytest

from repro.obs import MetricsRegistry, parse_prometheus, to_json, to_prometheus
from repro.obs.export import METRICS_SCHEMA


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("jobs_total", "jobs")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self, registry):
        c = registry.counter("points_total", "", labelnames=("source",))
        c.inc(3, source="fresh")
        c.inc(source="cache")
        assert c.value(source="fresh") == 3
        assert c.value(source="cache") == 1
        assert c.value(source="other") == 0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("x_total").inc(-1)

    def test_wrong_labelset_rejected(self, registry):
        c = registry.counter("y_total", "", labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(other="nope")
        with pytest.raises(ValueError, match="takes labels"):
            c.inc()

    def test_thread_safety_no_lost_updates(self, registry):
        c = registry.counter("contended_total")
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_callback_sampled_at_collect(self, registry):
        box = {"v": 7}
        g = registry.gauge("live")
        g.set_function(lambda: box["v"])
        assert g.value() == 7
        box["v"] = 9
        assert g.collect() == [{"labels": {}, "value": 9.0}]

    def test_dead_callback_reads_zero(self, registry):
        g = registry.gauge("flaky")
        g.set_function(lambda: 1 / 0)
        assert g.value() == 0.0


class TestHistogram:
    def test_cumulative_buckets_sum_count(self, registry):
        h = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 20.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(21.05)
        (sample,) = h.collect()
        les = [b["le"] for b in sample["buckets"]]
        counts = [b["count"] for b in sample["buckets"]]
        assert les == [0.1, 1.0, 10.0, "+Inf"]
        assert counts == [1, 3, 3, 4]  # cumulative

    def test_trailing_inf_bucket_dropped(self, registry):
        h = registry.histogram("b", buckets=(1.0, float("inf")))
        assert h.buckets == (1.0,)


class TestRegistrySemantics:
    def test_same_name_returns_same_metric(self, registry):
        a = registry.counter("shared_total", "first caller")
        b = registry.counter("shared_total", "second caller")
        assert a is b

    def test_type_mismatch_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_label_mismatch_raises(self, registry):
        registry.counter("lbl_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("lbl_total", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "has space", "has-dash", "ha$h"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_reserved_label_rejected(self, registry):
        with pytest.raises(ValueError, match="reserved"):
            registry.histogram("h", labelnames=("le",))


class TestExport:
    def _populated(self, registry):
        registry.counter("jobs_total", "submitted", ("state",)).inc(
            3, state="done"
        )
        registry.gauge("depth", "queue depth").set(2)
        h = registry.histogram(
            "seconds", "latency", buckets=(0.005, 0.05)
        )
        h.observe(0.001)
        h.observe(0.02)
        return registry

    def test_prometheus_text_roundtrips_through_parser(self, registry):
        text = to_prometheus(self._populated(registry))
        assert "# TYPE jobs_total counter" in text
        assert "# TYPE seconds histogram" in text
        parsed = parse_prometheus(text)
        assert parsed["jobs_total"][json.dumps({"state": "done"})] == 3.0
        assert parsed["depth"]['{}'] == 2.0
        buckets = parsed["seconds_bucket"]
        assert buckets[json.dumps({"le": "0.005"})] == 1.0
        assert buckets[json.dumps({"le": "+Inf"})] == 2.0
        assert parsed["seconds_count"]['{}'] == 2.0

    def test_label_values_escaped(self, registry):
        registry.counter("esc_total", "", ("path",)).inc(
            path='a"b\\c\nd'
        )
        parsed = parse_prometheus(to_prometheus(registry))
        (key,) = parsed["esc_total"]
        assert json.loads(key) == {"path": 'a"b\\c\nd'}

    def test_json_export_schema(self, registry):
        doc = json.loads(to_json(self._populated(registry)))
        assert doc["schema"] == METRICS_SCHEMA
        names = [m["name"] for m in doc["metrics"]]
        assert names == sorted(names)
        assert "jobs_total" in names

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("ok_total 1\nbad-name 2\n")
        with pytest.raises(ValueError):
            parse_prometheus("ok_total notanumber\n")
