"""SpanLog sink: bounded memory index, NDJSON file, merged reads."""

import json
import os

from repro.obs import SpanLog, trace
from repro.obs.trace import span


def _span(trace_id, span_id, name="s", start=1.0, **extra):
    rec = {
        "schema": "repro.span/v1",
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": None,
        "name": name,
        "start": start,
        "end": start + 0.5,
        "status": "ok",
    }
    rec.update(extra)
    return rec


class TestInMemory:
    def test_record_and_for_trace(self):
        log = SpanLog()
        log.record(_span("t1", "a", start=2.0))
        log.record(_span("t1", "b", start=1.0))
        log.record(_span("t2", "c"))
        assert log.traces() == ["t1", "t2"]
        got = log.for_trace("t1")
        assert [s["span_id"] for s in got] == ["b", "a"]  # start order
        assert log.recorded == 3

    def test_ring_bound_evicts_oldest(self):
        log = SpanLog(max_spans=2)
        for i in range(4):
            log.record(_span(f"t{i}", f"s{i}"))
        assert log.traces() == ["t2", "t3"]
        assert log.for_trace("t0") == []
        assert log.recorded == 4  # the counter keeps the true total


class TestFileBacked:
    def test_spans_persist_and_merge_with_memory(self, tmp_path):
        path = tmp_path / "spans.ndjson"
        first = SpanLog(path)
        first.record(_span("t1", "disk-span"))
        first.close()

        second = SpanLog(path)
        second.record(_span("t1", "mem-span", start=2.0))
        got = second.for_trace("t1")
        assert [s["span_id"] for s in got] == ["disk-span", "mem-span"]
        second.close()

    def test_duplicate_span_ids_deduplicated(self, tmp_path):
        path = tmp_path / "spans.ndjson"
        log = SpanLog(path)
        log.record(_span("t1", "a"))  # lands in memory AND the file
        assert len(log.for_trace("t1")) == 1
        log.close()

    def test_torn_file_line_skipped(self, tmp_path):
        path = tmp_path / "spans.ndjson"
        path.write_text(
            json.dumps(_span("t1", "good")) + "\n" + '{"trace_id": "t1", '
        )
        log = SpanLog(path)
        assert [s["span_id"] for s in log.for_trace("t1")] == ["good"]
        log.close()


class TestInstall:
    def test_install_receives_emitted_spans(self, tmp_path, monkeypatch):
        monkeypatch.delenv(trace.SPANLOG_ENV, raising=False)
        path = tmp_path / "spans.ndjson"
        log = SpanLog(path).install()
        try:
            assert os.environ[trace.SPANLOG_ENV] == str(path)
            assert trace.tracing_active()
            with span("stage", points=1):
                pass
            (rec,) = log.for_trace(log.traces()[0])
            assert rec["name"] == "stage"
            assert path.read_text().count('"stage"') == 1
        finally:
            log.close()
        assert trace.SPANLOG_ENV not in os.environ
        assert not trace.tracing_active()
