"""The span waterfall renderer (the ``trace`` CLI's output)."""

from repro.obs import render_waterfall


def _span(span_id, name, start, end, parent=None, **extra):
    rec = {
        "schema": "repro.span/v1",
        "trace_id": "t" * 32,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start": start,
        "end": end,
        "status": "ok",
    }
    rec.update(extra)
    return rec


class TestWaterfall:
    def test_empty(self):
        assert render_waterfall([]) == "(no spans)"

    def test_depth_indentation_and_header(self):
        out = render_waterfall(
            [
                _span("a", "execution", 0.0, 1.0),
                _span("b", "engine.run", 0.1, 0.9, parent="a"),
                _span("c", "kernel.run", 0.2, 0.8, parent="b"),
            ]
        )
        lines = out.splitlines()
        assert lines[0].startswith(f"trace {'t' * 32}  (3 spans,")
        assert lines[1].startswith("execution")
        assert lines[2].startswith("  engine.run")
        assert lines[3].startswith("    kernel.run")
        # bars share one time axis: the root bar spans the full width
        assert lines[1].count("█") > lines[3].count("█")

    def test_error_and_links_flagged(self):
        out = render_waterfall(
            [
                _span(
                    "a", "execution.resume", 0.0, 1.0,
                    status="error", error="ChaosError: injected",
                    links=["deadbeef00000000"],
                ),
            ]
        )
        assert "!! ChaosError: injected" in out
        assert "~> links deadbeef00000000" in out

    def test_orphan_and_cyclic_parents_render_at_depth_zero(self):
        # parent evicted from the ring, or a (corrupt) parent cycle:
        # either way every span still renders
        out = render_waterfall(
            [
                _span("a", "orphan", 0.0, 0.5, parent="gone"),
                _span("b", "loop1", 0.0, 0.5, parent="c"),
                _span("c", "loop2", 0.1, 0.4, parent="b"),
            ]
        )
        assert "orphan" in out and "loop1" in out and "loop2" in out
