"""CLI surface of the closed-loop workloads."""

import json

from repro.cli import main
from repro.workload import build_workload, save_trace


def test_workloads_verb_lists_builders_and_schema(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("ring_allreduce", "tree_allreduce", "all_to_all",
                 "pipeline", "trace"):
        assert name in out
    assert "repro.workload-trace/v1" in out


def test_list_mentions_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "application workloads" in out
    assert "ring_allreduce" in out
    assert "workload_smoke" in out


def test_metrics_lists_closed_loop_channels(capsys):
    assert main(["metrics"]) == 0
    out = capsys.readouterr().out
    assert "cct" in out and "bubble" in out and "overlap" in out


def test_run_bundled_workload_study(capsys, tmp_path):
    out_file = tmp_path / "res.json"
    rc = main([
        "run", "workload_smoke", "--scale", "quick", "--workers", "1",
        "--out", str(out_file),
    ])
    assert rc == 0
    data = json.loads(out_file.read_text())
    point = data["scenarios"][0]["curves"][0]["points"][0]
    assert "cct" in point["result"]["channels"]


def test_run_workload_flag_and_channel_report(capsys, tmp_path):
    out_file = tmp_path / "res.json"
    rc = main([
        "run", "smoke", "--scale", "quick", "--workers", "1",
        "--workload", "ring_allreduce", "--workload-opts", "volume=32",
        "--metrics", "cct", "--out", str(out_file),
    ])
    assert rc == 0
    # the saved result renders the cct table back through report
    rc = main(["report", str(out_file), "--channel", "cct"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cct" in out and "rs0" in out


def test_run_workload_trace_from_file(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    save_trace(build_workload("all_to_all", None, num_chips=4), trace)
    rc = main([
        "run", "smoke", "--scale", "quick", "--workers", "1",
        "--workload", "trace", "--workload-opts", f"trace={trace}",
        "--metrics", "cct",
    ])
    assert rc == 0


def test_run_misspelled_workload_suggests(capsys):
    rc = main([
        "run", "smoke", "--scale", "quick",
        "--workload", "ring_alreduce",
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert "did you mean 'ring_allreduce'" in err


def test_bad_workload_opts_rejected(capsys):
    rc = main([
        "run", "smoke", "--scale", "quick",
        "--workload", "ring_allreduce", "--workload-opts", "volume",
    ])
    assert rc == 2
    assert "KEY=VALUE" in capsys.readouterr().err
