"""PhasePlan semantics and the closed-loop driver."""

import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.engine.executor import simulate_point
from repro.network import SimParams
from repro.workload import (
    PhasePlan,
    build_workload,
    participating_chips,
    run_closed_loop,
)

PARAMS = SimParams(seed=11)


def mesh_experiment(**kw):
    spec = ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform", params=PARAMS,
        rates=[0.5], **kw,
    )
    return spec, build_experiment(spec)


class TestParticipatingChips:
    def test_chips_and_nodes_cover_scope(self):
        _, (graph, routing, traffic) = mesh_experiment()
        index, positions, nodes = participating_chips(traffic)
        assert len(positions) == 4
        assert sorted(n for ns in nodes.values() for n in ns) == sorted(
            traffic.active_nodes()
        )


class TestPhasePlan:
    def build_plan(self, workload_name="ring_allreduce", opts=None,
                   rate=0.5):
        _, (graph, routing, traffic) = mesh_experiment()
        _, positions, _ = participating_chips(traffic)
        w = build_workload(workload_name, opts, num_chips=len(positions))
        return PhasePlan(w, traffic, params=PARAMS, rate=rate, seed=3)

    def test_rejects_zero_rate(self):
        _, (graph, routing, traffic) = mesh_experiment()
        w = build_workload("ring_allreduce", None, num_chips=4)
        with pytest.raises(ValueError, match="rate"):
            PhasePlan(w, traffic, params=PARAMS, rate=0.0, seed=3)

    def test_begin_materialises_only_roots(self):
        plan = self.build_plan()
        n_ev = plan.begin(0)
        # ring: one root phase; later phases are gated
        assert n_ev == len(plan._templates[0])
        assert n_ev < plan.total_events
        assert not plan.finished

    def test_begin_is_single_run(self):
        plan = self.build_plan()
        plan.begin(0)
        with pytest.raises(RuntimeError, match="single-run"):
            plan.begin(0)

    def test_packet_done_drains_phase_and_releases_dependent(self):
        plan = self.build_plan()
        n_ev = plan.begin(0)
        for pid in range(n_ev):
            plan.packet_done(pid, 100 + pid)
        assert plan.dirty  # phase 0 done -> phase 1 pending
        n2 = plan.flush(n_ev)
        assert n2 == n_ev + len(plan._templates[1])
        # dependent released at t_done + 1, after its compute (0 here)
        t_done = 100 + n_ev - 1
        assert plan._release_c[1] == t_done + 1
        assert min(plan.ev_cycles[n_ev:]) >= t_done + 1

    def test_event_arrays_stay_cycle_sorted_past_pointer(self):
        plan = self.build_plan()
        n_ev = plan.begin(0)
        for pid in range(n_ev):
            plan.packet_done(pid, 50)
        plan.flush(n_ev)
        tail = plan.ev_cycles[n_ev:]
        assert tail == sorted(tail)

    def test_compute_only_phases_cascade_through_flush(self):
        plan = self.build_plan("all_to_all", {"compute": 64})
        plan.begin(0)
        n_ev = len(plan.ev_cycles)
        for pid in range(n_ev):
            plan.packet_done(pid, 10)
        assert plan.dirty
        n2 = plan.flush(n_ev)
        # the compute-only expert phase resolved inline and released
        # the combine phase: its events start after the compute gap
        assert n2 > n_ev
        assert min(plan.ev_cycles[n_ev:]) >= 10 + 1 + 64

    def test_elapsed_is_makespan(self):
        # drive every event to completion round by round
        plan = self.build_plan()
        plan.begin(5)
        consumed = 0
        t = 30
        while not plan.finished:
            n = len(plan.ev_cycles)
            for pid in range(consumed, n):
                plan.packet_done(pid, t)
            consumed = n
            if plan.dirty:
                plan.flush(consumed)
            t += 100
        assert plan.elapsed() == (t - 100) - 5 + 1
        assert consumed == plan.total_events

    def test_phase_records_report_all_phases(self):
        plan = self.build_plan()
        recs = plan.phase_records()
        assert len(recs) == plan.num_phases
        assert all(r["done"] == -1 for r in recs)  # nothing ran yet
        assert {"name", "release", "comm_start", "done", "compute",
                "packets", "flits", "masked"} <= set(recs[0])

    def test_horizon_bounds_the_run(self):
        plan = self.build_plan()
        per_phase_flits = sum(
            len(t) for t in plan._templates
        ) * plan._L
        assert plan.horizon() > per_phase_flits


class TestRunClosedLoop:
    def test_end_to_end_finishes_and_measures_makespan(self):
        spec, (graph, routing, traffic) = mesh_experiment(
            workload="ring_allreduce", workload_opts={"volume": 32},
        )
        result = run_closed_loop(spec, graph, routing, traffic, 0.5)
        assert result.packets_measured > 0
        assert result.delivered_fraction == pytest.approx(1.0)
        assert not result.saturated

    def test_simulate_point_routes_closed_loop(self):
        spec, _ = mesh_experiment(
            workload="ring_allreduce", workload_opts={"volume": 32},
            metrics=("cct", "bubble", "overlap"),
        )
        result = simulate_point(spec, 0.5)
        cct = result.channels["cct"]
        assert cct.summary["phases"] == 6.0
        assert cct.summary["makespan"] > 0
        # chained ring phases tile the makespan: ccts sum to it
        assert sum(r[4] for r in cct.rows) == cct.summary["makespan"]
        bubble = result.channels["bubble"]
        assert bubble.summary["bubble_fraction"] == pytest.approx(0.0)

    def test_open_loop_points_carry_empty_phase_channels(self):
        spec, _ = mesh_experiment(metrics=("cct",))
        result = simulate_point(spec, 0.3)
        cct = result.channels["cct"]
        assert cct.summary["phases"] == 0.0
        assert cct.rows == ()

    def test_overlap_reported_for_pipeline(self):
        spec, _ = mesh_experiment(
            workload="pipeline",
            workload_opts={"volume": 32, "compute": 64},
            metrics=("overlap",),
        )
        result = simulate_point(spec, 0.5)
        ov = result.channels["overlap"].summary
        assert ov["compute_cycles"] > 0
        # microbatch b computes while b-1 communicates
        assert ov["overlap_cycles"] > 0
        assert 0.0 < ov["overlap_fraction"] <= 1.0
