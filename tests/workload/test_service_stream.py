"""Closed-loop studies through the simulation service: cct streams live."""

import threading

import pytest

from repro.api import build_study
from repro.service import ServiceClient, create_server


@pytest.fixture()
def service(tmp_path):
    server = create_server(
        host="127.0.0.1", port=0, cache_dir=tmp_path, default_workers=1
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, server
    finally:
        server.initiate_shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_workload_study_streams_cct_summaries(service):
    client, _ = service
    study = build_study("workload_smoke", scale="quick")
    job = client.submit_study(study)["id"]
    points = []
    terminal = None
    for event in client.stream(job):
        if event["event"] == "point":
            points.append(event)
        elif event["event"] in ("done", "failed", "cancelled"):
            terminal = event["event"]
            break
    assert terminal == "done"
    assert points
    for event in points:
        channels = event["result"].get("channels") or {}
        assert "cct" in channels, event["curve"]
        summary = channels["cct"]["summary"]
        assert summary["makespan"] > 0
        assert summary["phases"] > 0
    # closed-loop points report the makespan as the measure window
    assert all(
        e["result"]["measure_cycles"] > 0 for e in points
    )


def test_workload_job_result_retrievable(service):
    client, _ = service
    study = build_study("workload_smoke", scale="quick")
    job = client.submit_study(study)["id"]
    for event in client.stream(job):
        if event["event"] in ("done", "failed"):
            assert event["event"] == "done"
            break
    result = client.result(job)
    point = result.scenarios[0].curves[0].points[0]
    assert "cct" in point.result.channels
    assert point.result.channels["cct"].summary["makespan"] > 0
