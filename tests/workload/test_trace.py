"""repro.workload-trace/v1: canonical serialisation round trips."""

import pytest

from repro.workload import (
    TRACE_SCHEMA,
    build_workload,
    list_workloads,
    load_trace,
    save_trace,
    workload_dumps,
    workload_from_data,
    workload_loads,
    workload_to_data,
)


class TestRoundTrip:
    def test_every_builder_round_trips(self):
        for name in list_workloads():
            w = build_workload(name, None, num_chips=4)
            again = workload_loads(workload_dumps(w))
            assert again == w

    def test_dumps_is_byte_stable(self):
        w = build_workload("pipeline", None, num_chips=4)
        text = workload_dumps(w)
        # canonical form: loads -> dumps reproduces the exact bytes
        assert workload_dumps(workload_loads(text)) == text
        assert text.endswith("\n")

    def test_file_round_trip(self, tmp_path):
        w = build_workload("all_to_all", {"compute": 32}, num_chips=3)
        path = tmp_path / "trace.json"
        save_trace(w, path)
        assert load_trace(path) == w
        # a second save writes identical bytes
        blob = path.read_bytes()
        save_trace(load_trace(path), path)
        assert path.read_bytes() == blob

    def test_defaults_omitted_from_document(self):
        w = build_workload("ring_allreduce", None, num_chips=2)
        data = workload_to_data(w)
        assert data["schema"] == TRACE_SCHEMA
        first = data["phases"][0]
        assert "after" not in first       # roots carry no after list
        assert "compute" not in first     # pure-comm phases omit compute


class TestValidation:
    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            workload_from_data({"schema": "nope/v9", "name": "w",
                                "phases": [{"name": "a"}]})

    def test_missing_phases_rejected(self):
        with pytest.raises(ValueError, match="phases"):
            workload_from_data({"schema": TRACE_SCHEMA, "name": "w",
                                "phases": []})

    def test_unknown_phase_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            workload_from_data({
                "schema": TRACE_SCHEMA, "name": "w",
                "phases": [{"name": "a", "pattern": ["shift", 1],
                            "volume": 8, "sizee": 2}],
            })

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            workload_loads("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="object"):
            workload_loads("[1, 2]")

    def test_trace_phases_revalidate_dag(self):
        # the IR's cycle check runs on loaded traces too
        with pytest.raises(ValueError, match="cycle"):
            workload_from_data({
                "schema": TRACE_SCHEMA, "name": "w",
                "phases": [
                    {"name": "a", "pattern": ["shift", 1], "volume": 8,
                     "after": ["b"]},
                    {"name": "b", "pattern": ["shift", 1], "volume": 8,
                     "after": ["a"]},
                ],
            })
