"""Cross-core closed-loop identity: Array == Reference, bit for bit.

The PhasePlan precomputes every event template and destination, so the
cores' RNG streams see route draws only, in the same order — closed-loop
runs must match across cores exactly like open-loop runs do.  The native
core declines plan mode and falls back to the array core's Python loop,
so it matches trivially (asserted anyway).
"""

import math

import pytest

from repro.engine import ExperimentSpec, build_experiment
from repro.engine.spec import build_metrics, point_seed
from repro.network import SimParams
from repro.network.simulator import Simulator
from repro.workload import PhasePlan, workload_for_traffic

RATE = 0.5


def closed_loop_result(spec, core):
    graph, routing, traffic = build_experiment(spec)
    workload = workload_for_traffic(
        spec.workload, dict(spec.workload_opts), traffic
    )
    seed = point_seed(spec, RATE)
    plan = PhasePlan(
        workload, traffic, params=spec.params, rate=RATE, seed=seed
    )
    params = spec.params.scaled(
        seed=seed, warmup_cycles=0, measure_cycles=plan.horizon(),
        drain_cycles=0,
    )
    sim = Simulator(
        graph, routing, traffic, params, core=core,
        probes=build_metrics(spec),
    )
    result = sim.run(RATE, plan=plan)
    assert plan.finished
    return result


def assert_identical(a, b):
    for f in (
        "offered_rate", "effective_offered", "accepted_rate",
        "avg_latency", "packets_measured", "packets_delivered",
        "flits_ejected", "measure_cycles",
    ):
        va, vb = getattr(a, f), getattr(b, f)
        if isinstance(va, float) and math.isnan(va):
            assert math.isnan(vb), f
        else:
            assert va == vb, f
    assert set(a.channels) == set(b.channels)
    for name in a.channels:
        assert a.channels[name].rows == b.channels[name].rows, name
        sa, sb = a.channels[name].summary, b.channels[name].summary
        assert set(sa) == set(sb), name
        for key in sa:
            if isinstance(sa[key], float) and math.isnan(sa[key]):
                assert math.isnan(sb[key]), (name, key)
            else:
                assert sa[key] == sb[key], (name, key)


def mesh_spec(**kw):
    return ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=SimParams(seed=11), rates=[RATE],
        metrics=("cct", "bubble", "overlap"), **kw,
    )


WORKLOADS_UNDER_TEST = [
    ("ring_allreduce", {"volume": 32}),
    ("hierarchical_allreduce", {"volume": 32}),
    ("all_to_all", {"volume": 32, "compute": 40}),
    ("pipeline", {"volume": 16, "microbatches": 2}),
]


@pytest.mark.parametrize(
    "name,opts", WORKLOADS_UNDER_TEST, ids=[w[0] for w in WORKLOADS_UNDER_TEST]
)
def test_array_reference_identical(name, opts):
    spec = mesh_spec(workload=name, workload_opts=opts)
    a = closed_loop_result(spec, "array")
    r = closed_loop_result(spec, "reference")
    assert_identical(a, r)


def test_native_declines_to_array_loop():
    pytest.importorskip("ctypes")
    spec = mesh_spec(
        workload="ring_allreduce", workload_opts={"volume": 32}
    )
    a = closed_loop_result(spec, "array")
    try:
        n = closed_loop_result(spec, "native")
    except (RuntimeError, OSError) as exc:  # kernel unavailable here
        pytest.skip(f"native core unavailable: {exc}")
    assert_identical(a, n)


def switchless_spec(**kw):
    from repro.api.library import switchless_arch

    return ExperimentSpec.create(
        traffic="uniform", traffic_opts={"scope": ("group", 0)},
        params=SimParams(seed=11), rates=[RATE],
        workload="ring_allreduce", workload_opts={"volume": 64},
        metrics=("cct",),
        **switchless_arch(
            preset="radix16_equiv", num_wgroups=2, cgroups_per_wafer=1
        ),
        **kw,
    )


def test_degraded_fabric_identity_and_masking():
    degraded = switchless_spec(
        faults={"model": "random", "link_rate": 0.05, "die_rate": 0.15,
                "seed": 7},
    )
    a = closed_loop_result(degraded, "array")
    r = closed_loop_result(degraded, "reference")
    assert_identical(a, r)
    cct = a.channels["cct"]
    assert cct.summary["masked_packets"] > 0
    h = closed_loop_result(switchless_spec(), "array")
    # dead dies mask traffic; rerouting around failed links costs time
    assert h.channels["cct"].summary["masked_packets"] == 0.0
    assert cct.summary["makespan"] != h.channels["cct"].summary["makespan"]
