"""The workload axis on ExperimentSpec: validation, hashing, round trip."""

import pytest

from repro.engine import ExperimentSpec
from repro.network import SimParams
from repro.workload import build_workload, workload_dumps


def base_spec(**kw):
    return ExperimentSpec.create(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=SimParams(seed=11), rates=[0.5], **kw,
    )


class TestValidation:
    def test_unknown_workload_suggests(self):
        with pytest.raises(ValueError) as err:
            base_spec(workload="ring_alreduce")
        assert "did you mean 'ring_allreduce'" in str(err.value)

    def test_opts_without_name_rejected(self):
        with pytest.raises(ValueError, match="no effect"):
            base_spec(workload_opts={"volume": 64})

    def test_trace_needs_document(self):
        with pytest.raises(ValueError, match="trace"):
            base_spec(workload="trace")

    def test_trace_document_parsed_eagerly(self):
        with pytest.raises(ValueError, match="JSON"):
            base_spec(workload="trace", workload_opts={"trace": "{bad"})

    def test_valid_trace_accepted(self):
        text = workload_dumps(
            build_workload("ring_allreduce", None, num_chips=4)
        )
        spec = base_spec(workload="trace", workload_opts={"trace": text})
        assert spec.workload == "trace"

    def test_with_workload_validates_and_clears(self):
        spec = base_spec().with_workload(
            "ring_allreduce", {"volume": 64}
        )
        assert spec.workload == "ring_allreduce"
        cleared = spec.with_workload("")
        assert cleared.workload == "" and cleared.workload_opts == ()
        with pytest.raises(ValueError):
            spec.with_workload("nope")


class TestHashing:
    def test_workload_changes_config_key(self):
        open_loop = base_spec()
        ring = base_spec(workload="ring_allreduce")
        tree = base_spec(workload="tree_allreduce")
        sized = base_spec(
            workload="ring_allreduce", workload_opts={"volume": 128}
        )
        keys = {s.config_key() for s in (open_loop, ring, tree, sized)}
        assert len(keys) == 4

    def test_open_loop_key_has_no_workload_field(self):
        # the empty axis is omitted from the hashed payload, so v4's
        # open-loop payload *content* matches v3 (only the version
        # bump invalidates old cache entries, by design)
        spec = base_spec()
        data = spec.to_data()
        assert "workload" not in data and "workload_opts" not in data

    def test_describe_tags_closed_loop(self):
        assert "+wl[ring_allreduce]" in base_spec(
            workload="ring_allreduce"
        ).describe()
        assert "+wl[" not in base_spec().describe()


class TestRoundTrip:
    def test_to_from_data(self):
        spec = base_spec(
            workload="pipeline",
            workload_opts={"volume": 16, "microbatches": 2},
            metrics=("cct",),
        )
        again = ExperimentSpec.from_data(spec.to_data())
        assert again == spec
        assert again.config_key() == spec.config_key()

    def test_open_loop_round_trip_unchanged(self):
        spec = base_spec()
        again = ExperimentSpec.from_data(spec.to_data())
        assert again == spec
