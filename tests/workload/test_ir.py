"""Workload IR: Phase/Workload validation, builders, registry."""

import pytest

from repro.workload import (
    WORKLOADS,
    Phase,
    Workload,
    build_workload,
    list_workloads,
    workload_descriptions,
)


class TestPhase:
    def test_shift_phase(self):
        p = Phase(name="a", pattern=("shift", 1), volume=16)
        assert p.communicates

    def test_compute_only_phase(self):
        p = Phase(name="c", pattern=("none",), compute=32)
        assert not p.communicates

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="pattern"):
            Phase(name="a", pattern=("ring",), volume=16)

    def test_shift_needs_offset(self):
        with pytest.raises(ValueError):
            Phase(name="a", pattern=("shift",), volume=16)

    def test_comm_phase_needs_volume(self):
        with pytest.raises(ValueError, match="volume"):
            Phase(name="a", pattern=("shift", 1), volume=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Phase(name="", pattern=("none",))


class TestWorkloadDag:
    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Workload(
                name="w",
                phases=(
                    Phase(name="a", pattern=("shift", 1), volume=8),
                    Phase(name="a", pattern=("shift", 1), volume=8),
                ),
            )

    def test_unknown_dependency_with_suggestion(self):
        with pytest.raises(ValueError) as err:
            Workload(
                name="w",
                phases=(
                    Phase(name="scatter", pattern=("shift", 1), volume=8),
                    Phase(
                        name="gather", pattern=("shift", 1), volume=8,
                        after=("scater",),
                    ),
                ),
            )
        assert "scater" in str(err.value)
        assert "did you mean 'scatter'" in str(err.value)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Workload(
                name="w",
                phases=(
                    Phase(
                        name="a", pattern=("shift", 1), volume=8,
                        after=("a",),
                    ),
                ),
            )

    def test_cycle_rejected_and_named(self):
        with pytest.raises(ValueError) as err:
            Workload(
                name="w",
                phases=(
                    Phase(name="a", pattern=("shift", 1), volume=8,
                          after=("b",)),
                    Phase(name="b", pattern=("shift", 1), volume=8,
                          after=("a",)),
                ),
            )
        msg = str(err.value)
        assert "cycle" in msg and "a" in msg and "b" in msg

    def test_topo_order_respects_dependencies(self):
        w = Workload(
            name="w",
            phases=(
                Phase(name="c", pattern=("none",), compute=4,
                      after=("a", "b")),
                Phase(name="a", pattern=("shift", 1), volume=8),
                Phase(name="b", pattern=("shift", 1), volume=8,
                      after=("a",)),
            ),
        )
        order = w.topo_order()
        idx = w.phase_index()
        pos = {i: n for n, i in enumerate(order)}
        assert pos[idx["a"]] < pos[idx["b"]] < pos[idx["c"]]


class TestBuilders:
    def test_registry_lists_all_builders(self):
        names = list_workloads()
        assert {
            "ring_allreduce", "tree_allreduce", "hierarchical_allreduce",
            "all_to_all", "pipeline",
        } <= set(names)
        descs = workload_descriptions()
        assert set(descs) == set(WORKLOADS)
        assert all(descs.values())

    def test_ring_allreduce_phase_count(self):
        for n in (2, 3, 5, 8):
            w = build_workload("ring_allreduce", None, num_chips=n)
            assert w.num_phases == 2 * (n - 1)

    def test_all_builders_build_at_various_sizes(self):
        for name in list_workloads():
            for n in (2, 3, 4, 7):
                w = build_workload(name, None, num_chips=n)
                assert w.num_phases >= 1
                w.topo_order()  # DAG is valid

    def test_all_to_all_has_compute_gap(self):
        w = build_workload("all_to_all", {"compute": 50}, num_chips=4)
        assert any(
            p.compute == 50 and not p.communicates for p in w.phases
        )

    def test_pipeline_dependency_frontier(self):
        w = build_workload(
            "pipeline", {"stages": 3, "microbatches": 2}, num_chips=4
        )
        idx = w.phase_index()
        assert set(w.phases[idx["s1b1"]].after) == {"s0b1", "s1b0"}

    def test_unknown_name_suggests(self):
        with pytest.raises(ValueError) as err:
            build_workload("ring_alreduce", None, num_chips=4)
        assert "did you mean" in str(err.value)

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            build_workload(
                "ring_allreduce", {"volum": 64}, num_chips=4
            )

    def test_too_few_chips_rejected(self):
        with pytest.raises(ValueError, match="chips"):
            build_workload("ring_allreduce", None, num_chips=1)
