"""CLI entry points."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SMOKE_FILE = str(REPO_ROOT / "scenarios" / "smoke.json")


def test_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out and "Table IV" in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    assert "Switch-less Dragonfly" in capsys.readouterr().out


def test_layout(capsys):
    assert main(["layout"]) == 0
    out = capsys.readouterr().out
    assert "bisection_tbps" in out
    assert "True" in out


def test_verify(capsys):
    assert main(["verify", "--policy", "baseline", "--max-pairs", "300"]) == 0
    out = capsys.readouterr().out
    assert "deadlock-free" in out


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10_local" in out and "smoke" in out
    assert "switchless" in out and "bit_reverse" in out
    assert "small_equiv" in out
    # studies are described and tagged for discovery
    assert "#figure" in out and "#resilience" in out
    assert "Throughput/latency degradation" in out


def test_list_tag_filter(capsys):
    assert main(["list", "--tag", "resilience"]) == 0
    out = capsys.readouterr().out
    assert "resilience_smoke" in out
    assert "fig10_local" not in out


def test_list_unknown_tag(capsys):
    assert main(["list", "--tag", "martian"]) == 1
    assert "no bundled study" in capsys.readouterr().out


def test_run_scenario_file(capsys, tmp_path):
    out_file = tmp_path / "res.json"
    rc = main([
        "run", SMOKE_FILE, "--workers", "1",
        "--cache-dir", str(tmp_path / "cache"), "--out", str(out_file),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "offered" in out and "2D-Mesh" in out
    data = json.loads(out_file.read_text())
    assert data["schema"] == "repro.study-result/v1"


def test_run_bundled_name(capsys, tmp_path):
    rc = main([
        "run", "smoke", "--scale", "quick", "--workers", "1",
        "--csv", str(tmp_path / "res.csv"),
    ])
    assert rc == 0
    assert "max accepted" in capsys.readouterr().out
    header = (tmp_path / "res.csv").read_text().splitlines()[0]
    assert header.startswith("scenario,curve,rate,")


def test_run_unknown_name(capsys):
    assert main(["run", "figuresque"]) == 2
    assert "bundled" in capsys.readouterr().err


def test_run_misspelled_name_suggests(capsys):
    assert main(["run", "fig10_locale"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err
    assert "fig10_local" in err


def test_sweep_misspelled_preset_suggests(capsys):
    assert main(["sweep", "--preset", "small_equif", "--points", "1"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err
    assert "small_equiv" in err


def test_run_missing_file(capsys):
    assert main(["run", "no/such/scenario.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_run_malformed_file(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "martian/v7"}')
    assert main(["run", str(bad)]) == 2
    assert "martian/v7" in capsys.readouterr().err


def test_cli_run_matches_python_study(capsys, tmp_path):
    """Acceptance: CLI file run == Python Study.run, modulo meta."""
    from repro.api import load_study

    out_file = tmp_path / "cli.json"
    assert main(["run", SMOKE_FILE, "--workers", "1",
                 "--out", str(out_file)]) == 0
    capsys.readouterr()
    cli_data = json.loads(out_file.read_text())
    py_data = load_study(SMOKE_FILE).run(workers=1).to_dict()
    cli_data.pop("meta"), py_data.pop("meta")
    assert cli_data == py_data


def test_report_round_trip(capsys, tmp_path):
    out_file = tmp_path / "res.json"
    assert main(["run", SMOKE_FILE, "--workers", "1",
                 "--out", str(out_file)]) == 0
    capsys.readouterr()
    csv_file = tmp_path / "res.csv"
    assert main(["report", str(out_file), "--csv", str(csv_file)]) == 0
    out = capsys.readouterr().out
    assert "2D-Mesh" in out
    assert csv_file.read_text().count("\n") >= 3


def test_report_missing_file(capsys, tmp_path):
    assert main(["report", str(tmp_path / "nope.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_compare_smoke(capsys):
    rc = main([
        "compare", "--arch", "switchless", "--scope", "local",
        "--points", "2", "--max-rate", "0.4",
        "--warmup", "100", "--measure", "250",
    ])
    assert rc == 0
    assert "offered" in capsys.readouterr().out


def test_compare_rejects_unknown_arch(capsys):
    assert main(["compare", "--arch", "torus9d", "--points", "1"]) == 2
    assert "unknown architecture" in capsys.readouterr().err


def test_sweep_smoke(capsys):
    rc = main([
        "sweep", "--arch", "switchless", "--scope", "local",
        "--points", "2", "--max-rate", "0.4",
        "--warmup", "100", "--measure", "250",
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "offered" in captured.out
    assert "deprecated" in captured.err


def test_sweep_preset_flag(capsys):
    rc = main([
        "sweep", "--arch", "switchless", "--scope", "local",
        "--preset", "radix8_equiv",
        "--points", "2", "--max-rate", "0.4",
        "--warmup", "100", "--measure", "250",
    ])
    assert rc == 0
    assert "radix8_equiv" in capsys.readouterr().out


def test_sweep_bad_preset(capsys):
    assert main(["sweep", "--preset", "bogus", "--points", "1"]) == 2
    assert "available" in capsys.readouterr().err


def test_resilience_smoke(capsys, tmp_path):
    out_file = tmp_path / "res.json"
    rc = main([
        "resilience", "--smoke", "--workers", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--out", str(out_file), "--max-pairs", "100",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "deadlock-free" in out          # per-instance verification ran
    assert "resilience report" in out      # retention report rendered
    assert "retention" in out
    data = json.loads(out_file.read_text())
    assert data["schema"] == "repro.study-result/v1"
    assert [s["name"] for s in data["scenarios"]] == ["fail-0", "fail-0.08"]


def test_resilience_custom_axis(capsys, tmp_path):
    rc = main([
        "resilience", "--arch", "switchless",
        "--failure-rates", "0,0.05", "--points", "2", "--max-rate", "0.3",
        "--preset", "radix8_equiv", "--warmup", "80", "--measure", "200",
        "--workers", "1", "--no-verify",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fail-0.05" in out
    assert "deadlock-free" not in out  # verification skipped


def test_resilience_rejects_unknown_arch(capsys):
    assert main(["resilience", "--arch", "torus9d"]) == 2
    assert "unknown architecture" in capsys.readouterr().err


def test_resilience_rejects_yield_model_for_dragonfly(capsys):
    assert main([
        "resilience", "--model", "yield",
        "--arch", "switchless,dragonfly",
    ]) == 2
    assert "wafer" in capsys.readouterr().err


def test_resilience_forwards_routing_mode(capsys, tmp_path):
    out_file = tmp_path / "res.json"
    rc = main([
        "resilience", "--arch", "switchless", "--routing", "valiant",
        "--failure-rates", "0,0.05", "--points", "1", "--max-rate", "0.2",
        "--preset", "radix8_equiv", "--warmup", "80", "--measure", "200",
        "--workers", "1", "--max-pairs", "60", "--out", str(out_file),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "deadlock-free" in out
    data = json.loads(out_file.read_text())
    assert data["scenarios"][0]["curves"][0]["label"] == "SW-less"


def test_resilience_rejects_bad_rate_list(capsys):
    assert main(["resilience", "--failure-rates", "0,zap"]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
