"""CLI entry points."""

import pytest

from repro.cli import main


def test_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out and "Table IV" in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    assert "Switch-less Dragonfly" in capsys.readouterr().out


def test_layout(capsys):
    assert main(["layout"]) == 0
    out = capsys.readouterr().out
    assert "bisection_tbps" in out
    assert "True" in out


def test_verify(capsys):
    assert main(["verify", "--policy", "baseline", "--max-pairs", "300"]) == 0
    out = capsys.readouterr().out
    assert "deadlock-free" in out


def test_sweep_smoke(capsys):
    rc = main([
        "sweep", "--arch", "switchless", "--scope", "local",
        "--points", "2", "--max-rate", "0.4",
        "--warmup", "100", "--measure", "250",
    ])
    assert rc == 0
    assert "offered" in capsys.readouterr().out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
