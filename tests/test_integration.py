"""Cross-module integration: paper claims at test scale.

These are miniature versions of the benchmark experiments, small enough
for the unit-test suite, asserting the load-bearing *relationships* the
paper claims rather than absolute numbers.
"""

import pytest

from repro.analysis import (
    global_throughput_bound,
    local_throughput_bound,
)
from repro.core import SwitchlessConfig, build_switchless
from repro.network import SimParams, Simulator
from repro.routing import DragonflyRouting, SwitchlessRouting
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.traffic import RingAllReduceTraffic, UniformTraffic, WorstCaseTraffic

PARAMS = SimParams(
    warmup_cycles=250, measure_cycles=900, drain_cycles=350, seed=21
)


@pytest.fixture(scope="module")
def sless():
    return build_switchless(SwitchlessConfig.radix8_equiv())


@pytest.fixture(scope="module")
def dfly():
    return build_dragonfly(DragonflyConfig.radix8())


@pytest.mark.slow
class TestThroughputBoundsHold:
    """Full-figure saturation sweeps — heavyweight, so excluded from
    the tier-1 invocation (``pytest -m slow`` runs them)."""

    def test_global_saturation_below_eq2(self, small_switchless):
        """Measured accepted throughput never exceeds the Eq. (2) bound."""
        cfg = small_switchless.cfg
        routing = SwitchlessRouting(small_switchless, "minimal")
        res = Simulator(
            small_switchless.graph, routing,
            UniformTraffic(small_switchless.graph), PARAMS,
        ).run(0.8)
        assert res.accepted_rate <= global_throughput_bound(cfg) * 1.05

    def test_local_saturation_below_eq4(self, small_switchless):
        cfg = small_switchless.cfg
        routing = SwitchlessRouting(small_switchless, "minimal")
        scope = small_switchless.group_nodes(0)
        res = Simulator(
            small_switchless.graph, routing,
            UniformTraffic(small_switchless.graph, scope), PARAMS,
        ).run(1.6)
        assert res.accepted_rate <= local_throughput_bound(cfg) * 1.05


@pytest.mark.slow
class TestMisroutingClaim:
    def test_valiant_beats_minimal_on_worst_case(self, sless):
        """Fig. 13(b) at test scale (full sweep pair: slow)."""
        wc = WorstCaseTraffic(sless.graph, sless.group_nodes,
                              sless.num_wgroups)
        rate = 0.25
        res_min = Simulator(
            sless.graph, SwitchlessRouting(sless, "minimal"), wc, PARAMS
        ).run(rate)
        res_val = Simulator(
            sless.graph, SwitchlessRouting(sless, "valiant"), wc, PARAMS
        ).run(rate)
        assert res_val.accepted_rate > 1.5 * res_min.accepted_rate


class TestAllReduceClaim:
    def test_switch_based_ring_caps_at_one(self, dfly):
        """Sec. III-B4: the single terminal channel caps the ring."""
        ring = RingAllReduceTraffic(dfly.graph, dfly.group_nodes(0))
        res = Simulator(
            dfly.graph, DragonflyRouting(dfly, "minimal", vc_spread=2),
            ring, PARAMS,
        ).run(1.5)
        assert res.accepted_rate <= 1.05
        assert res.accepted_rate > 0.8


class TestRoutingPoliciesAgree:
    def test_policies_deliver_same_traffic(self, small_switchless):
        """Baseline and reduced VC policies at low load must both deliver
        everything with comparable latency (same minimal path lengths)."""
        uni = UniformTraffic(small_switchless.graph)
        out = {}
        for policy in ("baseline", "reduced"):
            routing = SwitchlessRouting(
                small_switchless, "minimal", policy=policy
            )
            out[policy] = Simulator(
                small_switchless.graph, routing, uni, PARAMS
            ).run(0.1)
        assert out["baseline"].delivered_fraction == 1.0
        assert out["reduced"].delivered_fraction == 1.0
        assert out["reduced"].avg_latency == pytest.approx(
            out["baseline"].avg_latency, rel=0.25
        )

    def test_io_router_style_simulates(self, small_switchless_io):
        routing = SwitchlessRouting(
            small_switchless_io, "minimal", policy="reduced"
        )
        res = Simulator(
            small_switchless_io.graph, routing,
            UniformTraffic(small_switchless_io.graph), PARAMS,
        ).run(0.2)
        assert res.delivered_fraction > 0.95
