"""Scenario/Study: validation, JSON round-trip, execution."""

import json

import pytest

from repro.api import Scenario, Study, load_study
from repro.engine import ExperimentSpec
from repro.network import SimParams

PARAMS = SimParams(warmup_cycles=100, measure_cycles=200, drain_cycles=100)


def mesh_spec(label="mesh", **kw):
    base = dict(
        topology="mesh", topology_opts={"dim": 4, "chiplet_dim": 2},
        routing="xy_mesh", traffic="uniform",
        params=PARAMS, rates=[0.2, 0.4], label=label,
    )
    base.update(kw)
    return ExperimentSpec.create(**base)


def tiny_scenario(name="tiny", **kw):
    meta = dict(
        title="Tiny", note="for tests", baseline="mesh",
    )
    meta.update(kw)
    return Scenario(
        name=name, specs=(mesh_spec(), mesh_spec(label="mesh-b")), **meta
    )


class TestValidation:
    def test_needs_specs(self):
        with pytest.raises(ValueError, match="no specs"):
            Scenario(name="empty", specs=())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate curve labels"):
            Scenario(name="dup", specs=(mesh_spec(), mesh_spec()))

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            tiny_scenario(baseline="not-a-curve")

    def test_study_duplicate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario names"):
            Study(name="s", scenarios=(tiny_scenario(), tiny_scenario()))

    def test_stop_after_saturation_positive(self):
        with pytest.raises(ValueError, match="stop_after_saturation"):
            tiny_scenario(stop_after_saturation=0)


class TestRoundTrip:
    def test_scenario_json_round_trip(self, tmp_path):
        scn = tiny_scenario()
        path = scn.save(tmp_path / "scn.json")
        assert Scenario.load(path) == scn

    def test_study_json_round_trip(self, tmp_path):
        study = Study(
            name="study", scenarios=(tiny_scenario(),),
            title="T", description="D",
        )
        path = study.save(tmp_path / "study.json")
        assert Study.load(path) == study

    def test_round_trip_preserves_tuple_options(self, tmp_path):
        # JSON turns the ("group", 0) scope tuple into a list; reloading
        # must freeze it back to the identical spec
        scn = Scenario(
            name="scoped",
            specs=(mesh_spec(traffic_opts={"scope": ("nodes", [0, 1])}),),
        )
        assert Scenario.load(scn.save(tmp_path / "s.json")) == scn

    def test_load_study_accepts_bare_scenario_file(self, tmp_path):
        scn = tiny_scenario()
        path = scn.save(tmp_path / "scn.json")
        study = load_study(path)
        assert isinstance(study, Study)
        assert study.scenarios == (scn,)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9", "name": "x"}))
        with pytest.raises(ValueError, match="other/v9"):
            load_study(path)

    def test_run_then_save_reload_equality(self, tmp_path):
        # load -> run -> save -> reload: the definition is untouched by
        # execution and the reloaded study still runs to the same result
        scn = tiny_scenario()
        path = scn.save(tmp_path / "scn.json")
        study = load_study(path)
        result = study.run(workers=1)
        path2 = study.save(tmp_path / "again.json")
        assert load_study(path2) == study
        again = load_study(path2).run(workers=1)
        assert again.scenarios == result.scenarios


class TestExecution:
    def test_scenario_run_returns_scenario_result(self):
        res = tiny_scenario().run(workers=1)
        assert res.name == "tiny"
        assert res.labels() == ["mesh", "mesh-b"]
        assert res["mesh"].max_accepted > 0

    def test_study_run_groups_and_orders_scenarios(self):
        study = Study(
            name="s2",
            scenarios=(
                tiny_scenario("a"),
                tiny_scenario("b", stop_after_saturation=2),
            ),
        )
        result = study.run(workers=1)
        assert result.names() == ["a", "b"]
        assert result["b"]["mesh"].points  # ran despite different cutoff

    def test_cache_round_trip(self, tmp_path):
        study = Study.wrap(tiny_scenario())
        first = study.run(workers=1, cache=tmp_path / "cache")
        replay = study.run(workers=1, cache=tmp_path / "cache")
        assert replay.scenarios == first.scenarios
        assert replay.meta["cache"]["hits"] == 4  # 2 curves x 2 rates
