"""compare_scenario: arch tokens, preset validation, scope mapping."""

import pytest

from repro.api import compare_scenario
from repro.network import SimParams

PARAMS = SimParams(warmup_cycles=100, measure_cycles=200, drain_cycles=100)


def compare(arches, **kw):
    base = dict(
        pattern="uniform", scope="local", preset="small_equiv",
        rates=[0.2], params=PARAMS,
    )
    base.update(kw)
    return compare_scenario(arches, **base)


def test_one_curve_per_arch_with_baseline():
    scn = compare(["switchless", "dragonfly", "switchless-2b"])
    assert scn.labels() == ["switchless", "dragonfly", "switchless-2b"]
    assert scn.baseline == "switchless"


def test_bandwidth_suffix_sets_mesh_capacity():
    scn = compare(["switchless-4b"])
    spec = scn.specs[0]
    assert dict(spec.topology_opts)["mesh_capacity"] == 4


def test_dragonfly_preset_mapping():
    scn = compare(["dragonfly"], preset="radix8_equiv")
    assert dict(scn.specs[0].topology_opts)["preset"] == "radix8"


def test_unknown_arch_rejected():
    with pytest.raises(ValueError, match="unknown architecture"):
        compare(["torus"])


def test_unknown_preset_lists_alternatives():
    with pytest.raises(ValueError, match="small_equiv"):
        compare(["switchless"], preset="never_heard_of_it")


def test_global_scope_has_no_group_restriction():
    scn = compare(["switchless"], scope="global")
    assert dict(scn.specs[0].traffic_opts) == {}


def test_bad_scope_rejected():
    with pytest.raises(ValueError, match="scope"):
        compare(["switchless"], scope="galactic")


def test_hyphenated_pattern_accepted():
    scn = compare(["switchless"], pattern="bit-reverse")
    assert scn.specs[0].traffic == "bit_reverse"
