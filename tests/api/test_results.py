"""StudyResult hierarchy: summaries, JSON round-trip, CSV golden."""

import pytest

from repro.api import (
    STUDY_RESULT_SCHEMA,
    CurveResult,
    PointResult,
    ScenarioResult,
    StudyResult,
)
from repro.network import SimResult


def point(rate, accepted, latency, delivered=100, measured=100):
    return PointResult(
        rate=rate,
        result=SimResult(
            offered_rate=rate,
            effective_offered=rate,
            accepted_rate=accepted,
            avg_latency=latency,
            p50_latency=latency,
            p99_latency=2 * latency,
            packets_measured=measured,
            packets_delivered=delivered,
            flits_ejected=400,
            active_chips=4,
            measure_cycles=100,
            avg_hops=2.5,
        ),
    )


def curve(label, saturate_last=False):
    points = [point(0.2, 0.2, 10.0), point(0.4, 0.4, 12.0)]
    if saturate_last:
        points.append(point(0.8, 0.4, 90.0, delivered=10, measured=200))
    return CurveResult(label=label, points=tuple(points), spec_key="k-" + label)


def study_result():
    scn = ScenarioResult(
        name="panel",
        title="Panel title",
        note="paper note",
        baseline="base",
        curves=(curve("base"), curve("fast", saturate_last=True)),
    )
    return StudyResult(
        name="study", title="Study title", scenarios=(scn,),
        meta={"elapsed_s": 1.0},
    )


class TestSummaries:
    def test_curve_saturation_summary(self):
        c = curve("c", saturate_last=True)
        assert c.saturation_rate == 0.8
        assert c.max_accepted == 0.4
        assert c.zero_load_latency() == 10.0

    def test_unsaturated_curve_is_inf(self):
        assert curve("c").saturation_rate == float("inf")

    def test_zero_load_latency_skips_saturated_first_point(self):
        import math

        sat = point(0.2, 0.05, 500.0, delivered=10, measured=200)
        ok = point(0.4, 0.4, 12.0)
        c = CurveResult(label="c", points=(sat, ok))
        assert c.zero_load_latency() == 12.0
        all_sat = CurveResult(label="c", points=(sat,))
        assert math.isnan(all_sat.zero_load_latency())
        # the summary carries the NaN (serialised as null/empty cell)
        assert math.isnan(all_sat.summary()["zero_load_latency"])

    def test_scenario_summary_vs_baseline(self):
        rows = study_result()["panel"].summary()
        by_label = {r["label"]: r for r in rows}
        assert by_label["fast"]["vs_baseline"] == pytest.approx(1.0)

    def test_curve_lookup_error_names_alternatives(self):
        with pytest.raises(KeyError, match="base"):
            study_result()["panel"].curve("nope")
        with pytest.raises(KeyError, match="panel"):
            study_result().scenario("nope")


class TestSerialisation:
    def test_json_round_trip(self):
        res = study_result()
        clone = StudyResult.from_json(res.to_json())
        assert clone == res
        assert clone.meta == res.meta

    def test_schema_tagged_and_checked(self):
        data = study_result().to_dict()
        assert data["schema"] == STUDY_RESULT_SCHEMA
        data["schema"] = "bogus/v0"
        with pytest.raises(ValueError, match="bogus/v0"):
            StudyResult.from_dict(data)

    def test_save_load(self, tmp_path):
        res = study_result()
        path = res.save(tmp_path / "res.json")
        assert StudyResult.load(path) == res

    def test_meta_excluded_from_equality(self):
        a, b = study_result(), study_result()
        object.__setattr__(b, "meta", {"elapsed_s": 999.0})
        assert a == b

    def test_render_mentions_titles_and_curves(self):
        text = study_result().render()
        assert "Study title" in text
        assert "Panel title" in text
        assert "# base" in text and "# fast" in text
        assert "paper note" in text


GOLDEN_CSV = """\
scenario,curve,rate,offered,effective_offered,accepted,avg_latency,p50_latency,p99_latency,avg_hops,saturated
panel,base,0.2,0.2,0.2,0.2,10,10,20,2.5,0
panel,base,0.4,0.4,0.4,0.4,12,12,24,2.5,0
panel,fast,0.2,0.2,0.2,0.2,10,10,20,2.5,0
panel,fast,0.4,0.4,0.4,0.4,12,12,24,2.5,0
panel,fast,0.8,0.8,0.8,0.4,90,90,180,2.5,1
"""


def test_to_csv_golden():
    assert study_result().to_csv() == GOLDEN_CSV


def test_csv_nan_cells_empty():
    p = point(0.2, 0.0, float("nan"), delivered=0)
    res = StudyResult(
        name="s",
        scenarios=(
            ScenarioResult(
                name="n", curves=(CurveResult(label="c", points=(p,)),)
            ),
        ),
    )
    row = res.to_csv().splitlines()[1].split(",")
    assert row[6] == ""  # avg_latency cell
