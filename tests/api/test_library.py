"""Bundled scenario library: registry, scales, file sync."""

import json
from pathlib import Path

import pytest

from repro.api import Study, build_study, list_library, load_study

REPO_ROOT = Path(__file__).resolve().parents[2]
SCENARIO_DIR = REPO_ROOT / "scenarios"

FIGURES = [
    "fig10_intra_cgroup",
    "fig10_local",
    "fig11_global",
    "fig12_scalability",
    "fig13_misrouting",
    "fig14_allreduce",
]

EXTRAS = ["smoke", "resilience", "resilience_smoke"]


def test_library_contains_the_paper_figures():
    names = list_library()
    assert set(FIGURES) <= set(names)
    assert set(EXTRAS) <= set(names)


@pytest.mark.parametrize("name", FIGURES + EXTRAS)
def test_every_study_builds_and_round_trips(name):
    for scale in ("quick", "default", "full"):
        study = build_study(name, scale)
        assert study.num_specs() > 0
        clone = Study.from_data(json.loads(json.dumps(study.to_data())))
        assert clone == study


def test_unknown_study_lists_alternatives():
    with pytest.raises(ValueError, match="fig10_local"):
        build_study("fig99")


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="scale"):
        build_study("smoke", scale="enormous")


def test_figures_are_tagged_for_discovery():
    for name in FIGURES:
        assert build_study(name, "quick").has_tag("figure")
    assert build_study("resilience", "quick").has_tag("resilience")
    assert build_study("smoke", "quick").has_tag("smoke")


@pytest.mark.parametrize("name", FIGURES + EXTRAS)
def test_bundled_files_match_library(name):
    """scenarios/*.json are the default-scale library, committed.

    Regenerate with: python -m repro.api.library scenarios
    """
    path = SCENARIO_DIR / f"{name}.json"
    assert path.exists(), f"missing {path}; regenerate the scenario files"
    assert load_study(path) == build_study(name, scale="default")


def test_quick_scale_thins_the_campaign():
    quick = build_study("fig10_local", "quick")
    default = build_study("fig10_local", "default")
    assert len(quick.scenarios) < len(default.scenarios)
    assert sum(
        len(s.rates) for scn in quick.scenarios for s in scn.specs
    ) < sum(len(s.rates) for scn in default.scenarios for s in scn.specs)


def test_smoke_study_runs_fast():
    result = build_study("smoke", "quick").run(workers=1)
    scn = result["mesh-vs-switch"]
    assert set(scn.labels()) == {"Switch", "2D-Mesh"}
    for c in scn:
        assert c.max_accepted > 0
