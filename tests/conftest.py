"""Shared fixtures: small systems built once per session."""

from __future__ import annotations

import pytest

from repro.core import SwitchlessConfig, build_switchless
from repro.network import SimParams
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly


@pytest.fixture(scope="session")
def tiny_switchless():
    """3x3-mesh, 9-W-group system (324 nodes) — fast structural checks."""
    return build_switchless(SwitchlessConfig.radix8_equiv())


@pytest.fixture(scope="session")
def small_switchless():
    """4x4-mesh, 9-W-group system (576 nodes) — the CI-scale twin of the
    radix-16 experiment."""
    return build_switchless(SwitchlessConfig.small_equiv())


@pytest.fixture(scope="session")
def small_switchless_io():
    """IO-router-style counterpart of small_switchless."""
    return build_switchless(
        SwitchlessConfig.small_equiv(cgroup_style="io-router")
    )


@pytest.fixture(scope="session")
def radix8_dragonfly():
    """Switch-based Dragonfly, 9 groups / 72 chips."""
    return build_dragonfly(DragonflyConfig.radix8())


@pytest.fixture()
def fast_params():
    """Short simulation schedule for tests."""
    return SimParams(
        warmup_cycles=200, measure_cycles=800, drain_cycles=300, seed=7
    )
