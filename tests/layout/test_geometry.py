"""Geometry primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Rect, fits_in_circle, no_overlaps


class TestRect:
    def test_basic_props(self):
        r = Rect("a", 1, 2, 3, 4)
        assert r.x2 == 4 and r.y2 == 6
        assert r.area == 12
        assert r.center == (2.5, 4.0)

    def test_overlap_detection(self):
        a = Rect("a", 0, 0, 2, 2)
        assert a.overlaps(Rect("b", 1, 1, 2, 2))
        assert not a.overlaps(Rect("c", 2, 0, 2, 2))  # touching edges
        assert not a.overlaps(Rect("d", 5, 5, 1, 1))

    @given(
        x=st.floats(-10, 10), y=st.floats(-10, 10),
        w=st.floats(0.1, 5), h=st.floats(0.1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_overlap_symmetric(self, x, y, w, h):
        a = Rect("a", 0, 0, 3, 3)
        b = Rect("b", x, y, w, h)
        assert a.overlaps(b) == b.overlaps(a)


def test_no_overlaps():
    rects = [Rect(str(i), 3 * i, 0, 2, 2) for i in range(4)]
    assert no_overlaps(rects)
    rects.append(Rect("x", 0.5, 0.5, 1, 1))
    assert not no_overlaps(rects)


def test_fits_in_circle():
    inner = [Rect("a", -1, -1, 2, 2)]
    assert fits_in_circle(inner, diameter_mm=4, center=(0, 0))
    assert not fits_in_circle(inner, diameter_mm=2, center=(0, 0))
