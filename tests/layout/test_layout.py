"""Fig. 9 C-group floorplan: the paper's feasibility numbers."""

import pytest

from repro.layout import (
    SERDES_112G_LR,
    UCIE_X64,
    CGroupLayoutSpec,
    plan_cgroup_layout,
)


class TestPaperNumbers:
    def test_default_layout_matches_fig9(self):
        layout = plan_cgroup_layout()
        s = layout.summary()
        assert s["chiplets"] == 16
        # "a C-group of ~60mm x 60mm"
        assert 55 <= s["edge_mm"] <= 70
        # "4096 Gb/s/port intra-C-group" (two x64 UCIe PHYs)
        assert s["onwafer_channel_gbps"] == 4096
        # "896 Gb/s/port long-reach" (8 lanes of 112G)
        assert s["offwafer_channel_gbps"] == 896
        # "leads out 1536 pairs of differential ports"
        assert s["offwafer_diff_pairs"] == 1536
        # "total bisection ... 12TB/s"
        assert s["bisection_tbps"] == pytest.approx(12.3, abs=0.5)
        # "aggregation bandwidth ... 20.9TB/s"
        assert s["aggregate_tbps"] == pytest.approx(21.0, abs=1.0)
        # "~5500 IOs including power and ground"
        assert 5000 <= s["io_pads"] <= 6000

    def test_default_layout_feasible(self):
        assert plan_cgroup_layout().feasible()

    def test_beats_highest_end_switches(self):
        """Sec. V-A1: 'much larger than the highest-end switches'
        (12.8 Tb/s = 1.6 TB/s)."""
        layout = plan_cgroup_layout()
        assert layout.bisection_tbps > 1.6
        assert layout.aggregate_tbps > 1.6


class TestFeasibilityChecks:
    def test_oversized_chiplets_infeasible(self):
        spec = CGroupLayoutSpec(chiplets_per_side=8, chiplet_mm=30.0)
        layout = plan_cgroup_layout(spec)
        assert not layout.feasible()

    def test_placement_has_no_overlaps(self):
        from repro.layout import no_overlaps

        layout = plan_cgroup_layout()
        assert no_overlaps(layout.chiplets)
        assert no_overlaps(layout.chiplets + layout.conversion_modules)


class TestPhySpecs:
    def test_ucie_module(self):
        assert UCIE_X64.bandwidth_gbps == 2048
        assert UCIE_X64.modules_for_bandwidth(4096) == 2

    def test_serdes(self):
        assert SERDES_112G_LR.bandwidth_gbps == 896
        assert SERDES_112G_LR.differential
