"""Table II: hop cost comparison."""

from repro.analysis import TABLE_II, format_table_ii


def bench_table2(benchmark):
    table = benchmark(format_table_ii)
    print()
    print(table)
    assert TABLE_II["Hg"].energy_pj_per_bit == 20.0
    assert TABLE_II["Hsr"].energy_pj_per_bit == 2.0
    assert TABLE_II["Hon-chip"].energy_pj_per_bit == 0.1
