"""Engine micro-benchmark: serial vs. parallel sweep wall-clock.

Runs a Fig. 10(c)-style local uniform sweep (SW-based vs SW-less vs
SW-less-2B) through :func:`repro.engine.run_experiments` twice — once
with ``workers=1`` (serial in-process path) and once with a pool — and
records both wall-clocks, the speedup, and a cache-replay pass to
``BENCH_engine.json``.

Usage::

    python benchmarks/bench_engine_speedup.py [--workers N]
        [--scale quick|default|full] [--out BENCH_engine.json]

On a multi-core machine the parallel pass is expected to be >= 2x the
serial one.  Worker counts are clamped to ``os.cpu_count()`` — on a
single-CPU host the "parallel" pass therefore runs the serial path and
the honest speedup is ~1.0 (the JSON records ``cpu_count`` and the
clamped ``workers`` so readers can tell).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ExperimentSpec, ResultCache, run_experiments  # noqa: E402
from repro.network import SimParams  # noqa: E402

SCALES = {
    "quick": SimParams(warmup_cycles=150, measure_cycles=400,
                       drain_cycles=200, seed=11),
    "default": SimParams(warmup_cycles=300, measure_cycles=900,
                         drain_cycles=400, seed=11),
    "full": SimParams(seed=11),
}


def fig10_specs(params: SimParams) -> list:
    """The Fig. 10(c) local-uniform trio at 2 W-groups.

    Spelled out rather than imported from conftest so this script stays
    runnable with only numpy installed (conftest pulls in pytest).
    """
    rates = [0.3, 0.6, 0.9, 1.2, 1.6, 2.0]
    sless = {"preset": "radix16_equiv", "num_wgroups": 2,
             "cgroups_per_wafer": 1}
    arches = {
        "SW-based": {
            "topology": "dragonfly",
            "topology_opts": {"preset": "radix16", "g": 2},
            "routing": "dragonfly",
            "routing_opts": {"mode": "minimal", "vc_spread": 2},
        },
        "SW-less": {
            "topology": "switchless", "topology_opts": sless,
            "routing": "switchless", "routing_opts": {"mode": "minimal"},
        },
        "SW-less-2B": {
            "topology": "switchless",
            "topology_opts": {**sless, "mesh_capacity": 2},
            "routing": "switchless", "routing_opts": {"mode": "minimal"},
        },
    }
    return [
        ExperimentSpec.create(
            traffic="uniform", traffic_opts={"scope": ("group", 0)},
            params=params, rates=rates, label=label, **arch,
        )
        for label, arch in arches.items()
    ]


def timed_run(specs, **kwargs):
    t0 = time.perf_counter()
    sweeps = run_experiments(specs, **kwargs)
    return time.perf_counter() - t0, sweeps


def sweeps_equal(a, b) -> bool:
    """Point-wise equality via to_dict(), which maps NaN to None —
    plain ``==`` on SimResult is false for identical runs whose
    saturated points delivered no packets (NaN latencies)."""
    return a.rates == b.rates and len(a.results) == len(b.results) and all(
        x.to_dict() == y.to_dict() for x, y in zip(a.results, b.results)
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int,
                    default=min(4, os.cpu_count() or 1),
                    help="pool size for the parallel pass "
                         "(clamped to the CPU count)")
    ap.add_argument("--scale", choices=sorted(SCALES), default="default")
    ap.add_argument("--out", default="BENCH_engine.json")
    args = ap.parse_args(argv)

    # oversubscribing a CPU-bound pool only measures pool overhead and
    # reads as a bogus slowdown; keep the reported worker count honest
    cpus = os.cpu_count() or 1
    requested = args.workers
    args.workers = max(1, min(requested, cpus))
    if args.workers != requested:
        print(f"clamped --workers {requested} -> {args.workers} "
              f"({cpus} CPU(s))")

    specs = fig10_specs(SCALES[args.scale])
    n_points = sum(len(s.rates) for s in specs)
    print(f"{len(specs)} specs / {n_points} points, scale={args.scale}")

    # warm the per-process topology/routing build caches (and the
    # native-kernel compilation cache) so the timed passes compare
    # sweep execution, not one-off setup costs
    timed_run(specs, workers=1)

    t_serial, serial = timed_run(specs, workers=1)
    print(f"serial   (workers=1): {t_serial:8.2f}s")
    t_par, parallel = timed_run(specs, workers=args.workers)
    print(f"parallel (workers={args.workers}): {t_par:8.2f}s "
          f"-> speedup {t_serial / t_par:.2f}x")

    identical = all(
        sweeps_equal(a, b) for a, b in zip(serial, parallel)
    )
    print(f"serial/parallel results identical: {identical}")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t_fill, _ = timed_run(specs, workers=1, cache=cache)
        cache2 = ResultCache(tmp)
        stored = len(cache2)
        t_replay, replay = timed_run(specs, workers=1, cache=cache2)
        # a clean replay writes no new entries (nothing was simulated)
        # and reproduces the uncached sweeps exactly
        replay_ok = (
            len(cache2) == stored
            and all(sweeps_equal(a, b) for a, b in zip(serial, replay))
        )
    print(f"cache replay: {t_replay:.3f}s for {cache2.hits} point(s), "
          f"clean={replay_ok}")

    payload = {
        "benchmark": "engine_speedup_fig10_local_uniform",
        "scale": args.scale,
        "specs": len(specs),
        "points": n_points,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workers": args.workers,
        "workers_requested": requested,
        "serial_seconds": round(t_serial, 3),
        "parallel_seconds": round(t_par, 3),
        "speedup": round(t_serial / t_par, 3),
        "results_identical": identical,
        "cache_fill_seconds": round(t_fill, 3),
        "cache_replay_seconds": round(t_replay, 3),
        "cache_replay_clean": replay_ok,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if identical and replay_ok else 1


if __name__ == "__main__":
    sys.exit(main())
