"""Ablation A1 (DESIGN.md): VC policies and C-group styles.

Not a paper figure: quantifies the design choices behind Sec. IV —
baseline (4-VC) vs reduced (3-VC) schemes and mesh vs IO-router C-groups
— by measured saturation under uniform traffic, plus the deadlock
verdicts of the CDG checker (the reproduction's Sec. IV-B finding).
"""

from conftest import once, pick_rates, print_figure, run_curves, sim_params

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import SwitchlessRouting, verify_deadlock_free
from repro.traffic import UniformTraffic


def _run():
    params = sim_params()
    mesh_sys = build_switchless(SwitchlessConfig.small_equiv())
    io_sys = build_switchless(
        SwitchlessConfig.small_equiv(cgroup_style="io-router")
    )
    configs = {
        "mesh / baseline (4 VC)": (
            mesh_sys.graph,
            SwitchlessRouting(mesh_sys, "minimal", policy="baseline"),
            UniformTraffic(mesh_sys.graph),
        ),
        "mesh / reduced (3 VC)": (
            mesh_sys.graph,
            SwitchlessRouting(mesh_sys, "minimal", policy="reduced"),
            UniformTraffic(mesh_sys.graph),
        ),
        "io-router / reduced (3 VC)": (
            io_sys.graph,
            SwitchlessRouting(io_sys, "minimal", policy="reduced"),
            UniformTraffic(io_sys.graph),
        ),
    }
    sweeps = run_curves(
        configs, pick_rates([0.15, 0.3, 0.45, 0.6]), params=params
    )
    verdicts = {}
    for label, (graph, routing, _t) in configs.items():
        verdicts[label] = verify_deadlock_free(
            graph, routing, max_pairs=1200
        ).acyclic
    return sweeps, verdicts


def bench_ablation_vc_schemes(benchmark):
    sweeps, verdicts = once(benchmark, _run)
    print_figure(
        "Ablation A1: VC schemes and C-group styles", sweeps,
        "reduced saves one VC; CDG verdicts quantify its safety domain",
    )
    print("CDG acyclic verdicts:")
    for label, ok in verdicts.items():
        print(f"  {label:28s} {'ACYCLIC' if ok else 'CYCLIC (documented)'}")
    assert verdicts["mesh / baseline (4 VC)"]
    assert verdicts["io-router / reduced (3 VC)"]
    assert not verdicts["mesh / reduced (3 VC)"]
