"""Closed-loop workload benchmark: collective completion times.

Runs the bundled ``workload`` study — ring vs tree vs hierarchical
allreduce schedules on the switch-less W-group, plus the same ring
collective on a degraded wafer — and records every completion-time
summary (makespan, max phase CCT, bubble/overlap fractions, masked
packets) to ``BENCH_workload.json``.

Sanity gates (exit non-zero on breach):

* every closed-loop point drains (the driver raises otherwise) and
  delivers all unmasked packets;
* raising the pacing bandwidth never slows a schedule down;
* the hierarchical schedule beats the flat ring at equal volume (fewer
  serialized phases over the same chips);
* the degraded wafer masks packets and changes the ring's completion
  time relative to the healthy fabric.

Usage::

    python benchmarks/bench_workload.py [--scale quick|default|full]
        [--workers N] [--out BENCH_workload.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import build_study  # noqa: E402


def curve_series(curve) -> list:
    series = []
    for point in curve.points:
        channels = point.result.channels
        cct = channels["cct"].summary
        entry = {
            "rate": point.rate,
            "makespan": cct["makespan"],
            "avg_cct": cct["avg_cct"],
            "max_cct": cct["max_cct"],
            "phases": cct["phases"],
            "masked_packets": cct["masked_packets"],
            "delivered": point.result.packets_delivered,
        }
        if "bubble" in channels:
            entry["bubble_fraction"] = (
                channels["bubble"].summary["bubble_fraction"]
            )
        if "overlap" in channels:
            entry["overlap_fraction"] = (
                channels["overlap"].summary["overlap_fraction"]
            )
        series.append(entry)
    return series


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=("quick", "default", "full"),
                    default="default")
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--out", default="BENCH_workload.json")
    args = ap.parse_args(argv)

    study = build_study("workload", scale=args.scale)
    t0 = time.perf_counter()
    result = study.run(workers=args.workers)
    wall = time.perf_counter() - t0

    schedules = result["schedules"]
    degraded = result["degraded-fabric"]
    data = {
        "benchmark": "workload",
        "scale": args.scale,
        "python": platform.python_version(),
        "wall_seconds": round(wall, 3),
        "schedules": {
            c.label: curve_series(c) for c in schedules.curves
        },
        "degraded": {
            c.label: curve_series(c) for c in degraded.curves
        },
    }

    failures = []
    for scenario in data["schedules"], data["degraded"]:
        for label, series in scenario.items():
            for faster, slower in zip(series[1:], series):
                if faster["makespan"] > slower["makespan"]:
                    failures.append(
                        f"{label}: makespan rose with bandwidth "
                        f"({slower['rate']:g} -> {faster['rate']:g})"
                    )
    ring = data["schedules"]["Ring"]
    hier = data["schedules"]["Hierarchical"]
    for r, h in zip(ring, hier):
        if not h["makespan"] < r["makespan"]:
            failures.append(
                f"hierarchical not faster than ring at rate {r['rate']:g}"
            )
    healthy = data["degraded"]["Healthy"]
    broken = data["degraded"]["Degraded"]
    for hp, dp in zip(healthy, broken):
        if dp["masked_packets"] <= 0:
            failures.append(
                f"degraded fabric masked nothing at rate {dp['rate']:g}"
            )
        if dp["makespan"] == hp["makespan"]:
            failures.append(
                f"degraded makespan identical to healthy at rate "
                f"{dp['rate']:g}"
            )
    data["gates_ok"] = not failures
    data["gate_failures"] = failures

    Path(args.out).write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out} ({wall:.1f}s, scale={args.scale})")
    for label, series in data["schedules"].items():
        spans = ", ".join(
            f"{p['rate']:g}->{p['makespan']:.0f}cyc" for p in series
        )
        print(f"  {label:>14s}: {spans}")
    for label, series in data["degraded"].items():
        spans = ", ".join(
            f"{p['rate']:g}->{p['makespan']:.0f}cyc"
            f"(masked {p['masked_packets']:.0f})" for p in series
        )
        print(f"  {label:>14s}: {spans}")
    if failures:
        print("GATE FAILURES:", *failures, sep="\n  ")
        return 1
    print("all completion-time gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
