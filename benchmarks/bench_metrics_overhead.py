"""Probe-layer overhead benchmark: probe-off vs baseline, probe-on cost.

The observability layer's contract is that *not* using it is free: a
probe-off run must be bit-identical to — and within noise as fast as —
the pre-metrics simulator (the PR 4 code path, whose timings on this
workload are the ``BENCH_simcore.json`` numbers; PRs since then did not
touch the hot loop).  This benchmark measures, on the same Fig. 10(c)
local-uniform workload ``bench_simcore.py`` times:

* **probe-off** wall-clock per offered load, compared against the
  committed baseline file when it matches the current scale/platform
  (gate: median ratio <= 1.0 + ``--tolerance``, default 3%);
* **probe-on** wall-clock with the full built-in probe bundle,
  reported honestly as a ratio over probe-off (the post-run decode is
  *expected* to cost something — it walks every route);
* a hard correctness gate at every point: the probe-on run's
  ``SimResult`` aggregates must equal the probe-off run's bit for bit
  (probes may never perturb the simulation).

Usage::

    python benchmarks/bench_metrics_overhead.py
        [--scale quick|default|full] [--reps 3]
        [--baseline BENCH_simcore.json] [--tolerance 0.03]
        [--out BENCH_metrics.json]

The committed ``BENCH_metrics.json`` is produced with ``--scale full``
(the scale of the committed baseline); CI runs ``--scale quick``, where
no stored baseline applies and the bit-identity + reported ratios are
the gate.  Exit code 1 on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.library import sim_params, switchless_arch  # noqa: E402
from repro.engine.spec import ExperimentSpec, build_experiment  # noqa: E402
from repro.metrics import list_probes  # noqa: E402
from repro.network import Simulator, native_available  # noqa: E402

#: same points as bench_simcore.py: low, mid, high, past saturation.
RATE_POINTS = {"low": 0.3, "mid": 0.6, "high": 0.9, "sat": 1.2}

#: the full built-in bundle — the honest worst case for probe-on cost.
PROBE_BUNDLE = [
    "link_util", "vc_util", "latency_hist", "timeseries", "misroute",
    "ejection_fairness",
]


def workload_spec(params) -> ExperimentSpec:
    return ExperimentSpec.create(
        traffic="uniform",
        traffic_opts={"scope": ("group", 0)},
        params=params,
        rates=sorted(RATE_POINTS.values()),
        label="SW-less",
        **switchless_arch(
            preset="radix16_equiv", num_wgroups=2, cgroups_per_wafer=1
        ),
    )


def timed_run(graph, routing, traffic, params, rate, core, probes=None):
    sim = Simulator(graph, routing, traffic, params, core=core,
                    probes=probes)
    t0 = time.perf_counter()
    res = sim.run(rate)
    return time.perf_counter() - t0, res


def best_time(graph, routing, traffic, params, rate, core, reps,
              probes=None):
    """Best-of-``reps`` wall-clock: the standard de-noising statistic
    for single-machine micro-benchmarks (scheduler preemption and
    cache pollution only ever add time, never subtract it)."""
    times, last = [], None
    for _ in range(reps):
        dt, last = timed_run(
            graph, routing, traffic, params, rate, core, probes=probes
        )
        times.append(dt)
    return min(times), last


def load_baseline(path: Path, scale: str):
    """Per-rate baseline seconds from BENCH_simcore.json, when usable.

    Usable means: the file exists, was produced at the same scale on
    the same platform, and carries timings for the core we default to.
    Anything else returns ``None`` with a reason — the gate is then
    skipped (and said so in the output) rather than compared against
    numbers from a different machine.
    """
    if not path.is_file():
        return None, f"no baseline file at {path}"
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return None, f"unreadable baseline file {path}"
    if data.get("scale") != scale:
        return None, (
            f"baseline scale {data.get('scale')!r} != current {scale!r}"
        )
    if data.get("platform") != platform.platform():
        return None, "baseline was recorded on a different platform"
    core = "native" if native_available() else "array"
    key = f"{core}_seconds"
    per_rate = {}
    for row in data.get("timing", ()):
        if key in row:
            per_rate[float(row["rate"])] = float(row[key])
    if len(per_rate) != len(RATE_POINTS):
        return None, f"baseline lacks {key} timings"
    return per_rate, f"BENCH_simcore.json {core} timings ({scale} scale)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="full",
                        choices=("quick", "default", "full"))
    parser.add_argument("--reps", type=int, default=5,
                        help="runs per point; the best (min) is reported")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_simcore.json"),
        help="pre-metrics timing baseline (BENCH_simcore.json)",
    )
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="allowed probe-off overhead vs baseline")
    parser.add_argument("--out", default="BENCH_metrics.json")
    args = parser.parse_args(argv)

    core = "native" if native_available() else "array"
    params = sim_params(args.scale, seed=11)
    spec = workload_spec(params)
    graph, routing, traffic = build_experiment(spec)
    # warm the route memo so neither side pays first-run resolution
    timed_run(graph, routing, traffic, params, RATE_POINTS["low"], core)

    baseline, baseline_note = load_baseline(
        Path(args.baseline), args.scale
    )

    rows = []
    identical = True
    for label, rate in RATE_POINTS.items():
        t_off, res_off = best_time(
            graph, routing, traffic, params, rate, core, args.reps
        )
        t_on, res_on = best_time(
            graph, routing, traffic, params, rate, core, args.reps,
            probes=list(PROBE_BUNDLE),
        )
        d_on = res_on.to_dict()
        d_on.pop("channels", None)
        point_identical = d_on == res_off.to_dict()
        identical = identical and point_identical
        row = {
            "label": label,
            "rate": rate,
            "probe_off_seconds": round(t_off, 4),
            "probe_on_seconds": round(t_on, 4),
            "probe_on_ratio": round(t_on / t_off, 3) if t_off else None,
            "probe_on_identical_aggregates": point_identical,
        }
        if baseline:
            row["baseline_seconds"] = round(baseline[rate], 4)
            row["vs_baseline"] = round(t_off / baseline[rate], 3)
        rows.append(row)
        print(
            f"{label:5s} rate={rate:.1f}  off={t_off:.3f}s  "
            f"on={t_on:.3f}s ({row['probe_on_ratio']}x)"
            + (f"  vs baseline {row['vs_baseline']}x" if baseline else "")
        )

    report = {
        "benchmark": "metrics_probe_overhead",
        "workload": "fig10_local_uniform (bench_simcore workload)",
        "scale": args.scale,
        "core": core,
        "probe_bundle": PROBE_BUNDLE,
        "registered_probes": list_probes(),
        "reps": args.reps,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "baseline": baseline_note,
        "timing_statistic": (
            f"best of {args.reps} (baseline was one post-warmup run; "
            "noise only ever adds time, so best-of-N vs that single "
            "sample is the least-noise comparison available)"
        ),
        "timing": rows,
        "probe_on_aggregates_identical": identical,
    }

    ok = identical
    if not identical:
        print("FAIL: probe-on run diverged from probe-off aggregates")
    if baseline:
        ratios = [r["vs_baseline"] for r in rows]
        med = statistics.median(ratios)
        report["probe_off_vs_baseline_median"] = round(med, 3)
        report["probe_off_gate_tolerance"] = args.tolerance
        gate_ok = med <= 1.0 + args.tolerance
        report["probe_off_gate_passed"] = gate_ok
        print(
            f"probe-off vs baseline: median {med:.3f}x "
            f"(gate <= {1.0 + args.tolerance:.2f}x: "
            f"{'ok' if gate_ok else 'FAIL'})"
        )
        ok = ok and gate_ok
    else:
        report["probe_off_gate_passed"] = None
        print(f"baseline gate skipped: {baseline_note}")
    on_med = statistics.median(
        r["probe_on_ratio"] for r in rows if r["probe_on_ratio"]
    )
    report["probe_on_ratio_median"] = round(on_med, 3)
    print(f"probe-on cost (full bundle): median {on_med:.2f}x probe-off")

    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
