"""Fig. 10(a-b): intra-C-group performance, 2D mesh vs switch.

Paper setup: the radix-16-equivalent C-group (a 4x4 grid of on-chip
routers = 2x2 chiplets of 2x2) against 4 chips on a non-blocking switch.
Paper result: mesh saturates at ~3.0 (uniform) / ~2.0 (bit-reverse)
flits/cycle/chip, the switch at ~1.0 — "over 3x more".

Runs the bundled ``fig10_intra_cgroup`` study of the scenario library.
"""

from conftest import once, run_library_study


def bench_fig10_intra_cgroup(benchmark):
    result = once(benchmark, lambda: run_library_study("fig10_intra_cgroup"))
    uni = result["uniform"]
    rev = result["bit-reverse"]
    # shape assertions: who wins and by roughly what factor
    assert uni["2D-Mesh"].max_accepted > 2.0 * uni["Switch"].max_accepted
    assert rev["2D-Mesh"].max_accepted > 1.4 * rev["Switch"].max_accepted
