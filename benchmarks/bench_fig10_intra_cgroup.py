"""Fig. 10(a-b): intra-C-group performance, 2D mesh vs switch.

Paper setup: the radix-16-equivalent C-group (a 4x4 grid of on-chip
routers = 2x2 chiplets of 2x2) against 4 chips on a non-blocking switch.
Paper result: mesh saturates at ~3.0 (uniform) / ~2.0 (bit-reverse)
flits/cycle/chip, the switch at ~1.0 — "over 3x more".
"""

from conftest import (
    MESH_ARCH,
    SWITCH_ARCH,
    make_spec,
    once,
    print_figure,
    run_spec_curves,
    sim_params,
)


def _curves(traffic, rates, params):
    return run_spec_curves(
        {
            "Switch": make_spec(
                "Switch", traffic=traffic, rates=rates, params=params,
                **SWITCH_ARCH,
            ),
            "2D-Mesh": make_spec(
                "2D-Mesh", traffic=traffic, rates=rates, params=params,
                **MESH_ARCH,
            ),
        },
        stop_after_saturation=2,
    )


def _run():
    params = sim_params()
    uni = _curves("uniform", [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5], params)
    rev = _curves("bit_reverse", [0.4, 0.8, 1.2, 1.6, 2.0, 2.4], params)
    return uni, rev


def bench_fig10_intra_cgroup(benchmark):
    uni, rev = once(benchmark, _run)
    print_figure(
        "Fig. 10(a) intra-C-group: uniform", uni,
        "paper: mesh ~3.0, switch ~1.0 flits/cycle/chip",
    )
    print_figure(
        "Fig. 10(b) intra-C-group: bit-reverse", rev,
        "paper: mesh ~2.0, switch <= 1.0 flits/cycle/chip",
    )
    # shape assertions: who wins and by roughly what factor
    assert uni["2D-Mesh"].max_accepted > 2.0 * uni["Switch"].max_accepted
    assert rev["2D-Mesh"].max_accepted > 1.4 * rev["Switch"].max_accepted
