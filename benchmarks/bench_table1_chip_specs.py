"""Table I: external communication and switching capability."""

from repro.analysis import TABLE_I, format_table_i


def bench_table1(benchmark):
    table = benchmark(format_table_i)
    print()
    print(table)
    by_name = {s.name: s for s in TABLE_I}
    paper = {"NVSwitch": 12.8, "Tofino2": 12.8, "Rosetta": 12.8,
             "H100": 3.6, "EPYC": 4.0, "DOJO D1": 63.0}
    print("paper vs computed (Tb/s):")
    for name, val in paper.items():
        print(f"  {name:10s} paper={val:5.1f} "
              f"computed={by_name[name].throughput_tbps:5.1f}")
