"""Table III: key specifications of nine interconnection networks."""

from repro.analysis import build_table_iii, format_table_iii


def bench_table3(benchmark):
    rows = benchmark(build_table_iii)
    print()
    print(format_table_iii())
    print()
    print("computed vs paper (#switch, #cabinet, #processor, cables K):")
    for row in rows:
        if row.paper is None:
            continue
        sw, cab, proc, cables = row.paper
        print(
            f"  {row.name:30s} computed=({row.num_switches}, "
            f"{row.num_cabinets}, {row.num_processors}, "
            f"{row.cable_count_k:.0f}K)  paper=({sw}, {cab}, {proc}, "
            f"{cables}K)"
        )
