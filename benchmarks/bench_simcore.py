"""Simulator-core micro-benchmark: old vs new serial wall-clock.

Times the pre-PR object-based simulator (the ``reference`` core —
bit-identical results and performance to the original hot loop) against
the struct-of-arrays core that :class:`repro.network.Simulator` now
selects by default (``native`` when a C compiler is available, else the
pure-Python ``array`` core) on the Fig. 10(c) local-uniform workload,
one run per offered load from low load to past saturation.

It also emits the cross-core equivalence report:

* **pinned**: with a pinned injection schedule all cores must produce
  *identical* results (this is the hard gate — exit code 1 on any
  mismatch);
* **rng shift**: run free, the new cores sample the injection process
  as vectorized geometric inter-arrival batches instead of per-cycle
  Bernoulli masks.  The process law is unchanged but the numpy stream
  is consumed differently, so per-seed numbers shift; the report runs
  both cores over several seeds and checks that mean latency (below
  saturation), accepted throughput, and the saturation point stay
  within seed noise.

Since the batched-kernel PR the headline metric is **fleet
points-per-second**: the engine sweep (``run_experiments``) timed
batched (one packed ``sim_run_batch`` call per chunk of rates, shared
route plane, vectorized destination pre-resolution) against the
per-point path, single-threaded so the speedup is pure amortisation +
vectorization, not thread parallelism.  A third section times a full
saturation sweep (cutoff included) both ways, and the batched path
joins the hard equivalence gate: batched sweep results must be
bit-identical to per-point results.

Usage::

    python benchmarks/bench_simcore.py [--scale quick|default|full]
        [--seeds 11,12,13] [--out BENCH_simcore.json]

The committed ``BENCH_simcore.json`` is produced with ``--scale full``
(paper Table IV windows) for the timing section; the equivalence
sections use reduced windows so the whole script stays minutes-free.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.library import sim_params, switchless_arch  # noqa: E402
from repro.engine.executor import run_experiments  # noqa: E402
from repro.engine.spec import ExperimentSpec, build_experiment  # noqa: E402
from repro.network import (  # noqa: E402
    THREADS_ENV,
    Simulator,
    native_available,
)

#: offered loads (flits/cycle/chip): low, mid, high, past saturation
#: for the SW-less W-group (saturation sits near 1.1).
RATE_POINTS = {"low": 0.3, "mid": 0.6, "high": 0.9, "sat": 1.2}

#: the fleet sweep: non-saturating loads only, so the batched and
#: per-point paths simulate the exact same point set (no cutoff).
#: A dense 12-point grid — batching amortizes per-point setup, so the
#: fleet metric is measured where sweeps actually spend their points.
FLEET_RATES = [round(0.05 * i, 2) for i in range(1, 13)]

#: the saturation-sweep grid: past the ~1.1 knee, so the cutoff fires.
SWEEP_RATES = [0.3, 0.6, 0.9, 1.2, 1.5]


def fig10_local_uniform_spec(params) -> ExperimentSpec:
    """The Fig. 10(c) SW-less arch under local uniform traffic."""
    return ExperimentSpec.create(
        traffic="uniform",
        traffic_opts={"scope": ("group", 0)},
        params=params,
        rates=sorted(RATE_POINTS.values()),
        label="SW-less",
        **switchless_arch(
            preset="radix16_equiv", num_wgroups=2, cgroups_per_wafer=1
        ),
    )


def build(spec):
    return build_experiment(spec)


def timed_run(graph, routing, traffic, params, rate, core):
    sim = Simulator(graph, routing, traffic, params, core=core)
    t0 = time.perf_counter()
    res = sim.run(rate)
    return time.perf_counter() - t0, res


def timing_section(scale: str, new_core: str):
    params = sim_params(scale)
    spec = fig10_local_uniform_spec(params)
    graph, routing, traffic = build(spec)
    # warm the routing's shared route memo (and the native-kernel
    # compilation cache) at full measurement scale so the first-timed
    # core doesn't pay one-off costs the others then reuse for free
    for rate in RATE_POINTS.values():
        Simulator(graph, routing, traffic, params).run(rate)
    rows = []
    for label, rate in RATE_POINTS.items():
        row = {"label": label, "rate": rate}
        for core in ("reference", "array", new_core):
            dt, res = timed_run(graph, routing, traffic, params, rate, core)
            row[f"{core}_seconds"] = round(dt, 3)
            row.setdefault("accepted", {})[core] = round(
                res.accepted_rate, 4
            )
        row["speedup"] = round(
            row["reference_seconds"] / row[f"{new_core}_seconds"], 2
        )
        rows.append(row)
        print(
            f"  {label:4s} rate={rate:4.1f}: "
            f"old={row['reference_seconds']:7.2f}s "
            f"array={row['array_seconds']:7.2f}s "
            f"new({new_core})={row[f'{new_core}_seconds']:7.2f}s "
            f"-> {row['speedup']:.1f}x"
        )
    return rows


def _timed_sweep(spec, batch: bool, reps: int = 2):
    """Best-of-``reps`` wall-clock for one engine sweep (no cache, so
    every point simulates every rep); returns (seconds, sweep)."""
    best, sweep = math.inf, None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = run_experiments([spec], batch=batch, workers=1)[0]
        best = min(best, time.perf_counter() - t0)
        sweep = out
    return best, sweep


def fleet_section(scale: str, threads: int = 1):
    """Fleet points-per-second: batched vs per-point engine sweeps.

    Single-threaded by construction (``REPRO_SIM_THREADS=1``): the
    reported speedup is amortisation (one route plane, one packed
    kernel call per chunk) plus the vectorized destination pre-pass —
    kernel threads would only add to it on multi-core hosts.
    """
    params = sim_params(scale)
    spec = fig10_local_uniform_spec(params).with_rates(FLEET_RATES)
    saved = os.environ.get(THREADS_ENV)
    os.environ[THREADS_ENV] = str(threads)
    try:
        # warm: compiles the kernel, fills the worker-local system /
        # routing caches and the shared route memo for both paths
        run_experiments([spec], batch=True, workers=1)
        # best-of-4: single-point wall-clocks on shared hosts are
        # noisy enough to swing the ratio by ~20%
        t_point, sw_p = _timed_sweep(spec, batch=False, reps=4)
        t_batch, sw_b = _timed_sweep(spec, batch=True, reps=4)
    finally:
        if saved is None:
            os.environ.pop(THREADS_ENV, None)
        else:
            os.environ[THREADS_ENV] = saved
    n = len(FLEET_RATES)
    identical = all(
        rb.to_dict() == rp.to_dict()
        for rb, rp in zip(sw_b.results, sw_p.results)
    )
    section = {
        "rates": FLEET_RATES,
        "threads": threads,
        "points": n,
        "per_point_seconds": round(t_point, 3),
        "batched_seconds": round(t_batch, 3),
        "per_point_pps": round(n / t_point, 3),
        "batched_pps": round(n / t_batch, 3),
        "batched_speedup": round(t_point / t_batch, 2),
        "identical": identical,
    }
    print(
        f"  fleet ({n} points, {threads} thread(s)): "
        f"per-point {section['per_point_pps']:.2f} pts/s, "
        f"batched {section['batched_pps']:.2f} pts/s "
        f"-> {section['batched_speedup']:.2f}x "
        f"(identical={identical})"
    )
    return section


def sweep_wallclock_section(scale: str):
    """Wall-clock of a realistic saturation sweep, cutoff included."""
    params = sim_params(scale)
    spec = fig10_local_uniform_spec(params).with_rates(SWEEP_RATES)
    run_experiments([spec], batch=True, workers=1)  # warm
    t_point, sw_p = _timed_sweep(spec, batch=False, reps=1)
    t_batch, sw_b = _timed_sweep(spec, batch=True, reps=1)
    section = {
        "rates": SWEEP_RATES,
        "per_point_seconds": round(t_point, 3),
        "batched_seconds": round(t_batch, 3),
        "batched_speedup": round(t_point / t_batch, 2),
        "swept_points_per_point": len(sw_p.rates),
        "swept_points_batched": len(sw_b.rates),
    }
    print(
        f"  saturation sweep: per-point {t_point:.2f}s, "
        f"batched {t_batch:.2f}s -> {section['batched_speedup']:.2f}x "
        f"({len(sw_b.rates)} rates kept)"
    )
    return section


def batched_equivalence() -> bool:
    """Batched engine sweep bit-identical to the per-point sweep."""
    params = sim_params("quick", seed=23)
    spec = fig10_local_uniform_spec(params)
    sw_b = run_experiments([spec], batch=True, workers=1)[0]
    sw_p = run_experiments([spec], batch=False, workers=1)[0]
    same = sw_b.rates == sw_p.rates and all(
        rb.to_dict() == rp.to_dict()
        for rb, rp in zip(sw_b.results, sw_p.results)
    )
    print(f"  batched sweep identical to per-point: {same}")
    return same


def pinned_equivalence(new_core: str) -> bool:
    """All cores identical under a pinned injection schedule."""
    params = sim_params("quick", seed=17)
    spec = fig10_local_uniform_spec(params)
    graph, routing, traffic = build(spec)
    ok = True
    for rate in (RATE_POINTS["mid"], RATE_POINTS["sat"]):
        schedule = Simulator(graph, routing, traffic, params).make_schedule(
            rate
        )
        outs = {}
        for core in ("reference", "array", new_core):
            sim = Simulator(graph, routing, traffic, params, core=core)
            outs[core] = sim.run(rate, schedule=schedule).to_dict()
        same = all(o == outs["reference"] for o in outs.values())
        print(f"  pinned rate={rate}: identical={same}")
        ok &= same
    return ok


def rng_shift_report(seeds, new_core: str):
    """Free-running old vs new curves across seeds."""
    # one extra deep-saturation point so the saturation-rate
    # comparison actually brackets the knee (~1.1 flits/cycle/chip)
    rates = sorted(RATE_POINTS.values()) + [1.6]
    curves = {"reference": {}, new_core: {}}  # core -> rate -> per-seed
    for core in curves:
        for seed in seeds:
            params = sim_params("default", seed=seed)
            spec = fig10_local_uniform_spec(params)
            graph, routing, traffic = build(spec)
            for rate in rates:
                _, res = timed_run(
                    graph, routing, traffic, params, rate, core
                )
                curves[core].setdefault(rate, []).append(res)

    def sat_rate(core):
        """First rate whose mean accepted load falls below 90% of the
        mean effective offered load."""
        for rate in rates:
            res = curves[core][rate]
            acc = statistics.fmean(r.accepted_rate for r in res)
            off = statistics.fmean(r.effective_offered for r in res)
            if acc < 0.9 * off:
                return rate
        return None

    report = {"seeds": list(seeds), "rates": rates, "points": []}
    clean = True
    for rate in rates:
        old = curves["reference"][rate]
        new = curves[new_core][rate]
        entry = {"rate": rate}
        for name, res in (("old", old), ("new", new)):
            lats = [r.avg_latency for r in res]
            accs = [r.accepted_rate for r in res]
            entry[f"{name}_latency"] = [round(x, 2) for x in lats]
            entry[f"{name}_accepted"] = [round(x, 4) for x in accs]
        # accepted throughput must agree within seed noise everywhere
        o = [r.accepted_rate for r in old]
        n = [r.accepted_rate for r in new]
        sigma = max(
            statistics.pstdev(o), statistics.pstdev(n), 1e-9
        )
        shift = abs(statistics.fmean(o) - statistics.fmean(n))
        acc_ok = shift <= max(3 * sigma, 0.02 * statistics.fmean(o))
        entry["accepted_within_noise"] = acc_ok
        # mean latency compared only while both cores still deliver
        # essentially all offered load — approaching saturation the
        # mean is dominated by unbounded queueing noise
        delivering = all(
            statistics.fmean(r.accepted_rate for r in res)
            >= 0.98 * statistics.fmean(r.effective_offered for r in res)
            for res in (old, new)
        )
        if delivering:
            ol = [r.avg_latency for r in old]
            nl = [r.avg_latency for r in new]
            if all(map(math.isfinite, ol + nl)):
                sigma = max(
                    statistics.pstdev(ol), statistics.pstdev(nl), 1e-9
                )
                shift = abs(
                    statistics.fmean(ol) - statistics.fmean(nl)
                )
                lat_ok = shift <= max(
                    3 * sigma, 0.05 * statistics.fmean(ol)
                )
                entry["latency_within_noise"] = lat_ok
                clean &= lat_ok
        clean &= acc_ok
        report["points"].append(entry)

    report["old_saturation_rate"] = sat_rate("reference")
    report["new_saturation_rate"] = sat_rate(new_core)
    sat_ok = report["old_saturation_rate"] == report["new_saturation_rate"]
    report["saturation_agrees"] = sat_ok
    clean &= sat_ok
    report["clean"] = clean
    for e in report["points"]:
        print(
            f"  rng-shift rate={e['rate']:4.1f}: "
            f"accepted_ok={e['accepted_within_noise']} "
            f"latency_ok={e.get('latency_within_noise', 'n/a (sat)')}"
        )
    print(
        f"  saturation: old={report['old_saturation_rate']} "
        f"new={report['new_saturation_rate']} agree={sat_ok}"
    )
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--scale",
        choices=["quick", "default", "full"],
        default="full",
        help="simulation windows for the timing section",
    )
    ap.add_argument("--seeds", default="11,12,13")
    ap.add_argument("--out", default="BENCH_simcore.json")
    args = ap.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s]

    new_core = "native" if native_available() else "array"
    print(
        f"new core: {new_core} (native available: {native_available()})"
    )

    print(f"timing (scale={args.scale}):")
    timing = timing_section(args.scale, new_core)
    print(f"fleet points-per-second (scale={args.scale}):")
    fleet = fleet_section(args.scale)
    print(f"saturation-sweep wall-clock (scale={args.scale}):")
    sweep_wc = sweep_wallclock_section(args.scale)
    print("pinned-schedule equivalence:")
    pinned_ok = pinned_equivalence(new_core)
    print("batched-sweep equivalence:")
    batched_ok = batched_equivalence()
    print(f"rng-shift curves over seeds {seeds}:")
    shift = rng_shift_report(seeds, new_core)

    mid = next(r for r in timing if r["label"] == "mid")
    payload = {
        "benchmark": "simcore_fig10_local_uniform",
        "scale": args.scale,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "old_core": "reference (pre-PR object-based simulator)",
        "new_core": new_core,
        "native_available": native_available(),
        "timing": timing,
        "mid_load_speedup": mid["speedup"],
        "fleet": fleet,
        "fleet_points_per_second": fleet["batched_pps"],
        "fleet_batched_speedup": fleet["batched_speedup"],
        "sweep_wallclock": sweep_wc,
        "equivalence": {
            "pinned_identical": pinned_ok,
            "batched_identical": batched_ok and fleet["identical"],
            "rng_shift": shift,
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"wrote {args.out}: mid-load speedup {mid['speedup']}x, "
        f"fleet {fleet['batched_pps']:.2f} pts/s "
        f"({fleet['batched_speedup']}x batched), "
        f"pinned identical: {pinned_ok}, batched identical: "
        f"{batched_ok and fleet['identical']}, "
        f"rng-shift clean: {shift['clean']}"
    )
    if mid["speedup"] < 2.0:
        print("WARNING: mid-load speedup below the 2x target")
    if native_available() and fleet["batched_speedup"] < 2.0:
        print("WARNING: fleet batched speedup below the 2x target")
    return (
        0
        if pinned_ok and batched_ok and fleet["identical"] and shift["clean"]
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
