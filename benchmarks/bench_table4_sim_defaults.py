"""Table IV: default simulation parameters."""

from repro.analysis import format_table_iv
from repro.network import SimParams


def bench_table4(benchmark):
    table = benchmark(format_table_iv)
    print()
    print(table)
    p = SimParams()
    assert (p.packet_length, p.vc_buffer_size) == (4, 32)
    assert (p.warmup_cycles, p.measure_cycles) == (5000, 10000)
