"""Fig. 9: physical layout of PHYs, chiplets and IO connectors."""

from repro.layout import plan_cgroup_layout


def bench_fig9(benchmark):
    layout = benchmark(plan_cgroup_layout)
    print()
    print("==== Fig. 9 C-group floorplan ====")
    for key, val in layout.summary().items():
        print(f"  {key:24s} {val}")
    print(f"  feasible               {layout.feasible()}")
    print("paper: ~60mm edge, 1536 diff pairs, 4096/896 Gb/s ports,")
    print("       12 TB/s bisection, 20.9 TB/s aggregate, ~5500 IOs")
    assert layout.feasible()
    assert layout.offwafer_diff_pairs == 1536
