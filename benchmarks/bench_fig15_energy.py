"""Fig. 15: average transmission energy, minimal vs misrouting.

Paper setup: uniform traffic traces on small-scale (4x4 mesh C-groups)
and large-scale (7x7) Dragonflies; hop energies of 20 pJ/bit long-reach
and ~1 pJ/bit averaged intra-C-group (Table II simplification).  Paper
result: eliminating switches reduces total energy in all four cases; the
intra-C-group share grows with mesh scale and misrouting.
"""

from conftest import once

from repro.analysis import FIG15_ENERGY, average_energy
from repro.core import SwitchlessConfig, build_switchless
from repro.routing import DragonflyRouting, SwitchlessRouting
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.traffic import UniformTraffic

SAMPLES = 3000


def _breakdown(graph, routing, seed=0):
    return average_energy(
        graph, routing, UniformTraffic(graph),
        table=FIG15_ENERGY, samples=SAMPLES, seed=seed,
    )


def _run():
    out = {}
    for scale, df_cfg, sl_cfg in (
        (
            "small (4x4 mesh)",
            DragonflyConfig.radix16(g=9),
            SwitchlessConfig.radix16_equiv(num_wgroups=9,
                                           cgroups_per_wafer=1),
        ),
        (
            "large (7x7 mesh)",
            DragonflyConfig.radix32(g=9),
            SwitchlessConfig.radix32_equiv(num_wgroups=9,
                                           cgroups_per_wafer=1),
        ),
    ):
        dfly = build_dragonfly(df_cfg)
        sless = build_switchless(sl_cfg)
        out[scale] = {
            "SW-based": _breakdown(
                dfly.graph, DragonflyRouting(dfly, "minimal")
            ),
            "SW-less": _breakdown(
                sless.graph, SwitchlessRouting(sless, "minimal")
            ),
            "SW-based Misrouting": _breakdown(
                dfly.graph, DragonflyRouting(dfly, "valiant")
            ),
            "SW-less Misrouting": _breakdown(
                sless.graph, SwitchlessRouting(sless, "valiant")
            ),
        }
    return out


def bench_fig15_energy(benchmark):
    results = once(benchmark, _run)
    for scale, rows in results.items():
        print()
        print(f"==== Fig. 15 energy per transmission, {scale} ====")
        print(f"{'network':22s} {'inter pJ/b':>10s} {'intra pJ/b':>10s} "
              f"{'total':>7s}")
        for name, b in rows.items():
            print(
                f"{name:22s} {b.inter_cgroup_pj:10.1f} "
                f"{b.intra_cgroup_pj:10.1f} {b.total_pj:7.1f}"
            )
        # the paper's conclusion: switch-less is cheaper in all cases
        assert rows["SW-less"].total_pj < rows["SW-based"].total_pj
        assert (
            rows["SW-less Misrouting"].total_pj
            < rows["SW-based Misrouting"].total_pj
        )
    # intra-C-group share grows with mesh scale
    small = results["small (4x4 mesh)"]["SW-less"].intra_cgroup_pj
    large = results["large (7x7 mesh)"]["SW-less"].intra_cgroup_pj
    assert large > small
