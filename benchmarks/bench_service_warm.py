"""Service benchmark: warm resubmission vs a cold CLI run.

The service's pitch is amortisation: a long-running server keeps the
compiled native core, the engine's topology/routing LRUs and the
content-addressed result store resident, so resubmitting a study costs
an HTTP round-trip plus a cache replay — while every cold
``repro-dragonfly run`` pays interpreter start-up, native-core loading
and the full simulation again.

This script measures exactly that, client-observed:

* ``cold_run_seconds`` — subprocess ``repro-dragonfly run`` of a study
  JSON with an empty cache dir (median of N);
* ``service_first_seconds`` — the same study's first submission to a
  fresh service (one full computation, warm process);
* ``warm_resubmit_seconds`` — resubmitting the identical study (median
  of N replays from the store);
* ``warm_resubmit_notelemetry_seconds`` — the same warm replays against
  a second server started with ``telemetry=False``, gating the runtime
  telemetry plane (spans + metrics) to ≤3% client-observed overhead
  (or an absolute delta within the scheduling-noise floor).

Writes ``BENCH_service.json``.

Run:  PYTHONPATH=src python benchmarks/bench_service_warm.py
"""

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import build_study
from repro.service import ServiceClient, create_server


def cold_run(study_file: str, env: dict) -> float:
    """One cold CLI run: new interpreter, empty cache, full compute."""
    with tempfile.TemporaryDirectory(prefix="bench-cold-") as cache:
        t0 = time.perf_counter()
        subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "run", study_file,
                "--workers", "1", "--cache-dir", cache,
            ],
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        return time.perf_counter() - t0


def timed_submit(client: ServiceClient, study) -> float:
    t0 = time.perf_counter()
    job = client.submit_study(study, client="bench")
    client.watch(job["id"])
    return time.perf_counter() - t0


def warm_samples(tmp: Path, study, repeats: int, telemetry: bool) -> list:
    """Median-ready warm resubmit timings against a fresh server
    instance sharing the (already hot) result store."""
    server = create_server(
        host="127.0.0.1", port=0, cache_dir=tmp / "store",
        telemetry=telemetry,
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        timed_submit(client, study)  # prime this instance's paths
        return [timed_submit(client, study) for _ in range(repeats)]
    finally:
        server.initiate_shutdown()
        server.server_close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--study", default="smoke",
                    help="bundled study name to benchmark")
    ap.add_argument("--scale", default="default")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--out", default="BENCH_service.json")
    args = ap.parse_args(argv)

    study = build_study(args.study, scale=args.scale)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmp:
        study_file = str(Path(tmp) / "study.json")
        Path(study_file).write_text(json.dumps(study.to_data()))

        print(f"cold CLI runs ({args.repeats}x) ...")
        cold = [cold_run(study_file, env) for _ in range(args.repeats)]

        server = create_server(
            host="127.0.0.1", port=0, cache_dir=Path(tmp) / "store"
        )
        threading.Thread(
            target=server.serve_forever, daemon=True
        ).start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        try:
            print("first service submission (cold store) ...")
            first = timed_submit(client, study)
            print(f"warm resubmissions ({args.repeats}x) ...")
            warm = [
                timed_submit(client, study)
                for _ in range(args.repeats)
            ]
        finally:
            server.initiate_shutdown()
            server.server_close()

        print(f"warm resubmissions, telemetry off ({args.repeats}x) ...")
        warm_off = warm_samples(
            Path(tmp), study, args.repeats, telemetry=False
        )

    cold_s = statistics.median(cold)
    warm_s = statistics.median(warm)
    warm_off_s = statistics.median(warm_off)
    # telemetry gate: spans + metrics must stay within 3% of the
    # telemetry-off latency, or inside the absolute noise floor a
    # sub-100ms HTTP round-trip exhibits on a shared CI box
    overhead_s = warm_s - warm_off_s
    overhead_ratio = warm_s / warm_off_s if warm_off_s > 0 else 1.0
    overhead_ok = overhead_ratio <= 1.03 or overhead_s <= 0.010
    payload = {
        "benchmark": "service_warm_resubmission",
        "study": args.study,
        "scale": args.scale,
        "points": study.num_points(),
        "repeats": args.repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cold_run_seconds": round(cold_s, 3),
        "cold_run_samples": [round(v, 3) for v in cold],
        "service_first_seconds": round(first, 3),
        "warm_resubmit_seconds": round(warm_s, 4),
        "warm_resubmit_samples": [round(v, 4) for v in warm],
        "warm_resubmit_notelemetry_seconds": round(warm_off_s, 4),
        "warm_resubmit_notelemetry_samples": [
            round(v, 4) for v in warm_off
        ],
        "telemetry_overhead_seconds": round(overhead_s, 4),
        "telemetry_overhead_ratio": round(overhead_ratio, 3),
        "telemetry_overhead_ok": overhead_ok,
        "speedup_vs_cold_run": round(cold_s / warm_s, 1),
        "warm_faster_than_cold": warm_s < cold_s,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"# written to {args.out}")
    if not payload["telemetry_overhead_ok"]:
        print(
            "# FAIL: telemetry overhead "
            f"{payload['telemetry_overhead_ratio']}x exceeds the 1.03x "
            "gate", file=sys.stderr,
        )
        return 1
    return 0 if payload["warm_faster_than_cold"] else 1


if __name__ == "__main__":
    sys.exit(main())
