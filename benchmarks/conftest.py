"""Shared benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
measured series next to the paper's reference values.  The figure
benches are thin wrappers over the bundled ``repro.api`` scenario
library (:func:`run_library_study`); only the ablation bench still
builds live objects, via :func:`run_curves`.

Because the substrate is a pure-Python cycle-accurate simulator, the
default scale trades simulated cycles / system size for wall-clock
(documented per bench and in EXPERIMENTS.md); set ``REPRO_SCALE=full``
for paper-exact configurations and Table IV cycle counts, or
``REPRO_SCALE=quick`` for a smoke-level pass.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

from repro.api import StudyResult, build_study
from repro.api import pick_rates as _pick_rates
from repro.api import sim_params as _sim_params
from repro.engine import ResultCache
from repro.network import LoadSweep, SimParams, sweep_rates

SCALE = os.environ.get("REPRO_SCALE", "default")

#: worker processes for engine-backed benches (None = engine default:
#: REPRO_WORKERS env, then CPU count).
WORKERS = None

#: point-result cache shared by all engine-backed benches when
#: ``REPRO_CACHE_DIR`` is set (re-running a figure then only simulates
#: missing points).
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR")


def sim_params(seed: int = 11) -> SimParams:
    return _sim_params(SCALE, seed=seed)


def pick_rates(rates: Sequence[float], quick_count: int = 3):
    return _pick_rates(rates, SCALE, quick_count=quick_count)


def run_library_study(name: str) -> StudyResult:
    """Run one bundled study at the session scale and print its report."""
    study = build_study(name, scale=SCALE)
    cache = ResultCache(CACHE_DIR) if CACHE_DIR else None
    result = study.run(workers=WORKERS, cache=cache)
    print()
    print(f"(scale={SCALE})")
    print(result.render())
    return result


def run_curves(
    configs: Dict[str, tuple],
    rates: Sequence[float],
    *,
    params: SimParams,
    stop_after_saturation: int = 1,
) -> Dict[str, LoadSweep]:
    """Sweep each labeled (graph, routing, traffic) triple in-process.

    Legacy path for benches whose knobs (VC policy ablations) build live
    objects; the figure benches run bundled studies instead.
    """
    out: Dict[str, LoadSweep] = {}
    for label, (graph, routing, traffic) in configs.items():
        out[label] = sweep_rates(
            graph, routing, traffic, rates, params,
            label=label, stop_after_saturation=stop_after_saturation,
        )
    return out


def print_figure(title: str, sweeps: Dict[str, LoadSweep], notes: str = "") -> None:
    print()
    print(f"==== {title} (scale={SCALE}) ====")
    if notes:
        print(notes)
    for sweep in sweeps.values():
        print(sweep.format_table())
        print(
            f"-> saturation ~{sweep.saturation_rate:.2f}, "
            f"max accepted {sweep.max_accepted:.2f} flits/cycle/chip"
        )


def once(benchmark, fn):
    """Run a whole-figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
