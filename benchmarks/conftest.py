"""Shared benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
measured series next to the paper's reference values.  Because the
substrate is a pure-Python cycle-accurate simulator, the default scale
trades simulated cycles / system size for wall-clock (documented per
bench and in EXPERIMENTS.md); set ``REPRO_SCALE=full`` for paper-exact
configurations and Table IV cycle counts, or ``REPRO_SCALE=quick`` for a
smoke-level pass.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

from repro.network import LoadSweep, SimParams, sweep_rates

SCALE = os.environ.get("REPRO_SCALE", "default")


def sim_params(seed: int = 11) -> SimParams:
    if SCALE == "full":
        return SimParams(seed=seed)  # Table IV: 5000 + 10000 cycles
    if SCALE == "quick":
        return SimParams(
            warmup_cycles=150, measure_cycles=400, drain_cycles=200, seed=seed
        )
    return SimParams(
        warmup_cycles=300, measure_cycles=900, drain_cycles=400, seed=seed
    )


def pick_rates(rates: Sequence[float], quick_count: int = 3) -> List[float]:
    """Thin a rate list under the quick scale."""
    rates = list(rates)
    if SCALE == "quick" and len(rates) > quick_count:
        step = max(1, len(rates) // quick_count)
        rates = rates[::step]
    return rates


def run_curves(
    configs: Dict[str, tuple],
    rates: Sequence[float],
    *,
    params: SimParams,
    stop_after_saturation: int = 1,
) -> Dict[str, LoadSweep]:
    """Sweep each labeled (graph, routing, traffic) triple."""
    out: Dict[str, LoadSweep] = {}
    for label, (graph, routing, traffic) in configs.items():
        out[label] = sweep_rates(
            graph, routing, traffic, rates, params,
            label=label, stop_after_saturation=stop_after_saturation,
        )
    return out


def print_figure(title: str, sweeps: Dict[str, LoadSweep], notes: str = "") -> None:
    print()
    print(f"==== {title} (scale={SCALE}) ====")
    if notes:
        print(notes)
    for sweep in sweeps.values():
        print(sweep.format_table())
        print(
            f"-> saturation ~{sweep.saturation_rate:.2f}, "
            f"max accepted {sweep.max_accepted:.2f} flits/cycle/chip"
        )


def once(benchmark, fn):
    """Run a whole-figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
