"""Shared benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
measured series next to the paper's reference values.  Because the
substrate is a pure-Python cycle-accurate simulator, the default scale
trades simulated cycles / system size for wall-clock (documented per
bench and in EXPERIMENTS.md); set ``REPRO_SCALE=full`` for paper-exact
configurations and Table IV cycle counts, or ``REPRO_SCALE=quick`` for a
smoke-level pass.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.engine import ExperimentSpec, ResultCache, run_experiments
from repro.network import LoadSweep, SimParams, sweep_rates

SCALE = os.environ.get("REPRO_SCALE", "default")

#: worker processes for spec-based benches (None = engine default:
#: REPRO_WORKERS env, then CPU count).
WORKERS = None

#: point-result cache shared by all spec-based benches when
#: ``REPRO_CACHE_DIR`` is set (re-running a figure then only simulates
#: missing points).
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR")


def sim_params(seed: int = 11) -> SimParams:
    if SCALE == "full":
        return SimParams(seed=seed)  # Table IV: 5000 + 10000 cycles
    if SCALE == "quick":
        return SimParams(
            warmup_cycles=150, measure_cycles=400, drain_cycles=200, seed=seed
        )
    return SimParams(
        warmup_cycles=300, measure_cycles=900, drain_cycles=400, seed=seed
    )


def pick_rates(rates: Sequence[float], quick_count: int = 3) -> List[float]:
    """Thin a rate list under the quick scale."""
    rates = list(rates)
    if SCALE == "quick" and len(rates) > quick_count:
        step = max(1, len(rates) // quick_count)
        rates = rates[::step]
    return rates


def run_curves(
    configs: Dict[str, tuple],
    rates: Sequence[float],
    *,
    params: SimParams,
    stop_after_saturation: int = 1,
) -> Dict[str, LoadSweep]:
    """Sweep each labeled (graph, routing, traffic) triple in-process.

    Legacy path for benches that build live objects; the figure benches
    use :func:`run_spec_curves`, which adds process parallelism and
    caching.
    """
    out: Dict[str, LoadSweep] = {}
    for label, (graph, routing, traffic) in configs.items():
        out[label] = sweep_rates(
            graph, routing, traffic, rates, params,
            label=label, stop_after_saturation=stop_after_saturation,
        )
    return out


def make_spec(
    label: str,
    *,
    topology: str,
    routing: str,
    traffic: str,
    rates: Sequence[float],
    params: SimParams,
    topology_opts: Optional[Dict] = None,
    routing_opts: Optional[Dict] = None,
    traffic_opts: Optional[Dict] = None,
) -> ExperimentSpec:
    """Benchmark-flavoured :meth:`ExperimentSpec.create` shorthand."""
    return ExperimentSpec.create(
        topology=topology,
        topology_opts=topology_opts,
        routing=routing,
        routing_opts=routing_opts,
        traffic=traffic,
        traffic_opts=traffic_opts,
        params=params,
        rates=pick_rates(rates),
        label=label,
    )


# -- shared architecture spec fragments for make_spec(**arch) ----------

#: Fig. 10(a)/14(a) intra-C-group contenders.
MESH_ARCH = {
    "topology": "mesh", "topology_opts": {"dim": 4, "chiplet_dim": 2},
    "routing": "xy_mesh",
}
SWITCH_ARCH = {
    "topology": "switch",
    "topology_opts": {"num_terminals": 4, "terminal_latency": 1},
    "routing": "switch_star",
}


def dragonfly_arch(mode: str = "minimal", **topology_opts) -> Dict:
    """Switch-based baseline (ideal router emulated via vc_spread=2)."""
    return {
        "topology": "dragonfly", "topology_opts": topology_opts,
        "routing": "dragonfly",
        "routing_opts": {"mode": mode, "vc_spread": 2},
    }


def switchless_arch(mode: str = "minimal", **topology_opts) -> Dict:
    """The paper's switch-less Dragonfly."""
    return {
        "topology": "switchless", "topology_opts": topology_opts,
        "routing": "switchless", "routing_opts": {"mode": mode},
    }


def run_spec_curves(
    specs: Dict[str, ExperimentSpec],
    *,
    stop_after_saturation: int = 1,
) -> Dict[str, LoadSweep]:
    """Run labeled specs through the parallel experiment engine."""
    cache = ResultCache(CACHE_DIR) if CACHE_DIR else None
    sweeps = run_experiments(
        list(specs.values()),
        workers=WORKERS,
        cache=cache,
        stop_after_saturation=stop_after_saturation,
    )
    return dict(zip(specs, sweeps))


def print_figure(title: str, sweeps: Dict[str, LoadSweep], notes: str = "") -> None:
    print()
    print(f"==== {title} (scale={SCALE}) ====")
    if notes:
        print(notes)
    for sweep in sweeps.values():
        print(sweep.format_table())
        print(
            f"-> saturation ~{sweep.saturation_rate:.2f}, "
            f"max accepted {sweep.max_accepted:.2f} flits/cycle/chip"
        )


def once(benchmark, fn):
    """Run a whole-figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
