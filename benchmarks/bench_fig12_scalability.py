"""Fig. 12: performance scalability on the large-scale (radix-32) system.

Paper setup: 18560 chips, 7x7-node C-groups with 24 external ports.
Paper result: (a) large-scale local performance needs 2B to keep up;
(b) global throughput of the uniform-bandwidth system is severely
bisection-constrained and recovers with 2B/4B (the A2 bandwidth
ablation of DESIGN.md).

Default scale keeps the *starved* geometry (C-group mesh bisection ~
half the external ports: here a 5x5 mesh with 11 ports) at a
simulatable size; ``REPRO_SCALE=full`` uses the paper's 7x7 C-groups.
Note the truncated W-group count also truncates global capacity, so the
default-scale 2B/4B recovery is real but capped by the global channels
(EXPERIMENTS.md, deviation 5).
"""

from conftest import (
    SCALE,
    make_spec,
    once,
    print_figure,
    run_spec_curves,
    sim_params,
    switchless_arch,
)


def _topo_opts(capacity: int) -> dict:
    if SCALE == "full":
        return {"preset": "radix32_equiv", "mesh_capacity": capacity}
    return {
        "mesh_dim": 5, "chiplet_dim": 1, "num_local": 7, "num_global": 4,
        "num_wgroups": 8, "mesh_capacity": capacity,
    }


def _spec(label, cap, traffic_opts, rates, params):
    return make_spec(
        label,
        traffic="uniform", traffic_opts=traffic_opts,
        rates=rates, params=params,
        **switchless_arch(**_topo_opts(cap)),
    )


def _run():
    params = sim_params()
    caps = {"SW-less": 1, "SW-less-2B": 2, "SW-less-4B": 4}
    local = run_spec_curves({
        label: _spec(
            label, cap, {"scope": ("group", 0)},
            [0.2, 0.4, 0.6, 0.9, 1.2], params,
        )
        for label, cap in caps.items()
        if label != "SW-less-4B"
    })
    glob = run_spec_curves(
        {
            label: _spec(
                label, cap, None, [0.04, 0.08, 0.12, 0.18, 0.25], params,
            )
            for label, cap in caps.items()
        },
        stop_after_saturation=2,
    )
    return local, glob


def bench_fig12_scalability(benchmark):
    local, glob = once(benchmark, _run)
    print_figure(
        "Fig. 12(a) large-scale local: uniform", local,
        "paper: without 2B, large-scale local is below the small-scale case",
    )
    print_figure(
        "Fig. 12(b) large-scale global: uniform", glob,
        "paper: uniform-bandwidth heavily constrained; 2B/4B recover it",
    )
    assert glob["SW-less-2B"].max_accepted > glob["SW-less"].max_accepted
    assert glob["SW-less-4B"].max_accepted >= glob["SW-less-2B"].max_accepted
    assert local["SW-less-2B"].max_accepted > local["SW-less"].max_accepted
