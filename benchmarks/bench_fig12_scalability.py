"""Fig. 12: performance scalability on the large-scale (radix-32) system.

Paper setup: 18560 chips, 7x7-node C-groups with 24 external ports.
Paper result: (a) large-scale local performance needs 2B to keep up;
(b) global throughput of the uniform-bandwidth system is severely
bisection-constrained and recovers with 2B/4B (the A2 bandwidth
ablation of DESIGN.md).

Runs the bundled ``fig12_scalability`` study: the default scale keeps
the *starved* geometry (C-group mesh bisection ~ half the external
ports: here a 5x5 mesh with 11 ports) at a simulatable size;
``REPRO_SCALE=full`` uses the paper's 7x7 C-groups.  Note the truncated
W-group count also truncates global capacity, so the default-scale
2B/4B recovery is real but capped by the global channels
(EXPERIMENTS.md, deviation 5).
"""

from conftest import once, run_library_study


def bench_fig12_scalability(benchmark):
    result = once(benchmark, lambda: run_library_study("fig12_scalability"))
    local, glob = result["local"], result["global"]
    assert glob["SW-less-2B"].max_accepted > glob["SW-less"].max_accepted
    assert glob["SW-less-4B"].max_accepted >= glob["SW-less-2B"].max_accepted
    assert local["SW-less-2B"].max_accepted > local["SW-less"].max_accepted
