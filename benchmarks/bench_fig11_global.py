"""Fig. 11: global performance under uniform and bit-reverse traffic.

Paper setup: the full radix-16 network (41 groups, 1312 chips).  Paper
result: with uniform intra-C-group bandwidth the switch-less Dragonfly
is slightly worse than the switch-based one (2D-mesh bisection is half a
non-blocking switch, Eq. 6); doubling intra-C-group bandwidth ("2B")
removes the bottleneck and it performs much better.

Runs the bundled ``fig11_global`` study: the default scale substitutes
the structurally identical 9-W-group ``small_equiv`` pair (144 chips;
same chips-per-group and global-channel ratio); ``REPRO_SCALE=full``
runs the paper-exact radix-16 systems.
"""

from conftest import once, run_library_study


def bench_fig11_global(benchmark):
    result = once(benchmark, lambda: run_library_study("fig11_global"))
    uni = result["uniform"]
    # 2B removes the mesh-bisection bottleneck (Eq. 6)
    assert uni["SW-less-2B"].max_accepted >= uni["SW-less"].max_accepted
