"""Fig. 11: global performance under uniform and bit-reverse traffic.

Paper setup: the full radix-16 network (41 groups, 1312 chips).  Paper
result: with uniform intra-C-group bandwidth the switch-less Dragonfly
is slightly worse than the switch-based one (2D-mesh bisection is half a
non-blocking switch, Eq. 6); doubling intra-C-group bandwidth ("2B")
removes the bottleneck and it performs much better.

Default scale substitutes the structurally identical 9-W-group
``small_equiv`` pair (144 chips; same chips-per-group and global-channel
ratio); ``REPRO_SCALE=full`` runs the paper-exact radix-16 systems.
"""

from conftest import (
    SCALE,
    dragonfly_arch,
    make_spec,
    once,
    print_figure,
    run_spec_curves,
    sim_params,
    switchless_arch,
)


def _arches():
    dfly_preset = "radix16" if SCALE == "full" else "small_equiv"
    sless_preset = "radix16_equiv" if SCALE == "full" else "small_equiv"
    return {
        "SW-based": dragonfly_arch(preset=dfly_preset),
        "SW-less": switchless_arch(preset=sless_preset),
        "SW-less-2B": switchless_arch(
            preset=sless_preset, mesh_capacity=2
        ),
    }


def _run():
    params = sim_params()
    arches = _arches()
    out = {}
    for name, traffic, rates in (
        ("uniform", "uniform", [0.1, 0.25, 0.4, 0.55, 0.7, 0.85]),
        ("bit-reverse", "bit_reverse", [0.1, 0.2, 0.3, 0.45, 0.6]),
    ):
        out[name] = run_spec_curves({
            label: make_spec(
                label, traffic=traffic, rates=rates, params=params, **arch,
            )
            for label, arch in arches.items()
        })
    return out


def bench_fig11_global(benchmark):
    results = once(benchmark, _run)
    print_figure(
        "Fig. 11(a) global: uniform", results["uniform"],
        "paper: SW-less slightly below SW-based; SW-less-2B above both",
    )
    print_figure(
        "Fig. 11(b) global: bit-reverse", results["bit-reverse"],
        "paper: same ordering as uniform",
    )
    uni = results["uniform"]
    # 2B removes the mesh-bisection bottleneck (Eq. 6)
    assert uni["SW-less-2B"].max_accepted >= uni["SW-less"].max_accepted
