"""Fig. 11: global performance under uniform and bit-reverse traffic.

Paper setup: the full radix-16 network (41 groups, 1312 chips).  Paper
result: with uniform intra-C-group bandwidth the switch-less Dragonfly
is slightly worse than the switch-based one (2D-mesh bisection is half a
non-blocking switch, Eq. 6); doubling intra-C-group bandwidth ("2B")
removes the bottleneck and it performs much better.

Default scale substitutes the structurally identical 9-W-group
``small_equiv`` pair (144 chips; same chips-per-group and global-channel
ratio); ``REPRO_SCALE=full`` runs the paper-exact radix-16 systems.
"""

from conftest import SCALE, once, pick_rates, print_figure, run_curves, sim_params

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import DragonflyRouting, SwitchlessRouting
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.traffic import BitReverseTraffic, UniformTraffic


def _build():
    if SCALE == "full":
        return (
            build_dragonfly(DragonflyConfig.radix16()),
            build_switchless(SwitchlessConfig.radix16_equiv()),
            build_switchless(SwitchlessConfig.radix16_equiv(mesh_capacity=2)),
        )
    return (
        build_dragonfly(DragonflyConfig.small_equiv()),
        build_switchless(SwitchlessConfig.small_equiv()),
        build_switchless(SwitchlessConfig.small_equiv(mesh_capacity=2)),
    )


def _run():
    params = sim_params()
    dfly, sless, sless2b = _build()
    out = {}
    for name, cls, rates in (
        ("uniform", UniformTraffic, [0.1, 0.25, 0.4, 0.55, 0.7, 0.85]),
        ("bit-reverse", BitReverseTraffic, [0.1, 0.2, 0.3, 0.45, 0.6]),
    ):
        configs = {
            "SW-based": (
                dfly.graph, DragonflyRouting(dfly, "minimal", vc_spread=2),
                cls(dfly.graph),
            ),
            "SW-less": (
                sless.graph, SwitchlessRouting(sless, "minimal"),
                cls(sless.graph),
            ),
            "SW-less-2B": (
                sless2b.graph, SwitchlessRouting(sless2b, "minimal"),
                cls(sless2b.graph),
            ),
        }
        out[name] = run_curves(configs, pick_rates(rates), params=params)
    return out


def bench_fig11_global(benchmark):
    results = once(benchmark, _run)
    print_figure(
        "Fig. 11(a) global: uniform", results["uniform"],
        "paper: SW-less slightly below SW-based; SW-less-2B above both",
    )
    print_figure(
        "Fig. 11(b) global: bit-reverse", results["bit-reverse"],
        "paper: same ordering as uniform",
    )
    uni = results["uniform"]
    # 2B removes the mesh-bisection bottleneck (Eq. 6)
    assert uni["SW-less-2B"].max_accepted >= uni["SW-less"].max_accepted
