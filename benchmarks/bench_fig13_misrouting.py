"""Fig. 13: minimal vs non-minimal routing under adversarial traffic.

Paper setup: hotspot (all traffic within 4 W-groups) and worst-case
(W_i -> W_{i+1}) on the radix-16 network.  Paper result: minimal routing
collapses (3/40 resp. 1/40 global links used); Valiant misrouting lifts
saturation by an order of magnitude, and extra intra-C-group bandwidth
helps the hotspot case further.

Runs the bundled ``fig13_misrouting`` study of the scenario library.
"""

from conftest import once, run_library_study


def bench_fig13_misrouting(benchmark):
    result = once(benchmark, lambda: run_library_study("fig13_misrouting"))
    for kind in ("hotspot", "worst-case"):
        sw = result[kind]
        assert (
            sw["SW-less-Mis"].max_accepted > sw["SW-less-Min"].max_accepted
        )
        assert (
            sw["SW-based-Mis"].max_accepted > sw["SW-based-Min"].max_accepted
        )
