"""Fig. 13: minimal vs non-minimal routing under adversarial traffic.

Paper setup: hotspot (all traffic within 4 W-groups) and worst-case
(W_i -> W_{i+1}) on the radix-16 network.  Paper result: minimal routing
collapses (3/40 resp. 1/40 global links used); Valiant misrouting lifts
saturation by an order of magnitude, and extra intra-C-group bandwidth
helps the hotspot case further.
"""

from conftest import SCALE, once, pick_rates, print_figure, run_curves, sim_params

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import DragonflyRouting, SwitchlessRouting
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.traffic import HotspotTraffic, WorstCaseTraffic


def _build():
    if SCALE == "full":
        return (
            build_dragonfly(DragonflyConfig.radix16()),
            build_switchless(SwitchlessConfig.radix16_equiv()),
            build_switchless(SwitchlessConfig.radix16_equiv(mesh_capacity=2)),
        )
    return (
        build_dragonfly(DragonflyConfig.small_equiv()),
        build_switchless(SwitchlessConfig.small_equiv()),
        build_switchless(SwitchlessConfig.small_equiv(mesh_capacity=2)),
    )


def _traffic(kind, sys, num_groups):
    if kind == "hotspot":
        return HotspotTraffic(sys.graph, sys.group_nodes, num_groups, 4)
    return WorstCaseTraffic(sys.graph, sys.group_nodes, num_groups)


def _run():
    params = sim_params()
    dfly, sless, sless2b = _build()
    out = {}
    for kind, rates in (
        ("hotspot", [0.05, 0.15, 0.3, 0.5, 0.7]),
        ("worst-case", [0.03, 0.08, 0.16, 0.26, 0.4]),
    ):
        groups_df = dfly.num_groups
        groups_sl = sless.num_wgroups
        configs = {
            "SW-based-Min": (
                dfly.graph, DragonflyRouting(dfly, "minimal", vc_spread=2),
                _traffic(kind, dfly, groups_df),
            ),
            "SW-less-Min": (
                sless.graph, SwitchlessRouting(sless, "minimal"),
                _traffic(kind, sless, groups_sl),
            ),
            "SW-based-Mis": (
                dfly.graph, DragonflyRouting(dfly, "valiant", vc_spread=2),
                _traffic(kind, dfly, groups_df),
            ),
            "SW-less-Mis": (
                sless.graph, SwitchlessRouting(sless, "valiant"),
                _traffic(kind, sless, groups_sl),
            ),
            "SW-less-2B-Mis": (
                sless2b.graph, SwitchlessRouting(sless2b, "valiant"),
                _traffic(kind, sless2b, sless2b.num_wgroups),
            ),
        }
        out[kind] = run_curves(configs, pick_rates(rates), params=params)
    return out


def bench_fig13_misrouting(benchmark):
    results = once(benchmark, _run)
    print_figure(
        "Fig. 13(a) hotspot", results["hotspot"],
        "paper: misrouting saturates far above minimal; 2B helps further",
    )
    print_figure(
        "Fig. 13(b) worst-case", results["worst-case"],
        "paper: minimal collapses on the single W_i->W_i+1 channel",
    )
    for kind in ("hotspot", "worst-case"):
        sw = results[kind]
        assert (
            sw["SW-less-Mis"].max_accepted > sw["SW-less-Min"].max_accepted
        )
        assert (
            sw["SW-based-Mis"].max_accepted > sw["SW-based-Min"].max_accepted
        )
