"""Fig. 13: minimal vs non-minimal routing under adversarial traffic.

Paper setup: hotspot (all traffic within 4 W-groups) and worst-case
(W_i -> W_{i+1}) on the radix-16 network.  Paper result: minimal routing
collapses (3/40 resp. 1/40 global links used); Valiant misrouting lifts
saturation by an order of magnitude, and extra intra-C-group bandwidth
helps the hotspot case further.
"""

from conftest import (
    SCALE,
    dragonfly_arch,
    make_spec,
    once,
    print_figure,
    run_spec_curves,
    sim_params,
    switchless_arch,
)


def _arches():
    dfly_preset = "radix16" if SCALE == "full" else "small_equiv"
    sless_preset = "radix16_equiv" if SCALE == "full" else "small_equiv"
    return {
        "SW-based-Min": dragonfly_arch("minimal", preset=dfly_preset),
        "SW-less-Min": switchless_arch("minimal", preset=sless_preset),
        "SW-based-Mis": dragonfly_arch("valiant", preset=dfly_preset),
        "SW-less-Mis": switchless_arch("valiant", preset=sless_preset),
        "SW-less-2B-Mis": switchless_arch(
            "valiant", preset=sless_preset, mesh_capacity=2
        ),
    }


def _run():
    params = sim_params()
    arches = _arches()
    out = {}
    for kind, traffic, traffic_opts, rates in (
        ("hotspot", "hotspot", {"num_hot": 4},
         [0.05, 0.15, 0.3, 0.5, 0.7]),
        ("worst-case", "worst_case", None,
         [0.03, 0.08, 0.16, 0.26, 0.4]),
    ):
        out[kind] = run_spec_curves({
            label: make_spec(
                label, traffic=traffic, traffic_opts=traffic_opts,
                rates=rates, params=params, **arch,
            )
            for label, arch in arches.items()
        })
    return out


def bench_fig13_misrouting(benchmark):
    results = once(benchmark, _run)
    print_figure(
        "Fig. 13(a) hotspot", results["hotspot"],
        "paper: misrouting saturates far above minimal; 2B helps further",
    )
    print_figure(
        "Fig. 13(b) worst-case", results["worst-case"],
        "paper: minimal collapses on the single W_i->W_i+1 channel",
    )
    for kind in ("hotspot", "worst-case"):
        sw = results[kind]
        assert (
            sw["SW-less-Mis"].max_accepted > sw["SW-less-Min"].max_accepted
        )
        assert (
            sw["SW-based-Mis"].max_accepted > sw["SW-based-Min"].max_accepted
        )
