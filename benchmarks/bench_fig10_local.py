"""Fig. 10(c-f): local (intra-W-group) performance under four patterns.

Paper setup: one W-group of the radix-16-equivalent system (8 C-groups x
4 chips = 32 chips / 128 nodes) vs one group of the radix-16 Dragonfly.
Paper result: switch-less saturates 1.2-2x higher than switch-based for
uniform / bit-reverse / bit-transpose; bit-shuffle is inter-C-group-link
bound, so 2B does not help there.
"""

import os

from conftest import SCALE, once, pick_rates, print_figure, run_curves, sim_params

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import DragonflyRouting, SwitchlessRouting
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.traffic import (
    BitReverseTraffic,
    BitShuffleTraffic,
    BitTransposeTraffic,
    UniformTraffic,
)

PATTERNS = {
    "uniform": (UniformTraffic, [0.3, 0.6, 0.9, 1.2, 1.6, 2.0]),
    "bit-reverse": (BitReverseTraffic, [0.3, 0.6, 0.9, 1.2, 1.6]),
    "bit-shuffle": (BitShuffleTraffic, [0.1, 0.2, 0.3, 0.4, 0.5]),
    "bit-transpose": (BitTransposeTraffic, [0.3, 0.6, 0.9, 1.2, 1.6]),
}


def _build():
    wgroups = 41 if SCALE == "full" else 2
    dfly = build_dragonfly(DragonflyConfig.radix16(g=wgroups))
    sless = build_switchless(
        SwitchlessConfig.radix16_equiv(num_wgroups=wgroups,
                                       cgroups_per_wafer=1)
    )
    sless2b = build_switchless(
        SwitchlessConfig.radix16_equiv(num_wgroups=wgroups,
                                       cgroups_per_wafer=1, mesh_capacity=2)
    )
    return dfly, sless, sless2b


def _run():
    params = sim_params()
    dfly, sless, sless2b = _build()
    results = {}
    names = list(PATTERNS)
    if SCALE == "quick":
        names = ["uniform", "bit-reverse"]
    for name in names:
        cls, rates = PATTERNS[name]
        configs = {
            "SW-based": (
                dfly.graph,
                DragonflyRouting(dfly, "minimal", vc_spread=2),
                cls(dfly.graph, dfly.group_nodes(0)),
            ),
            "SW-less": (
                sless.graph,
                SwitchlessRouting(sless, "minimal"),
                cls(sless.graph, sless.group_nodes(0)),
            ),
            "SW-less-2B": (
                sless2b.graph,
                SwitchlessRouting(sless2b, "minimal"),
                cls(sless2b.graph, sless2b.group_nodes(0)),
            ),
        }
        results[name] = run_curves(
            configs, pick_rates(rates), params=params
        )
    return results


def bench_fig10_local(benchmark):
    results = once(benchmark, _run)
    notes = {
        "uniform": "paper Fig.10(c): SW-less saturates ~1.5x SW-based",
        "bit-reverse": "paper Fig.10(d): SW-less ~1.2-2x SW-based",
        "bit-shuffle": "paper Fig.10(e): all bound by inter-C-group links",
        "bit-transpose": "paper Fig.10(f): SW-less ~1.2-2x SW-based",
    }
    for name, sweeps in results.items():
        print_figure(f"Fig. 10 local: {name}", sweeps, notes[name])
    uni = results["uniform"]
    assert uni["SW-less"].max_accepted > uni["SW-based"].max_accepted
    if "bit-shuffle" in results:
        shuf = results["bit-shuffle"]
        # 2B does not lift the bit-shuffle bottleneck (inter-C-group bound)
        assert (
            shuf["SW-less-2B"].max_accepted
            < 1.35 * shuf["SW-less"].max_accepted
        )
