"""Fig. 10(c-f): local (intra-W-group) performance under four patterns.

Paper setup: one W-group of the radix-16-equivalent system (8 C-groups x
4 chips = 32 chips / 128 nodes) vs one group of the radix-16 Dragonfly.
Paper result: switch-less saturates 1.2-2x higher than switch-based for
uniform / bit-reverse / bit-transpose; bit-shuffle is inter-C-group-link
bound, so 2B does not help there.
"""

from conftest import (
    SCALE,
    dragonfly_arch,
    make_spec,
    once,
    print_figure,
    run_spec_curves,
    sim_params,
    switchless_arch,
)

PATTERNS = {
    "uniform": ("uniform", [0.3, 0.6, 0.9, 1.2, 1.6, 2.0]),
    "bit-reverse": ("bit_reverse", [0.3, 0.6, 0.9, 1.2, 1.6]),
    "bit-shuffle": ("bit_shuffle", [0.1, 0.2, 0.3, 0.4, 0.5]),
    "bit-transpose": ("bit_transpose", [0.3, 0.6, 0.9, 1.2, 1.6]),
}


def _arches():
    wgroups = 41 if SCALE == "full" else 2
    sless = {"preset": "radix16_equiv", "num_wgroups": wgroups,
             "cgroups_per_wafer": 1}
    return {
        "SW-based": dragonfly_arch(preset="radix16", g=wgroups),
        "SW-less": switchless_arch(**sless),
        "SW-less-2B": switchless_arch(mesh_capacity=2, **sless),
    }


def _run():
    params = sim_params()
    arches = _arches()
    results = {}
    names = list(PATTERNS)
    if SCALE == "quick":
        names = ["uniform", "bit-reverse"]
    for name in names:
        traffic, rates = PATTERNS[name]
        results[name] = run_spec_curves({
            label: make_spec(
                label, traffic=traffic,
                traffic_opts={"scope": ("group", 0)},
                rates=rates, params=params, **arch,
            )
            for label, arch in arches.items()
        })
    return results


def bench_fig10_local(benchmark):
    results = once(benchmark, _run)
    notes = {
        "uniform": "paper Fig.10(c): SW-less saturates ~1.5x SW-based",
        "bit-reverse": "paper Fig.10(d): SW-less ~1.2-2x SW-based",
        "bit-shuffle": "paper Fig.10(e): all bound by inter-C-group links",
        "bit-transpose": "paper Fig.10(f): SW-less ~1.2-2x SW-based",
    }
    for name, sweeps in results.items():
        print_figure(f"Fig. 10 local: {name}", sweeps, notes[name])
    uni = results["uniform"]
    assert uni["SW-less"].max_accepted > uni["SW-based"].max_accepted
    if "bit-shuffle" in results:
        shuf = results["bit-shuffle"]
        # 2B does not lift the bit-shuffle bottleneck (inter-C-group bound)
        assert (
            shuf["SW-less-2B"].max_accepted
            < 1.35 * shuf["SW-less"].max_accepted
        )
