"""Fig. 10(c-f): local (intra-W-group) performance under four patterns.

Paper setup: one W-group of the radix-16-equivalent system (8 C-groups x
4 chips = 32 chips / 128 nodes) vs one group of the radix-16 Dragonfly.
Paper result: switch-less saturates 1.2-2x higher than switch-based for
uniform / bit-reverse / bit-transpose; bit-shuffle is inter-C-group-link
bound, so 2B does not help there.

Runs the bundled ``fig10_local`` study of the scenario library (the
quick scale keeps only the uniform and bit-reverse panels).
"""

from conftest import once, run_library_study


def bench_fig10_local(benchmark):
    result = once(benchmark, lambda: run_library_study("fig10_local"))
    uni = result["uniform"]
    assert uni["SW-less"].max_accepted > uni["SW-based"].max_accepted
    if "bit-shuffle" in result:
        shuf = result["bit-shuffle"]
        # 2B does not lift the bit-shuffle bottleneck (inter-C-group bound)
        assert (
            shuf["SW-less-2B"].max_accepted
            < 1.35 * shuf["SW-less"].max_accepted
        )
