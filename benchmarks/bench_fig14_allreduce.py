"""Fig. 14: ring-based AllReduce within a C-group and within a W-group.

Paper results:
(a) intra-C-group: switch-based saturates at 1 flit/cycle/chip (single
    injection channel; the bidirectional ring only adds ejection
    congestion), switch-less reaches 2 (uni) and 4 (bi) thanks to its
    four injection ports per chip;
(b) intra-W-group: both reach 1 with unidirectional rings (inter-C-group
    links bound); bidirectional switch-less reaches ~1.3, and 2B lifts
    it to ~2 — twice the switch-based Dragonfly.

Runs the bundled ``fig14_allreduce`` study of the scenario library.
"""

from conftest import once, run_library_study


def bench_fig14_allreduce(benchmark):
    result = once(benchmark, lambda: run_library_study("fig14_allreduce"))
    cg, wg = result["intra-cgroup"], result["intra-wgroup"]
    assert cg["SW-less-Uni"].max_accepted > 1.4 * cg["SW-based-Uni"].max_accepted
    assert cg["SW-less-Bi"].max_accepted > cg["SW-less-Uni"].max_accepted
    assert wg["SW-less-Bi-2B"].max_accepted > wg["SW-based-Bi"].max_accepted
