"""Fig. 14: ring-based AllReduce within a C-group and within a W-group.

Paper results:
(a) intra-C-group: switch-based saturates at 1 flit/cycle/chip (single
    injection channel; the bidirectional ring only adds ejection
    congestion), switch-less reaches 2 (uni) and 4 (bi) thanks to its
    four injection ports per chip;
(b) intra-W-group: both reach 1 with unidirectional rings (inter-C-group
    links bound); bidirectional switch-less reaches ~1.3, and 2B lifts
    it to ~2 — twice the switch-based Dragonfly.
"""

from conftest import (
    MESH_ARCH,
    SCALE,
    SWITCH_ARCH,
    dragonfly_arch,
    make_spec,
    once,
    print_figure,
    run_spec_curves,
    sim_params,
    switchless_arch,
)


def _run_intra_cgroup(params):
    rates = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    specs = {}
    for bi, tag in ((False, "Uni"), (True, "Bi")):
        specs[f"SW-based-{tag}"] = make_spec(
            f"SW-based-{tag}", traffic="ring_allreduce",
            traffic_opts={"bidirectional": bi},
            rates=rates, params=params, **SWITCH_ARCH,
        )
        specs[f"SW-less-{tag}"] = make_spec(
            f"SW-less-{tag}", traffic="ring_allreduce",
            traffic_opts={"bidirectional": bi, "scope": "snake"},
            rates=rates, params=params, **MESH_ARCH,
        )
    return run_spec_curves(specs, stop_after_saturation=2)


def _run_intra_wgroup(params):
    wgroups = 41 if SCALE == "full" else 2
    rates = [0.4, 0.8, 1.1, 1.5, 2.0]
    sless = {"preset": "radix16_equiv", "num_wgroups": wgroups,
             "cgroups_per_wafer": 1}
    dfly_arch = dragonfly_arch(preset="radix16", g=wgroups)
    sless_arch = switchless_arch(**sless)
    sless2b_arch = switchless_arch(mesh_capacity=2, **sless)

    def ring(bi):
        return {"bidirectional": bi, "scope": ("group", 0)}

    specs = {}
    for bi, tag in ((False, "Uni"), (True, "Bi")):
        specs[f"SW-based-{tag}"] = make_spec(
            f"SW-based-{tag}", traffic="ring_allreduce",
            traffic_opts=ring(bi), rates=rates, params=params, **dfly_arch,
        )
        specs[f"SW-less-{tag}"] = make_spec(
            f"SW-less-{tag}", traffic="ring_allreduce",
            traffic_opts=ring(bi), rates=rates, params=params, **sless_arch,
        )
    specs["SW-less-Bi-2B"] = make_spec(
        "SW-less-Bi-2B", traffic="ring_allreduce",
        traffic_opts=ring(True), rates=rates, params=params, **sless2b_arch,
    )
    return run_spec_curves(specs, stop_after_saturation=2)


def bench_fig14_allreduce(benchmark):
    params = sim_params()
    cg, wg = once(
        benchmark, lambda: (_run_intra_cgroup(params), _run_intra_wgroup(params))
    )
    print_figure(
        "Fig. 14(a) AllReduce intra-C-group", cg,
        "paper: SW-based 1 (uni=bi); SW-less 2 (uni) and 4 (bi)",
    )
    print_figure(
        "Fig. 14(b) AllReduce intra-W-group", wg,
        "paper: both 1 uni; SW-less-Bi ~1.3; SW-less-Bi-2B ~2",
    )
    assert cg["SW-less-Uni"].max_accepted > 1.4 * cg["SW-based-Uni"].max_accepted
    assert cg["SW-less-Bi"].max_accepted > cg["SW-less-Uni"].max_accepted
    assert wg["SW-less-Bi-2B"].max_accepted > wg["SW-based-Bi"].max_accepted
