"""Fig. 14: ring-based AllReduce within a C-group and within a W-group.

Paper results:
(a) intra-C-group: switch-based saturates at 1 flit/cycle/chip (single
    injection channel; the bidirectional ring only adds ejection
    congestion), switch-less reaches 2 (uni) and 4 (bi) thanks to its
    four injection ports per chip;
(b) intra-W-group: both reach 1 with unidirectional rings (inter-C-group
    links bound); bidirectional switch-less reaches ~1.3, and 2B lifts
    it to ~2 — twice the switch-based Dragonfly.
"""

from conftest import SCALE, once, pick_rates, print_figure, run_curves, sim_params

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import (
    DragonflyRouting,
    SwitchlessRouting,
    SwitchStarRouting,
    XYMeshRouting,
)
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly
from repro.topology.mesh import MeshSpec, build_mesh, build_switch_with_terminals
from repro.traffic import RingAllReduceTraffic


def _run_intra_cgroup(params):
    mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    sw = build_switch_with_terminals(4, terminal_latency=1)
    configs = {}
    for bi, tag in ((False, "Uni"), (True, "Bi")):
        configs[f"SW-based-{tag}"] = (
            sw.graph, SwitchStarRouting(sw),
            RingAllReduceTraffic(sw.graph, bidirectional=bi),
        )
        configs[f"SW-less-{tag}"] = (
            mesh.graph, XYMeshRouting(mesh),
            RingAllReduceTraffic(
                mesh.graph, mesh.snake_chip_nodes(), bidirectional=bi
            ),
        )
    return run_curves(
        configs, pick_rates([0.5, 1.0, 1.5, 2.0, 3.0, 4.0]),
        params=params, stop_after_saturation=2,
    )


def _run_intra_wgroup(params):
    wgroups = 41 if SCALE == "full" else 2
    dfly = build_dragonfly(DragonflyConfig.radix16(g=wgroups))
    sless = build_switchless(
        SwitchlessConfig.radix16_equiv(num_wgroups=wgroups,
                                       cgroups_per_wafer=1)
    )
    sless2b = build_switchless(
        SwitchlessConfig.radix16_equiv(num_wgroups=wgroups,
                                       cgroups_per_wafer=1, mesh_capacity=2)
    )
    configs = {}
    for bi, tag in ((False, "Uni"), (True, "Bi")):
        configs[f"SW-based-{tag}"] = (
            dfly.graph, DragonflyRouting(dfly, "minimal", vc_spread=2),
            RingAllReduceTraffic(dfly.graph, dfly.group_nodes(0),
                                 bidirectional=bi),
        )
        configs[f"SW-less-{tag}"] = (
            sless.graph, SwitchlessRouting(sless, "minimal"),
            RingAllReduceTraffic(sless.graph, sless.group_nodes(0),
                                 bidirectional=bi),
        )
    configs["SW-less-Bi-2B"] = (
        sless2b.graph, SwitchlessRouting(sless2b, "minimal"),
        RingAllReduceTraffic(sless2b.graph, sless2b.group_nodes(0),
                             bidirectional=True),
    )
    return run_curves(
        configs, pick_rates([0.4, 0.8, 1.1, 1.5, 2.0]),
        params=params, stop_after_saturation=2,
    )


def bench_fig14_allreduce(benchmark):
    params = sim_params()
    cg, wg = once(
        benchmark, lambda: (_run_intra_cgroup(params), _run_intra_wgroup(params))
    )
    print_figure(
        "Fig. 14(a) AllReduce intra-C-group", cg,
        "paper: SW-based 1 (uni=bi); SW-less 2 (uni) and 4 (bi)",
    )
    print_figure(
        "Fig. 14(b) AllReduce intra-W-group", wg,
        "paper: both 1 uni; SW-less-Bi ~1.3; SW-less-Bi-2B ~2",
    )
    assert cg["SW-less-Uni"].max_accepted > 1.4 * cg["SW-based-Uni"].max_accepted
    assert cg["SW-less-Bi"].max_accepted > cg["SW-less-Uni"].max_accepted
    assert wg["SW-less-Bi-2B"].max_accepted > wg["SW-based-Bi"].max_accepted
