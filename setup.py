"""Shim for legacy editable installs in offline environments without wheel.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` where the ``wheel`` package (and a
network to fetch it) is unavailable.
"""

from setuptools import setup

setup()
