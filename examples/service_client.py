#!/usr/bin/env python3
"""Simulation-as-a-service tour: submit, stream, dedupe.

Walks the `repro.service` stack end to end without needing a separate
terminal: it starts an in-process server on an ephemeral port, then
acts as a client against it —

1. submit the bundled CI smoke study and stream its per-point
   telemetry as it computes;
2. resubmit the identical study and watch it replay instantly from the
   content-addressed result store (zero recomputation);
3. submit the same study from two "clients" at once and see the second
   attach to the first's in-flight execution (single-flight dedupe).

Against a long-running daemon the client half is the same, minus the
server setup:

    repro-dragonfly serve --port 8642 --cache-dir ~/.cache/repro &
    python examples/service_client.py http://127.0.0.1:8642

Run:  python examples/service_client.py
"""

import sys
import tempfile
import threading

from repro.api import build_study
from repro.service import ServiceClient, create_server


def start_local_server():
    """An in-process service on an ephemeral port, store in a temp dir."""
    cache_dir = tempfile.mkdtemp(prefix="repro-service-demo-")
    server = create_server(host="127.0.0.1", port=0, cache_dir=cache_dir)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    print(f"service on http://{host}:{port} (store: {cache_dir})\n")
    return server, f"http://{host}:{port}"


def show_point(event):
    if event["event"] != "point":
        return
    res = event["result"]
    print(
        f"  [{event['points_done']}/{event['points_total']}] "
        f"{event['scenario']}/{event['curve']} rate={event['rate']:g} "
        f"lat={res['avg_latency']:.1f}cyc acc={res['accepted_rate']:.3f} "
        f"({event['source']})"
    )


def main() -> int:
    if len(sys.argv) > 1:
        server, address = None, sys.argv[1]
        print(f"using external service at {address}\n")
    else:
        server, address = start_local_server()
    client = ServiceClient(address)
    study = build_study("smoke", scale="quick")

    # -- 1. submit and stream ------------------------------------------
    print("== cold submit: every point is simulated ==")
    job = client.submit_study(study, client="demo")
    print(f"job {job['id']} ({job['points_total']} points)")
    result = client.watch(job["id"], on_event=show_point)
    print(f"-> {result.name!r} done\n")

    # -- 2. resubmit: served from the result store ---------------------
    print("== warm resubmit: replayed from the shared store ==")
    again = client.submit_study(study, client="demo")
    client.watch(again["id"], on_event=show_point)
    status = client.status(again["id"])
    print(
        f"-> {status['cache_hits']}/{status['points_total']} points "
        "from cache, nothing recomputed\n"
    )

    # -- 3. concurrent dedupe ------------------------------------------
    print("== two clients, one computation (single-flight) ==")
    fresh = study.with_metrics(["link_util"])  # a key nobody ran yet
    first = client.submit_study(fresh, client="alice")
    second = client.submit_study(fresh, client="bob")
    print(f"alice: job {first['id']} attached={first['attached']}")
    print(
        f"bob:   job {second['id']} attached={second['attached']} "
        f"(to {second.get('attached_to')})"
    )
    res_a = client.watch(first["id"])
    res_b = client.watch(second["id"])
    same = res_a.to_dict()["scenarios"] == res_b.to_dict()["scenarios"]
    print(f"-> both streams ended; identical results: {same}\n")

    stats = client.stats()
    store = stats["store"]
    print(
        f"store after the demo: {store['entries']} entries, "
        f"{store['bytes']} bytes, {store['hits']} hits"
    )

    if server is not None:
        client.shutdown()
    return 0 if same else 1


if __name__ == "__main__":
    sys.exit(main())
