#!/usr/bin/env python3
"""Routing laboratory: VC budgets and deadlock freedom (Sec. IV).

Reproduces the routing-design story of the paper interactively:

* the baseline scheme spends one VC per C-group on the path (4 minimal /
  6 non-minimal);
* the reduced scheme gets to 3 / 4 VCs — one more than the traditional
  Dragonfly, the paper's headline;
* the channel-dependency-graph checker shows where the reduction is
  provably safe (IO-router C-groups, Fig. 8(a)) and where it is not
  (mesh C-groups with corner chips — the reproduction's finding on
  Property 1(c1)).

Run:  python examples/routing_deadlock_lab.py
"""

from repro.core import SwitchlessConfig, build_switchless
from repro.routing import (
    DragonflyRouting,
    SwitchlessRouting,
    verify_deadlock_free,
)
from repro.topology.dragonfly import DragonflyConfig, build_dragonfly


def check(label, graph, routing, max_pairs=1500):
    rep = verify_deadlock_free(graph, routing, max_pairs=max_pairs)
    verdict = "ACYCLIC" if rep.acyclic else "CYCLIC"
    print(f"  {label:46s} VCs={routing.num_vcs}  {verdict:8s}"
          f" ({rep.num_dependencies} dependencies)")
    return rep


def main() -> None:
    print("traditional switch-based Dragonfly (reference VC budget):")
    dfly = build_dragonfly(DragonflyConfig.radix8())
    check("  minimal (Kim et al.)", dfly.graph,
          DragonflyRouting(dfly, "minimal"))
    check("  Valiant", dfly.graph, DragonflyRouting(dfly, "valiant"),
          max_pairs=400)

    print("\nswitch-less Dragonfly, mesh C-groups (Fig. 8(b)):")
    mesh_sys = build_switchless(SwitchlessConfig.small_equiv())
    check("  baseline minimal (ordinal VCs)", mesh_sys.graph,
          SwitchlessRouting(mesh_sys, "minimal"))
    check("  baseline Valiant", mesh_sys.graph,
          SwitchlessRouting(mesh_sys, "valiant"), max_pairs=300)
    rep = check("  reduced minimal (paper Sec. IV-B)", mesh_sys.graph,
                SwitchlessRouting(mesh_sys, "minimal", policy="reduced"),
                max_pairs=2500)
    if not rep.acyclic and rep.cycle:
        print("    one dependency cycle (first 6 channels):")
        for lid, vc in rep.cycle[:6]:
            link = mesh_sys.graph.links[lid]
            src = mesh_sys.graph.nodes[link.src].coords
            dst = mesh_sys.graph.nodes[link.dst].coords
            print(f"      vc{vc} {link.klass:7s} {src} -> {dst}")

    print("\nswitch-less Dragonfly, IO-router C-groups (Fig. 8(a)):")
    io_sys = build_switchless(
        SwitchlessConfig.small_equiv(cgroup_style="io-router")
    )
    check("  reduced minimal (3 VCs)", io_sys.graph,
          SwitchlessRouting(io_sys, "minimal", policy="reduced"))
    check("  reduced Valiant 'any' (4 VCs)", io_sys.graph,
          SwitchlessRouting(io_sys, "valiant", policy="reduced"),
          max_pairs=400)

    print("\nconclusion: the paper's '+1 VC vs traditional Dragonfly'")
    print("holds provably on IO-router C-groups; plain meshes need the")
    print("baseline scheme (or hardware support beyond strict labeling).")


if __name__ == "__main__":
    main()
