#!/usr/bin/env python3
"""Fault & resilience tour: a failure-rate sweep from spec to report.

Walks the `repro.faults` subsystem end to end:

1. sample a fault instance on a switch-less wafer and inspect the
   degraded topology's recomputed properties;
2. verify the fault-aware routing stays deadlock free on that instance;
3. build a failure-rate x load resilience study (switch-less vs
   switch-based Dragonfly) and run it with workers + an on-disk cache;
4. condense the results into the saturation-retention report;
5. show that degraded points never alias healthy cache entries.

Run:  python examples/resilience_study.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    resilience_report,
    resilience_study,
    verify_study_faults,
)
from repro.core import SwitchlessConfig, build_switchless
from repro.engine import ResultCache, point_key
from repro.faults import FaultAwareRouting, FaultSpec, degrade
from repro.network import SimParams
from repro.routing import SwitchlessRouting, verify_deadlock_free

workdir = Path(tempfile.mkdtemp(prefix="repro-resilience-"))

# 1. one concrete fault instance: 5% of channels + 2% of dies fail
system = build_switchless(SwitchlessConfig.radix8_equiv())
fault = FaultSpec(model="random", link_rate=0.05, die_rate=0.02, seed=7)
degraded = degrade(system, fault)
print(f"fault instance: {degraded.faults.describe()}")
props = degraded.properties()
print(
    f"  connected={props['connected']}  "
    f"diameter {props['diameter']}  "
    f"path-diversity loss {props['path_diversity_loss']:.0%}  "
    f"reach {props['terminal_reach_fraction']:.0%}"
)

# 2. the degraded routing is still provably deadlock free: surviving
# base routes keep their VCs, repaired routes ride one extra repair VC
routing = FaultAwareRouting(SwitchlessRouting(system, "minimal"), degraded)
report = verify_deadlock_free(system.graph, routing, max_pairs=300)
print(f"  {report.describe()}")
assert report.acyclic

# 3. the resilience study: failure rate x offered load, both arches
study = resilience_study(
    arches=("switchless", "dragonfly"),
    failure_rates=(0.0, 0.03, 0.08),
    rates=(0.1, 0.2, 0.3, 0.45),
    preset="small_equiv",
    params=SimParams(warmup_cycles=150, measure_cycles=400,
                     drain_cycles=200, seed=3),
    fault_seed=7,
)
for rec in verify_study_faults(study, max_pairs=200):
    status = "ok" if rec["acyclic"] else "CYCLE"
    print(f"  verify {rec['scenario']}/{rec['label']}: {status}")

cache = ResultCache(workdir / "cache")
result = study.run(workers=2, cache=cache)

# 4. the retention report: how much healthy throughput survives
print()
print(resilience_report(result).render())

# 5. degraded points hash apart from healthy ones in the cache
healthy = study["fail-0"].specs[0]
faulty = study["fail-0.08"].specs[0]
assert point_key(healthy, 0.1) != point_key(faulty, 0.1)
print(f"\n{len(cache)} cached point(s) under {cache.root} "
      "(healthy and degraded keys are disjoint)")
result.save(workdir / "resilience.json")
print(f"results written to {workdir / 'resilience.json'}")
