#!/usr/bin/env python3
"""Closed-loop collectives: analytic ring model vs simulated CCT.

The paper sizes its AllReduce story (Sec. III-B4, Fig. 14) with the
closed-form ring step model: ``2(n-1)`` steps moving ``size/n`` flits
each at the sustained ring bandwidth.  ``repro.workload`` now *runs*
that collective closed-loop — phases release only when their
dependencies drain — so the model is checkable against simulation:

1. drive ``ring_allreduce`` over one C-group at a pacing bandwidth and
   read the measured completion time off the ``cct`` channel;
2. compare against ``ring_allreduce_steps`` at the same message volume
   and bandwidth, reporting the model-vs-sim delta (the gap is the
   per-phase drain latency the closed form ignores);
3. stream the same collective through the simulation service and watch
   the per-point ``cct`` summaries arrive live.

Run:  python examples/workload_cct.py
"""

import tempfile
import threading

from repro.api import build_study
from repro.engine import ExperimentSpec
from repro.engine.executor import simulate_point
from repro.network import SimParams
from repro.service import ServiceClient, create_server
from repro.traffic import ring_allreduce_steps

#: one C-group: a 4x4 on-chip-router mesh of four 2x2-chiplet chips.
MESH = {
    "topology": "mesh", "topology_opts": {"dim": 4, "chiplet_dim": 2},
    "routing": "xy_mesh",
}
VOLUME = 512        # flits each node contributes to the collective
RATE = 0.5          # pacing bandwidth, flits/cycle/chip
NODES_PER_CHIP = 4  # each 2x2-chiplet chip exposes four terminals


def measured_cct():
    """Makespan of the closed-loop ring AllReduce, from the cct channel."""
    spec = ExperimentSpec.create(
        traffic="uniform",
        params=SimParams(seed=11),
        rates=(RATE,),
        workload="ring_allreduce",
        workload_opts={"volume": VOLUME},
        metrics=("cct",),
        **MESH,
    )
    result = simulate_point(spec, RATE)
    channel = result.channels["cct"]
    return channel.summary, channel.rows


def main() -> None:
    summary, rows = measured_cct()
    chips = int(summary["phases"]) // 2 + 1  # 2(n-1) phases -> n
    makespan = summary["makespan"]

    # The model's message is per *chip* (each of the m nodes contributes
    # volume flits) and its bandwidth is the pacing rate per chip.
    model = ring_allreduce_steps(
        ranks=chips,
        message_flits=VOLUME * NODES_PER_CHIP,
        ring_bandwidth=RATE,
    )
    delta = (makespan - model.completion_cycles) / model.completion_cycles

    print("closed-loop ring AllReduce on one C-group "
          f"({chips} chips, {VOLUME} flits/node, rate {RATE:g})")
    print(f"{'phase':>6s} {'release':>8s} {'done':>8s} {'cct':>6s}")
    for name, release, _, done, cct, *_ in rows:
        print(f"{name:>6s} {release:>8d} {done:>8d} {cct:>6d}")
    print(f"\nmeasured makespan      {makespan:8.0f} cycles")
    print(f"ring step model        {model.completion_cycles:8.0f} cycles "
          f"({model.steps} steps x {model.flits_per_step:.0f} flits "
          f"@ {RATE:g} flits/cycle/chip)")
    print(f"model-vs-sim delta     {delta:+8.1%}  "
          "(pacing fence-posts and drain latency the closed form "
          "ignores)")

    # -- the same collective, live through the service -----------------
    print("\nstreaming the bundled workload_smoke study via the service:")
    cache_dir = tempfile.mkdtemp(prefix="repro-workload-demo-")
    server = create_server(host="127.0.0.1", port=0, cache_dir=cache_dir)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        study = build_study("workload_smoke", scale="quick")
        job = client.submit_study(study)["id"]
        for event in client.stream(job):
            if event["event"] != "point":
                continue
            cct = (event["result"].get("channels") or {}).get("cct")
            if not cct:
                continue
            print(
                f"  {event['curve']:>14s} rate={event['rate']:g} "
                f"makespan={cct['summary']['makespan']:.0f}cyc "
                f"max_cct={cct['summary']['max_cct']:.0f}cyc "
                f"({event['source']})"
            )
    finally:
        server.initiate_shutdown()
        server.server_close()
    print("done.")


if __name__ == "__main__":
    main()
