#!/usr/bin/env python3
"""Observability tour: per-link load and misrouting with metric probes.

Walks the `repro.metrics` probe API end to end:

1. attach probes to a single simulation and read the typed channels
   off the result;
2. print a per-link load table — the Fig. 13-style view of *where*
   traffic goes, not just how fast it gets there;
3. run minimal vs Valiant routing under hotspot traffic through the
   scenario layer (`metrics` axis on the specs) and compare misroute
   ratios and link-load imbalance;
4. export the link telemetry as long-form CSV.

Run:  python examples/link_utilization.py
"""

from repro.analysis import hot_links, link_load_summary, misroute_table
from repro.api import Scenario, Study, make_spec, sim_params
from repro.engine.spec import ExperimentSpec, build_experiment
from repro.network import SimParams, Simulator

# ----------------------------------------------------------------------
# 1. probes on a bare simulation
# ----------------------------------------------------------------------
params = SimParams(
    warmup_cycles=150, measure_cycles=500, drain_cycles=250, seed=11
)
spec = ExperimentSpec.create(
    topology="switchless",
    topology_opts={"preset": "small_equiv"},
    routing="switchless",
    routing_opts={"mode": "minimal"},
    traffic="uniform",
    params=params,
)
graph, routing, traffic = build_experiment(spec)
sim = Simulator(
    graph, routing, traffic, params,
    probes=["link_util", "latency_hist", "timeseries"],
)
res = sim.run(0.35)
print(f"simulated: {res}")
print()

# ----------------------------------------------------------------------
# 2. where did the traffic go?
# ----------------------------------------------------------------------
link_util = res.channels["link_util"]
print(link_util.format_table(max_rows=0).splitlines()[0])
print("ten hottest links (flits during the measurement window):")
print(f"{'link':>6} {'src':>5} {'dst':>5} {'flits':>7} {'load':>7}")
for link, src, dst, flits, load, _share in hot_links(link_util, 10):
    print(f"{link:6d} {src:5d} {dst:5d} {flits:7d} {load:7.3f}")
print()

# ----------------------------------------------------------------------
# 3. minimal vs Valiant under hotspot traffic (Fig. 13 style)
# ----------------------------------------------------------------------
arch = {
    "topology": "switchless",
    "topology_opts": {"preset": "small_equiv"},
    "routing": "switchless",
}
quick = sim_params("quick")
specs = tuple(
    make_spec(
        label,
        traffic="hotspot",
        traffic_opts={"num_hot": 4},
        rates=[0.1, 0.25],
        params=quick,
        routing_opts={"mode": mode},
        **{k: v for k, v in arch.items() if k != "routing_opts"},
    ).with_metrics(["link_util", "misroute"])
    for label, mode in (("SW-less-Min", "minimal"), ("SW-less-Mis", "valiant"))
)
study = Study(
    name="fig13_probe_demo",
    scenarios=(
        Scenario(
            name="hotspot",
            title="hotspot: minimal vs Valiant, with probes",
            specs=specs,
        ),
    ),
)
result = study.run(workers=1)
print(misroute_table(result))
print()
for scn in result.scenarios:
    for curve in scn.curves:
        top = curve.points[-1]
        s = link_load_summary(top)
        print(
            f"{curve.label:12s} rate={top.rate:.2f}  "
            f"max link load={s['max_flits_per_cycle']:.3f} "
            f"(imbalance {s['imbalance']:.1f}x mean)"
        )
print()

# ----------------------------------------------------------------------
# 4. long-form CSV export of the telemetry
# ----------------------------------------------------------------------
csv = result.channel_csv("link_util")
print("channel_csv('link_util') header + first rows:")
for line in csv.splitlines()[:4]:
    print(f"  {line}")
print(f"  ... ({csv.count(chr(10)) - 1} rows total)")
