#!/usr/bin/env python3
"""Datacenter cost explorer: regenerate and extend Table III.

Prints the paper's Table III from the cost models, then explores what
the paper's Sec. III-B1 scalability equation implies: the smallest
balanced switch-less configuration reaching a target system size, with
its cabinets and cable length compared against an equally sized
switch-based Dragonfly.

Run:  python examples/topology_cost_explorer.py [target_chips]
"""

import sys

from repro.analysis import (
    dragonfly_cost,
    format_table_iii,
    search_configurations,
    switchless_cost,
)
from repro.core import SwitchlessConfig
from repro.topology.dragonfly import DragonflyConfig


def best_dragonfly_for(target: int) -> DragonflyConfig:
    """Smallest balanced (a=2p, h=p) switch-based Dragonfly >= target."""
    p = 1
    while True:
        cfg = DragonflyConfig(p=p, a=2 * p, h=p)
        if cfg.num_chips >= target:
            return cfg
        p += 1


def main() -> None:
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000

    print(format_table_iii())

    print(f"\n==== balanced switch-less configs reaching {target:,} chips ====")
    configs = search_configurations(min_chips=target, max_chips=target * 50)
    for c in configs[:5]:
        print(
            f"  m={c['m']} n={c['n']} ab={c['ab']} h={c['h']} "
            f"g={c['g']:5d}  N={c['N']:>10,}"
        )
    if not configs:
        print("  (none in range; raise the target)")
        return

    pick = configs[0]
    sl_cfg = SwitchlessConfig(
        mesh_dim=pick["m"], chiplet_dim=1,
        num_local=pick["ab"] - 1, num_global=pick["h"],
        cgroups_per_wafer=pick["ab"],
    )
    sl = switchless_cost(sl_cfg)
    df = dragonfly_cost(best_dragonfly_for(target), "balanced Dragonfly")

    print(f"\n==== cost at ~{target:,} chips ====")
    for c in (df, sl):
        print(f"  {c.name:24s} procs={c.num_processors:>9,} "
              f"switches={c.num_switches:>6} cabinets={c.num_cabinets:>5} "
              f"cables={c.cable_count/1e3:6.0f}K "
              f"length={c.cable_length_coeff/1e3:5.0f}K*E")
    if df.cable_length_coeff > 0:
        # the two candidates land on different N; compare per chip
        sl_per = sl.cable_length_coeff / sl.num_processors
        df_per = df.cable_length_coeff / df.num_processors
        print(
            f"\n  cable length per chip: switch-less "
            f"{sl_per / df_per:.2f}x the switch-based Dragonfly "
            f"(paper's same-size comparison: less than half)"
        )


if __name__ == "__main__":
    main()
