#!/usr/bin/env python3
"""Quickstart: build a switch-less Dragonfly, route, simulate, analyse.

Walks the whole public API in five steps:

1. configure and build a wafer-based switch-less Dragonfly;
2. inspect its structure (W-groups, C-groups, ports);
3. verify the routing algorithm is deadlock free;
4. run the cycle-accurate simulator on uniform traffic;
5. compare the measured saturation against the paper's closed-form
   throughput bounds (Eqs. 2/4/5).

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    global_throughput_bound,
    intra_cgroup_throughput_bound,
    local_throughput_bound,
    switchless_diameter,
)
from repro.core import SwitchlessConfig, build_switchless
from repro.network import SimParams, sweep_rates
from repro.routing import SwitchlessRouting, verify_deadlock_free
from repro.traffic import UniformTraffic


def main() -> None:
    # 1. configure: the CI-scale twin of the paper's radix-16 system —
    #    4x4-node C-groups (4 chips), 3 local + 2 global ports, 9 W-groups.
    cfg = SwitchlessConfig.small_equiv()
    print("configuration")
    print(f"  C-groups per W-group (a*b): {cfg.cgroups_per_wgroup}")
    print(f"  external ports per C-group (k): {cfg.num_ports}")
    print(f"  W-groups (g): {cfg.num_wgroups_effective}")
    print(f"  chips (N): {cfg.num_chips} ({cfg.num_nodes} on-chip nodes)")

    # 2. build the system graph
    system = build_switchless(cfg)
    print(f"\nbuilt {system.graph}")
    print(f"  link classes: {system.graph.link_class_counts()}")
    d = switchless_diameter(cfg)
    print(f"  worst-case route (Eq. 7): {d.describe()}"
          f"  (~{d.latency_ns():.0f} ns at Table II costs)")

    # 3. deadlock-free minimal routing (baseline 4-VC policy)
    routing = SwitchlessRouting(system, "minimal")
    report = verify_deadlock_free(system.graph, routing, max_pairs=500)
    print(f"\nrouting: {report.describe()}")

    # 4. simulate a short latency-vs-load sweep
    params = SimParams(
        warmup_cycles=300, measure_cycles=1000, drain_cycles=400, seed=0
    )
    sweep = sweep_rates(
        system.graph, routing, UniformTraffic(system.graph),
        rates=[0.1, 0.25, 0.4, 0.55], params=params,
        label="uniform / global",
    )
    print()
    print(sweep.format_table())

    # 5. compare against the analytical bounds
    print("\nclosed-form bounds (flits/cycle/chip):")
    print(f"  T_global (Eq. 2) < {global_throughput_bound(cfg):.2f}"
          f"   measured max accepted: {sweep.max_accepted:.2f}")
    print(f"  T_local  (Eq. 4) < {local_throughput_bound(cfg):.2f}")
    print(f"  T_cgroup (Eq. 5) < {intra_cgroup_throughput_bound(cfg):.2f}")


if __name__ == "__main__":
    main()
