#!/usr/bin/env python3
"""Wafer feasibility study: sweep C-group floorplans (Fig. 9).

Explores how chiplet count, channel count and PHY choice trade off
against wafer-level feasibility: when do C-groups stop fitting, and how
much bisection/aggregate bandwidth does each point deliver compared to
a 25.6 Tb/s high-end switch ASIC?

Run:  python examples/wafer_feasibility.py
"""

from repro.layout import CGroupLayoutSpec, plan_cgroup_layout

SWITCH_ASIC_TBPS = 25.6 / 8 * 1.0  # 25.6 Tb/s -> 3.2 TB/s


def main() -> None:
    print(f"{'chiplets':>8s} {'ch/edge':>8s} {'edge mm':>8s} "
          f"{'bisect TB/s':>11s} {'aggr TB/s':>10s} {'pairs':>6s} "
          f"{'feasible':>8s}")
    for chiplets_per_side in (2, 3, 4, 5, 6):
        for channels in (3, 6, 9):
            spec = CGroupLayoutSpec(
                chiplets_per_side=chiplets_per_side,
                channels_per_edge=channels,
            )
            layout = plan_cgroup_layout(spec)
            print(
                f"{chiplets_per_side**2:8d} {channels:8d} "
                f"{layout.edge_mm:8.1f} {layout.bisection_tbps:11.1f} "
                f"{layout.aggregate_tbps:10.1f} "
                f"{layout.offwafer_diff_pairs:6d} "
                f"{str(layout.feasible()):>8s}"
            )

    print("\nreference: one of the fastest switch ASICs moves "
          f"{SWITCH_ASIC_TBPS:.1f} TB/s.")
    base = plan_cgroup_layout()
    print(
        f"the paper's Fig. 9 C-group ({base.summary()['chiplets']:.0f} "
        f"chiplets) provides {base.bisection_tbps:.1f} TB/s bisection and "
        f"{base.aggregate_tbps:.1f} TB/s aggregate on-wafer — "
        f"{base.bisection_tbps / SWITCH_ASIC_TBPS:.1f}x the switch."
    )


if __name__ == "__main__":
    main()
