#!/usr/bin/env python3
"""Scenario API tour: compose, run, export and reload a study.

Walks the `repro.api` facade end to end:

1. build a bundled library study (Fig. 10(a-b)) at quick scale;
2. compose a custom scenario from scratch with `compare_scenario`;
3. run both as one campaign with workers and an on-disk cache;
4. read the structured results (curves, saturation summaries);
5. export JSON + CSV and prove the file round-trip.

Run:  python examples/scenario_study.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    Study,
    StudyResult,
    build_study,
    compare_scenario,
    load_study,
)
from repro.network import SimParams

workdir = Path(tempfile.mkdtemp(prefix="repro-scenario-"))

# 1. a bundled figure study, scaled down for a fast demo
fig10 = build_study("fig10_intra_cgroup", scale="quick")
print(f"library study: {fig10.name!r} with scenarios {fig10.names()}")

# 2. a custom comparison: switch-less vs Dragonfly under bit-reverse
custom = compare_scenario(
    ["switchless", "dragonfly"],
    pattern="bit-reverse",
    scope="local",
    preset="small_equiv",
    rates=[0.2, 0.4, 0.6],
    params=SimParams(warmup_cycles=150, measure_cycles=400,
                     drain_cycles=200, seed=3),
    name="custom-bit-reverse",
)

# 3. one campaign, run through the parallel engine with a result cache
campaign = Study(
    name="demo",
    title="Scenario API demo",
    scenarios=(*fig10.scenarios, custom),
)
result = campaign.run(workers=2, cache=workdir / "cache")
print(result.render())

# 4. structured access: every level is addressable by name/label
panel = result["uniform"]
mesh = panel["2D-Mesh"]
print(f"\n2D-Mesh saturates ~{mesh.saturation_rate:.2f} "
      f"(max accepted {mesh.max_accepted:.2f} flits/cycle/chip)")
for row in result["custom-bit-reverse"].summary():
    print(f"  {row['label']:12s} max_accepted={row['max_accepted']:.2f}")

# 5. export and round-trip
json_path = result.save(workdir / "results.json")
(workdir / "results.csv").write_text(result.to_csv())
assert StudyResult.load(json_path) == result

# the campaign definition itself is data too
study_path = campaign.save(workdir / "campaign.json")
assert load_study(study_path) == campaign
print(f"\nresults + campaign written under {workdir}")
