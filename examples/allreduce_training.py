#!/usr/bin/env python3
"""AI-training collective: ring AllReduce on wafers vs switches.

The paper's motivating workload (Sec. III-B4, Fig. 4, Fig. 14): data-
parallel training spends its communication time in AllReduce, and the
single terminal-to-switch channel of a classic Dragonfly caps the ring
at 1 flit/cycle/chip.  The switch-less C-group gives every chip four
injection ports into the on-wafer mesh.

This example measures ring saturation bandwidth for both architectures
and converts it into AllReduce completion time for a model-gradient
exchange using the ring step model.

Run:  python examples/allreduce_training.py
"""

from repro.core import SwitchlessConfig, build_switchless
from repro.network import SimParams, sweep_rates
from repro.routing import SwitchStarRouting, XYMeshRouting
from repro.topology.mesh import MeshSpec, build_mesh, build_switch_with_terminals
from repro.traffic import RingAllReduceTraffic, ring_allreduce_steps

PARAMS = SimParams(
    warmup_cycles=300, measure_cycles=1200, drain_cycles=400, seed=3
)


def measure_ring(graph, routing, bidirectional, rates, label, scope=None):
    sweep = sweep_rates(
        graph, routing,
        RingAllReduceTraffic(graph, scope, bidirectional=bidirectional),
        rates, PARAMS, label=label,
    )
    return sweep.max_accepted


def main() -> None:
    # intra-C-group ring over 4 chips: mesh vs switch (Fig. 14(a))
    mesh = build_mesh(MeshSpec(dim=4, chiplet_dim=2))
    switch = build_switch_with_terminals(4, terminal_latency=1)

    print("measuring ring saturation bandwidth (flits/cycle/chip)...")
    results = {
        "switch / unidirectional": measure_ring(
            switch.graph, SwitchStarRouting(switch), False,
            [0.5, 0.9, 1.2], "sw-uni"),
        "switch / bidirectional": measure_ring(
            switch.graph, SwitchStarRouting(switch), True,
            [0.5, 0.9, 1.2], "sw-bi"),
        "wafer mesh / unidirectional": measure_ring(
            mesh.graph, XYMeshRouting(mesh), False,
            [1.0, 1.7, 2.2], "sl-uni", mesh.snake_chip_nodes()),
        "wafer mesh / bidirectional": measure_ring(
            mesh.graph, XYMeshRouting(mesh), True,
            [2.0, 3.0, 4.0], "sl-bi", mesh.snake_chip_nodes()),
    }
    for name, bw in results.items():
        print(f"  {name:30s} {bw:5.2f}")

    # convert to AllReduce completion time: 1 GiB of gradients over a
    # 512-chip W-group-sized ring, 256-bit flits -> 32 Mi flits
    message_flits = 32 * 1024 * 1024
    ranks = 512
    print(f"\nAllReduce of 1 GiB over {ranks} ranks "
          f"({message_flits / 1e6:.0f}M flits):")
    for name, bw in results.items():
        if bw <= 0:
            continue
        model = ring_allreduce_steps(ranks, message_flits, bw)
        print(
            f"  {name:30s} {model.completion_cycles/1e6:8.1f} Mcycles "
            f"({model.steps} steps)"
        )
    speedup = (
        results["wafer mesh / bidirectional"]
        / results["switch / bidirectional"]
    )
    print(f"\nwafer-mesh bidirectional ring speedup vs switch: "
          f"{speedup:.1f}x (paper: 4x at intra-C-group scale)")


if __name__ == "__main__":
    main()
