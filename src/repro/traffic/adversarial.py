"""Adversarial traffic (Sec. V-A3b): hotspot and worst-case patterns.

Both patterns are defined at *group* granularity (W-groups for the
switch-less architecture, Dragonfly groups for the switch-based baseline),
so they take a ``group_nodes`` mapping rather than a raw scope:

* **hotspot** — all communication confined within ``num_hot`` groups; with
  minimal routing only the few global channels among those groups carry
  traffic (3 of 40 per group for the paper's radix-16 setup);
* **worst-case (WC)** — every node of group ``i`` sends to a random node
  of group ``i+1``; minimal routing then funnels each group's traffic
  through a single global channel.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..topology.graph import NetworkGraph
from .base import TrafficPattern

__all__ = ["HotspotTraffic", "WorstCaseTraffic"]


class HotspotTraffic(TrafficPattern):
    """Uniform traffic confined to the first ``num_hot`` groups."""

    name = "hotspot"

    def __init__(
        self,
        graph: NetworkGraph,
        group_nodes: Callable[[int], Sequence[int]],
        num_groups: int,
        num_hot: int = 4,
    ):
        if num_hot < 2:
            raise ValueError("hotspot needs at least 2 groups")
        if num_hot > num_groups:
            raise ValueError(
                f"num_hot={num_hot} exceeds available groups {num_groups}"
            )
        scope: List[int] = []
        for gi in range(num_hot):
            scope.extend(group_nodes(gi))
        super().__init__(graph, scope)
        self.num_hot = num_hot

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        idx = self.index
        src_chip, _ = idx.node_pos[src]
        nchips = idx.num_chips
        d = rng.randrange(nchips - 1)
        if d >= src_chip:
            d += 1
        nodes = idx.chip_nodes[idx.chips[d]]
        return nodes[rng.randrange(len(nodes))]


class WorstCaseTraffic(TrafficPattern):
    """Group ``i`` sends to random nodes of group ``(i+1) mod g``."""

    name = "worst-case"

    def __init__(
        self,
        graph: NetworkGraph,
        group_nodes: Callable[[int], Sequence[int]],
        num_groups: int,
    ):
        if num_groups < 2:
            raise ValueError("worst-case traffic needs >= 2 groups")
        self._groups: List[List[int]] = [
            list(group_nodes(gi)) for gi in range(num_groups)
        ]
        scope = [nid for grp in self._groups for nid in grp]
        super().__init__(graph, scope)
        self._target_group: dict = {}
        for gi, grp in enumerate(self._groups):
            tgt = (gi + 1) % num_groups
            for nid in grp:
                self._target_group[nid] = tgt

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        tgt = self._groups[self._target_group[src]]
        return tgt[rng.randrange(len(tgt))]
