"""Collective traffic (Sec. V-A3c): ring-based AllReduce streams.

The paper evaluates AllReduce as a steady-state traffic pattern rather than
a timed collective: in a unidirectional ring each chip ``i`` streams its
segments to chip ``(i+1) mod N``; in a bidirectional ring it alternates
halves to ``(i-1)`` and ``(i+1)``.  On-chip node ``j`` of a chip talks to
node ``j`` of the neighbour chip — one stream per injection port, which is
how the switch-less architecture converts its 4 injection ports per chip
into up to 4 flits/cycle/chip of ring bandwidth (Fig. 14).

:func:`ring_allreduce_steps` additionally provides the algorithmic
step/volume model used by the examples to convert saturation bandwidth
into AllReduce completion time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..topology.graph import NetworkGraph
from .base import TrafficPattern

__all__ = ["RingAllReduceTraffic", "ring_allreduce_steps", "RingStepModel"]


class RingAllReduceTraffic(TrafficPattern):
    """Neighbour streams of a (bi)directional ring AllReduce.

    The ring is ordered by chip position in the scope.  With
    ``bidirectional=True`` each generated packet goes to the +1 or -1
    neighbour with equal probability, modelling the two half-segments of
    the bidirectional algorithm.
    """

    name = "ring-allreduce"

    def __init__(
        self,
        graph: NetworkGraph,
        scope: Optional[Sequence[int]] = None,
        *,
        bidirectional: bool = False,
    ):
        super().__init__(graph, scope)
        if self.index.num_chips < 2:
            raise ValueError("a ring needs at least 2 chips")
        if bidirectional and self.index.num_chips < 3:
            raise ValueError("a bidirectional ring needs at least 3 chips")
        self.bidirectional = bidirectional
        self.name = "ring-allreduce-bi" if bidirectional else "ring-allreduce-uni"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        idx = self.index
        ci, _ = idx.node_pos[src]
        n = idx.num_chips
        step = 1
        if self.bidirectional and rng.random() < 0.5:
            step = -1
        return idx.counterpart(src, (ci + step) % n, rng)


@dataclass(frozen=True)
class RingStepModel:
    """Closed-form ring AllReduce cost model.

    For ``n`` ranks and message size ``size`` (flits), ring AllReduce does
    ``2 (n - 1)`` steps moving ``size / n`` flits each; at a sustained ring
    bandwidth ``bw`` (flits/cycle/chip, e.g. the Fig. 14 saturation rate)
    the completion time is ``2 (n-1)/n * size / bw`` cycles.
    """

    ranks: int
    message_flits: int
    ring_bandwidth: float

    @property
    def steps(self) -> int:
        return 2 * (self.ranks - 1)

    @property
    def flits_per_step(self) -> float:
        return self.message_flits / self.ranks

    @property
    def completion_cycles(self) -> float:
        if self.ring_bandwidth <= 0:
            return float("inf")
        return self.steps * self.flits_per_step / self.ring_bandwidth


def ring_allreduce_steps(
    ranks: int, message_flits: int, ring_bandwidth: float
) -> RingStepModel:
    """Convenience constructor for :class:`RingStepModel`."""
    if ranks < 2:
        raise ValueError("AllReduce needs >= 2 ranks")
    if message_flits < 1:
        raise ValueError("message must be >= 1 flit")
    return RingStepModel(ranks, message_flits, ring_bandwidth)
