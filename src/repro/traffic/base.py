"""Traffic pattern interface and chip/node indexing helpers.

Patterns operate over a *scope*: an ordered list of terminal nodes (default:
every terminal in the graph).  The paper's injection rates are normalised
in flits/cycle/chip, so patterns also expose the number of chips in scope;
the simulator divides the per-chip rate across a chip's nodes.

Destination conventions:

* permutation patterns are defined over *node indices within the scope*
  (positions in the scope list).  Fixed points of the permutation do not
  generate traffic (their nodes are simply inactive); normalisation stays
  per total chips in scope, matching how offered load is usually reported;
* chip-granular patterns (rings, worst-case) map a source node ``(chip i,
  offset j)`` to the *same offset* on the destination chip, which models
  each on-chip node talking to its counterpart — the mapping the paper's
  collective analysis (Fig. 4, Sec. V-B5) assumes.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.graph import NetworkGraph

__all__ = ["TrafficPattern", "ChipIndex"]


class ChipIndex:
    """Chip/node bookkeeping over a scope of terminal nodes."""

    def __init__(self, graph: NetworkGraph, scope: Optional[Sequence[int]] = None):
        if scope is None:
            scope = graph.terminals()
        self.nodes: List[int] = list(scope)
        if not self.nodes:
            raise ValueError("traffic scope is empty")
        seen = set()
        for nid in self.nodes:
            if nid in seen:
                raise ValueError(f"node {nid} appears twice in scope")
            seen.add(nid)
            if not graph.nodes[nid].is_terminal:
                raise ValueError(f"node {nid} is not a terminal")
        # group scope nodes by chip, preserving scope order
        chip_order: List[int] = []
        chip_nodes: Dict[int, List[int]] = {}
        for nid in self.nodes:
            chip = graph.nodes[nid].chip
            if chip not in chip_nodes:
                chip_nodes[chip] = []
                chip_order.append(chip)
            chip_nodes[chip].append(nid)
        #: chip ids in scope order.
        self.chips: List[int] = chip_order
        #: chip id -> node ids (scope order).
        self.chip_nodes: Dict[int, List[int]] = chip_nodes
        #: node id -> (chip position in self.chips, offset within chip).
        self.node_pos: Dict[int, Tuple[int, int]] = {}
        for ci, chip in enumerate(chip_order):
            for off, nid in enumerate(chip_nodes[chip]):
                self.node_pos[nid] = (ci, off)
        #: node id -> index in self.nodes.
        self.node_index: Dict[int, int] = {
            nid: i for i, nid in enumerate(self.nodes)
        }

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_chips(self) -> int:
        return len(self.chips)

    def counterpart(self, src: int, dst_chip_pos: int, rng: random.Random) -> int:
        """Node on chip ``dst_chip_pos`` at the same offset as ``src``.

        Falls back to a random node of the chip when the offset does not
        exist there (heterogeneous chip sizes).
        """
        _, off = self.node_pos[src]
        nodes = self.chip_nodes[self.chips[dst_chip_pos]]
        if off < len(nodes):
            return nodes[off]
        return nodes[rng.randrange(len(nodes))]


class TrafficPattern(ABC):
    """Destination generator over a scope of terminal nodes."""

    name: str = "pattern"

    def __init__(self, graph: NetworkGraph, scope: Optional[Sequence[int]] = None):
        self.graph = graph
        self.index = ChipIndex(graph, scope)

    def active_nodes(self) -> Sequence[int]:
        """Nodes that generate traffic (default: the whole scope)."""
        return self.index.nodes

    def num_active_chips(self) -> int:
        """Chips used to normalise flits/cycle/chip (default: all in scope)."""
        return self.index.num_chips

    @abstractmethod
    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        """Destination node for a packet from ``src`` (None = drop)."""

    def dest_batch(self, srcs, vr):
        """Vectorized counterpart of :meth:`dest` (optional hook).

        ``srcs`` is an int64 array of source node ids (one per
        scheduled event, in event order); ``vr`` is a
        :class:`~repro.network.vecrandom.VecRandom` over the same
        stdlib RNG :meth:`dest` would have been handed.  A pattern that
        implements this must return an int64 array of destinations
        aligned with ``srcs`` (``-1`` encodes the scalar ``None``
        drop), and must consume ``vr`` *exactly* as the equivalent
        sequence of scalar :meth:`dest` calls would consume the RNG —
        that equivalence is what keeps the native core's batched
        pre-pass bit-identical to the scalar one (the caller commits
        ``vr`` back onto the RNG afterwards).

        Returning ``None`` declines (nothing consumed); the caller
        then falls back to per-event scalar :meth:`dest` calls.  The
        default declines, so patterns opt in explicitly.
        """
        return None
