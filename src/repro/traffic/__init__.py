"""Traffic patterns: unicast, adversarial and collective workloads."""

from .adversarial import HotspotTraffic, WorstCaseTraffic
from .base import ChipIndex, TrafficPattern
from .collectives import RingAllReduceTraffic, RingStepModel, ring_allreduce_steps
from .patterns import (
    BitReverseTraffic,
    BitShuffleTraffic,
    BitTransposeTraffic,
    PermutationTraffic,
    UniformTraffic,
)

__all__ = [
    "ChipIndex",
    "TrafficPattern",
    "UniformTraffic",
    "PermutationTraffic",
    "BitReverseTraffic",
    "BitShuffleTraffic",
    "BitTransposeTraffic",
    "HotspotTraffic",
    "WorstCaseTraffic",
    "RingAllReduceTraffic",
    "RingStepModel",
    "ring_allreduce_steps",
]
