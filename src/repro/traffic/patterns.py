"""Unicast traffic patterns: uniform and bit permutations (Sec. V-A3a).

Permutations follow Dally & Towles' standard definitions over ``b``-bit
node indices, applied to a node's position within the traffic scope:

* **bit-reverse**    ``d_i = s_{b-1-i}``
* **bit-shuffle**    (perfect shuffle) ``d_i = s_{(i-1) mod b}`` — rotate
  the source index left by one bit;
* **bit-transpose**  ``d_i = s_{(i + b/2) mod b}`` — swap index halves.

When the scope size is not a power of two, the permutation acts on the
largest ``2^b``-node prefix and remaining nodes send uniformly (documented
substitute: the paper's configs in Figs. 10(a-f) are powers of two, so
this only affects the full-system runs of Fig. 11).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from ..topology.graph import NetworkGraph
from .base import TrafficPattern

__all__ = [
    "UniformTraffic",
    "PermutationTraffic",
    "BitReverseTraffic",
    "BitShuffleTraffic",
    "BitTransposeTraffic",
]


def _scope_arrays(pattern: TrafficPattern):
    """Cached ``(node id -> scope index, scope index -> node id)``
    arrays for vectorized destination lookup."""
    arrs = getattr(pattern, "_scope_arrs", None)
    if arrs is None:
        idx = pattern.index
        nodes = np.asarray(idx.nodes, dtype=np.int64)
        pos = np.full(pattern.graph.num_nodes, -1, dtype=np.int64)
        pos[nodes] = np.arange(nodes.size, dtype=np.int64)
        arrs = pattern._scope_arrs = (pos, nodes)
    return arrs


class UniformTraffic(TrafficPattern):
    """Uniform random traffic over the scope.

    ``exclude="node"`` (default) draws destinations uniformly over all
    *other nodes* — the textbook uniform pattern, and the one that makes
    a single-chip terminal and a multi-node chip directly comparable.
    ``exclude="chip"`` additionally forbids a node's own chip, removing
    the cheap on-chip destinations.
    """

    name = "uniform"

    def __init__(self, graph, scope=None, *, exclude: str = "node"):
        super().__init__(graph, scope)
        if exclude not in ("node", "chip"):
            raise ValueError(f"unknown exclude mode {exclude!r}")
        self.exclude = exclude

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        idx = self.index
        if self.exclude == "node":
            n = idx.num_nodes
            if n < 2:
                return None
            i = idx.node_index[src]
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            return idx.nodes[j]
        src_chip, _ = idx.node_pos[src]
        nchips = idx.num_chips
        if nchips < 2:
            return None
        d = rng.randrange(nchips - 1)
        if d >= src_chip:
            d += 1
        nodes = idx.chip_nodes[idx.chips[d]]
        return nodes[rng.randrange(len(nodes))]

    def dest_batch(self, srcs, vr):
        """Vectorized ``exclude="node"`` draws (see the base hook).

        The scalar path consumes exactly one ``randrange(n - 1)`` per
        event, so the whole batch maps onto one
        :meth:`~repro.network.vecrandom.VecRandom.randbelow` call plus
        the self-skip shift.  ``exclude="chip"`` makes two *dependent*
        draws per event (chip, then node on that chip's variable-size
        list) and declines to the scalar path.
        """
        if self.exclude != "node":
            return None
        n = self.index.num_nodes
        srcs = np.asarray(srcs, dtype=np.int64)
        if n < 2:  # scalar dest() drops without consuming the RNG
            return np.full(srcs.size, -1, dtype=np.int64)
        draws = vr.randbelow(n - 1, srcs.size)
        if draws is None:
            return None
        pos, nodes = _scope_arrays(self)
        i = pos[srcs]
        return nodes[draws + (draws >= i)]


def _bits_for(n: int) -> int:
    """Largest b with 2**b <= n (0 when n < 2)."""
    b = 0
    while (1 << (b + 1)) <= n:
        b += 1
    return b


class PermutationTraffic(TrafficPattern):
    """Base class for bit-permutation patterns over node positions."""

    name = "permutation"

    def __init__(self, graph: NetworkGraph, scope: Optional[Sequence[int]] = None):
        super().__init__(graph, scope)
        n = self.index.num_nodes
        self._bits = _bits_for(n)
        self._pow2 = 1 << self._bits
        # precompute destinations; None marks fixed points (inactive)
        self._dest_of: List[Optional[int]] = []
        for i, nid in enumerate(self.index.nodes):
            if i < self._pow2:
                j = self._permute(i, self._bits)
                self._dest_of.append(None if j == i else self.index.nodes[j])
            else:
                self._dest_of.append(nid)  # sentinel: uniform fallback
        # drop fixed points from the active set
        self._active = [
            nid
            for i, nid in enumerate(self.index.nodes)
            if not (i < self._pow2 and self._dest_of[i] is None)
        ]

    def _permute(self, i: int, bits: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def active_nodes(self) -> Sequence[int]:
        return self._active

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        i = self.index.node_index[src]
        d = self._dest_of[i]
        if i >= self._pow2:
            # uniform fallback for nodes beyond the power-of-two prefix
            n = self.index.num_nodes
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            return self.index.nodes[j]
        return d

    def dest_batch(self, srcs, vr):
        """Vectorized permutation lookup (see the base hook).

        Sources inside the power-of-two prefix are a pure table lookup
        (no RNG); only the uniform-fallback tail consumes draws, and it
        does so in event order — so drawing the fallback subset en bloc
        replicates the scalar stream exactly.  Scopes that *are* a
        power of two (every paper configuration) consume nothing.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        pos, nodes = _scope_arrays(self)
        i = pos[srcs]
        dest_of = getattr(self, "_dest_arr", None)
        if dest_of is None:
            dest_of = self._dest_arr = np.array(
                [-1 if d is None else d for d in self._dest_of],
                dtype=np.int64,
            )
        out = dest_of[i]
        fb = np.flatnonzero(i >= self._pow2)
        if fb.size:
            n = self.index.num_nodes
            draws = vr.randbelow(n - 1, fb.size)
            if draws is None:
                return None
            j = draws + (draws >= i[fb])
            out[fb] = nodes[j]
        return out


class BitReverseTraffic(PermutationTraffic):
    """d = reverse of the b-bit source index."""

    name = "bit-reverse"

    def _permute(self, i: int, bits: int) -> int:
        out = 0
        for k in range(bits):
            if i & (1 << k):
                out |= 1 << (bits - 1 - k)
        return out


class BitShuffleTraffic(PermutationTraffic):
    """d = source index rotated left by one bit (perfect shuffle)."""

    name = "bit-shuffle"

    def _permute(self, i: int, bits: int) -> int:
        if bits == 0:
            return i
        msb = (i >> (bits - 1)) & 1
        return ((i << 1) & ((1 << bits) - 1)) | msb


class BitTransposeTraffic(PermutationTraffic):
    """d = source index rotated by b/2 bits (matrix transpose)."""

    name = "bit-transpose"

    def _permute(self, i: int, bits: int) -> int:
        half = bits // 2
        if half == 0:
            return i
        rot = bits - half
        mask = (1 << bits) - 1
        return ((i << half) | (i >> rot)) & mask
