"""Reference (object-based) simulator core.

This is the original, heap-object implementation of the cycle-accurate
VC simulator: flits are small mutable lists, packets are
:class:`~repro.network.packet.Packet` objects, VC ownership is object
identity.  It is kept as the semantic reference for
:mod:`repro.network.simcore` (the struct-of-arrays production core):
given the same pinned :class:`~repro.network.schedule.InjectionSchedule`
both cores must produce *identical* results, which the cross-core
equivalence tests assert.

The per-cycle model (see :mod:`repro.network.simulator` for the full
description):

1. *Credit return* — credits released ``link latency`` cycles ago
   arrive back at the upstream arbiter.
2. *Flit arrival* — flits that finished traversing a link (+ router
   pipeline) are appended to the downstream input buffer of their
   ``(link, VC)`` pair.
3. *Injection* — packet starts come either from the legacy per-cycle
   Bernoulli draw or from a prebuilt injection schedule.
4. *Arbitration* — head flits request outputs; each output link grants
   up to ``capacity`` flits per cycle, round-robin over requesting
   inputs, subject to downstream credits and wormhole VC ownership.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from ..metrics.record import RunRecord, failed_links_of
from ..topology.graph import NetworkGraph
from .packet import Packet
from .params import SimParams
from .schedule import InjectionSchedule, build_injection_schedule
from .stats import SimResult

__all__ = ["ReferenceCore"]


class ReferenceCore:
    """Object-based simulation core (see module docstring)."""

    #: name reported in :class:`~repro.metrics.RunRecord.core`.
    core_id = "reference"

    def __init__(
        self,
        graph: NetworkGraph,
        routing,
        traffic,
        params: SimParams,
    ) -> None:
        self.graph = graph
        self.routing = routing
        self.traffic = traffic
        self.params = params

        num_links = graph.num_links
        num_nodes = graph.num_nodes
        num_vcs = routing.num_vcs
        self.num_vcs = num_vcs

        # Per-link constants (flattened for the hot loop).
        self._link_dst = [l.dst for l in graph.links]
        # effective in-flight time: wire latency + router pipeline
        self._hop_delay = [
            l.latency + params.router_latency for l in graph.links
        ]
        # credit return time models the reverse wire of the same channel
        self._credit_delay = [max(1, l.latency) for l in graph.links]
        self._cap = [l.capacity for l in graph.links]

        # Per-(link, vc) state, flattened to one index lv = link*V + vc:
        # integer indexing and hashing beat (link, vc) tuples in the hot
        # loop by a wide margin.
        num_lv = num_links * num_vcs
        self._buf: List[deque] = [deque() for _ in range(num_lv)]
        self._credits: List[int] = [params.vc_buffer_size] * num_lv
        self._owner: List[Optional[Packet]] = [None] * num_lv

        # Per-lv copies of the per-link constants (avoids lv // V).
        self._lv_dst = [self._link_dst[lv // num_vcs] for lv in range(num_lv)]
        self._cap_lv = [self._cap[lv // num_vcs] for lv in range(num_lv)]
        self._credit_delay_lv = [
            self._credit_delay[lv // num_vcs] for lv in range(num_lv)
        ]

        # Per-router dispatch state.  ``_nonempty[r]`` maps lv -> True
        # (int keys, insertion ordered) for every non-empty input of
        # router r; the hot set is a flag array + compact active list.
        self._nonempty: List[Dict[int, bool]] = [
            {} for _ in range(num_nodes)
        ]
        self._srcq: List[deque] = [deque() for _ in range(num_nodes)]
        self._hot_flag = bytearray(num_nodes)
        self._hot_list: List[int] = []

        # Event wheels.
        max_delay = max(self._hop_delay, default=1)
        max_delay = max(max_delay, max(self._credit_delay, default=1))
        self._wheel_size = max_delay + 1
        self._arrivals: List[list] = [[] for _ in range(self._wheel_size)]
        self._credit_ret: List[list] = [[] for _ in range(self._wheel_size)]

        # Round-robin pointers: one per output link, one per ejection port.
        self._rr_link = [0] * num_links
        self._rr_eject = [0] * num_nodes

        # RNGs: numpy for the injection process, stdlib for route choices.
        self._np_rng = np.random.default_rng(params.seed)
        self._py_rng = random.Random(params.seed ^ 0x5EED)

        # RoutingAlgorithm subclasses provide flattened (and, when
        # deterministic, memoised) routes; duck-typed routings need only
        # expose route().
        self._route_flat = getattr(routing, "route_flat", None)

        # Traffic bookkeeping.
        self._active_nodes = list(traffic.active_nodes())
        self._active_chips = traffic.num_active_chips()
        chips = graph.chips()
        self._nodes_per_chip = {
            nid: len(chips[graph.nodes[nid].chip]) for nid in self._active_nodes
        }

        # Measurement.
        self._pid = 0
        # Probe surface (repro.metrics): when enabled, every created
        # Packet is retained so run_record() can rebuild the flat
        # per-packet arrays post-run.  Object retention has no effect
        # on simulation state or RNG consumption.
        self._probe_mode = False
        self._packets: List[Packet] = []
        self._latencies: List[int] = []
        self._hops: List[int] = []
        self._packets_measured = 0
        self._flits_ejected_window = 0
        self.total_flits_injected = 0
        self.total_flits_ejected = 0
        #: cycles simulated by previous run() calls; keeps leftover
        #: in-flight events aligned with their wheel slots and packet
        #: timestamps monotonic across repeated run() calls.  0 for a
        #: fresh instance, where behaviour is bit-identical to the
        #: original single-run implementation.
        self._clock = 0
        #: the closed-loop PhasePlan of the most recent run (None for
        #: open-loop runs); run_record() reads its phase records and
        #: measurement window.
        self._plan = None

    # ------------------------------------------------------------------
    def injection_probs(self, rate: float) -> List[float]:
        """Per-active-node packet-start probability per cycle."""
        pkt_len = self.params.packet_length
        return [
            rate / (pkt_len * self._nodes_per_chip[nid])
            for nid in self._active_nodes
        ]

    def make_schedule(self, rate: float) -> InjectionSchedule:
        """Sample an injection schedule (consumes the numpy RNG).

        Statistically identical to the per-cycle Bernoulli draw; used to
        pin both cores to the same packet starts.
        """
        if rate < 0:
            raise ValueError("rate must be >= 0")
        probs = self.injection_probs(rate)
        if any(pr > 1.0 for pr in probs):
            raise ValueError(
                f"offered rate {rate} exceeds 1 packet/node/cycle; "
                "increase packet_length or lower the rate"
            )
        p = self.params
        return build_injection_schedule(
            self._active_nodes,
            probs,
            p.warmup_cycles + p.measure_cycles,
            self._np_rng,
        )

    def _make_packet(
        self, t: int, src: int, measured: bool, dst: Optional[int] = None
    ) -> Optional[Packet]:
        # a caller-provided destination (closed-loop plan events) skips
        # the traffic draw, so no RNG is consumed — matching the array
        # core's plan-mode stream
        if dst is None:
            dst = self.traffic.dest(src, self._py_rng)
        if dst is None or dst == src:
            return None
        if self._route_flat is not None:
            path, path_lv = self._route_flat(src, dst, self._py_rng)
        else:
            path = tuple(self.routing.route(src, dst, self._py_rng))
            num_vcs = self.num_vcs
            path_lv = tuple(l * num_vcs + v for l, v in path)
        pkt = Packet(
            self._pid, src, dst, self.params.packet_length, path, t, measured
        )
        pkt.path_lv = path_lv
        self._pid += 1
        if self._probe_mode:
            self._packets.append(pkt)
        return pkt

    # ------------------------------------------------------------------
    def enable_probes(self) -> None:
        """Start retaining packets for the probe surface."""
        if self._clock:
            raise RuntimeError(
                "probes must be enabled before the first run()"
            )
        self._probe_mode = True

    def run_record(self, rate: float) -> RunRecord:
        """Bulk measurement record of this core's runs so far."""
        if not self._probe_mode:
            raise RuntimeError(
                "probing was not enabled on this core; pass probes= to "
                "Simulator (or call enable_probes() before run())"
            )
        p = self.params
        graph = self.graph
        plan = self._plan
        if plan is not None:
            # closed-loop: the window is the measured makespan, not the
            # (huge) horizon the params carried as a safety bound
            measure_start = plan._t0
            measure_cycles = plan.elapsed()
            measure_end = measure_start + measure_cycles
            phases = plan.phase_records()
        else:
            measure_start = self._clock - p.drain_cycles - p.measure_cycles
            measure_cycles = p.measure_cycles
            measure_end = measure_start + measure_cycles
            phases = ()
        p_src, p_dst, p_t0, p_meas = [], [], [], []
        p_done, p_hops, p_off = [], [], []
        route_lv: List[int] = []
        for pkt in self._packets:
            p_src.append(pkt.src)
            p_dst.append(pkt.dst)
            p_t0.append(pkt.t_create)
            p_meas.append(1 if pkt.measured else 0)
            p_done.append(pkt.t_done)
            p_hops.append(pkt.path_len)
            p_off.append(len(route_lv))
            route_lv.extend(pkt.path_lv)
        return RunRecord(
            core=self.core_id,
            rate=rate,
            num_nodes=graph.num_nodes,
            num_links=graph.num_links,
            num_vcs=self.num_vcs,
            packet_length=p.packet_length,
            measure_start=measure_start,
            measure_end=measure_end,
            measure_cycles=measure_cycles,
            active_chips=self._active_chips,
            p_src=p_src,
            p_dst=p_dst,
            p_t0=p_t0,
            p_meas=p_meas,
            p_done=p_done,
            p_hops=p_hops,
            p_off=p_off,
            route_lv=route_lv,
            node_chip={
                nid: node.chip for nid, node in enumerate(graph.nodes)
            },
            link_ends=[(l.src, l.dst) for l in graph.links],
            failed_links=failed_links_of(self.routing),
            phases=phases,
        )

    def _finish_flit(self, pkt: Packet, fidx: int, t: int, in_window: bool) -> None:
        """Account one flit leaving the network at its destination."""
        self.total_flits_ejected += 1
        if in_window:
            self._flits_ejected_window += 1
        if fidx == pkt.size - 1:
            pkt.t_done = t
            if pkt.measured:
                self._latencies.append(t - pkt.t_create)
                self._hops.append(len(pkt.path))
            if self._plan is not None:
                self._plan.packet_done(pkt.pid, t)

    # ------------------------------------------------------------------
    def run(
        self,
        rate: float,
        schedule: Optional[InjectionSchedule] = None,
        plan=None,
    ) -> SimResult:
        """Run the full warmup+measure+drain schedule at ``rate``.

        ``rate`` is offered load in flits/cycle/chip over the traffic
        pattern's active chips.  When ``schedule`` is given, packet
        starts come from it (in order) instead of per-cycle Bernoulli
        draws — the mode the cross-core equivalence tests pin.
        ``plan`` switches to closed-loop mode: events come from a
        :class:`~repro.workload.driver.PhasePlan` whose phase releases
        feed back from tail-flit ejections, and the loop ends when the
        last phase drains.
        """
        if plan is not None and schedule is not None:
            raise ValueError("pass either a schedule or a plan, not both")
        p = self.params
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self._plan = plan
        meas = p.measure_cycles
        # absolute cycle stamps: this run covers [t0, t_end)
        t0 = self._clock
        warm = t0 + p.warmup_cycles
        meas_end = warm + meas
        t_end = meas_end + p.drain_cycles
        pkt_len = p.packet_length

        if plan is not None:
            if rate <= 0:
                raise ValueError("closed-loop rate must be > 0")
            # nothing is offered open-loop: the plan injects on demand
            effective_offered = 0.0
            ev_cycles = plan.ev_cycles
            ev_nodes = plan.ev_nodes
            ev_dests = plan.ev_dests
            n_ev = plan.begin(t0)
            ev_ptr = 0
        else:
            # Per-node Bernoulli probability of *starting a packet*
            # this cycle.
            active = self._active_nodes
            probs = np.array(self.injection_probs(rate), dtype=np.float64)
            if np.any(probs > 1.0):
                raise ValueError(
                    f"offered rate {rate} exceeds 1 packet/node/cycle; "
                    "increase packet_length or lower the rate"
                )
            active_arr = np.array(active, dtype=np.int64)
            # patterns with inactive nodes offer less than the nominal
            # rate
            effective_offered = (
                float(probs.sum()) * pkt_len / self._active_chips
                if self._active_chips
                else 0.0
            )

            # Pinned-schedule injection state (None -> legacy Bernoulli).
            if schedule is not None:
                # schedule cycles are run-local; shift onto the clock
                ev_cycles = (
                    [c + t0 for c in schedule.cycles]
                    if t0
                    else schedule.cycles
                )
                ev_nodes = schedule.nodes
                n_ev = len(ev_cycles)
                ev_ptr = 0

        wheel_size = self._wheel_size
        arrivals = self._arrivals
        credit_ret = self._credit_ret
        buf = self._buf
        credits = self._credits
        owner = self._owner
        nonempty = self._nonempty
        srcq = self._srcq
        hot_flag = self._hot_flag
        hot_list = self._hot_list
        rr_link = self._rr_link
        rr_eject = self._rr_eject
        lv_dst = self._lv_dst
        cap_lv = self._cap_lv
        credit_delay_lv = self._credit_delay_lv
        hop_delay = self._hop_delay
        cap = self._cap
        np_rng = self._np_rng
        inj_w = p.injection_width
        ej_w = p.ejection_width
        finish_flit = self._finish_flit

        for t in range(t0, t_end):
            slot = t % wheel_size
            in_window = warm <= t < meas_end

            # --- 1. credit returns -------------------------------------
            crs = credit_ret[slot]
            if crs:
                for lv in crs:
                    credits[lv] += 1
                credit_ret[slot] = []

            # --- 2. flit arrivals --------------------------------------
            arr_list = arrivals[slot]
            if arr_list:
                for f, lv in arr_list:
                    b = buf[lv]
                    if not b:
                        r = lv_dst[lv]
                        nonempty[r][lv] = True
                        if not hot_flag[r]:
                            hot_flag[r] = 1
                            hot_list.append(r)
                    b.append(f)
                arrivals[slot] = []

            # --- 3. packet generation ----------------------------------
            if t < meas_end:
                if plan is not None:
                    starts = []
                    while ev_ptr < n_ev and ev_cycles[ev_ptr] == t:
                        nid = ev_nodes[ev_ptr]
                        dst = ev_dests[ev_ptr]
                        ev_ptr += 1
                        # dst is pre-drawn and never None/self, so the
                        # packet always materialises and pid stays equal
                        # to the event index (the plan relies on that).
                        pkt = self._make_packet(t, nid, in_window, dst=dst)
                        if in_window:
                            self._packets_measured += 1
                        if not pkt.path:
                            for fidx in range(pkt.size):
                                self.total_flits_injected += 1
                                finish_flit(pkt, fidx, t, in_window)
                            continue
                        srcq[nid].append([pkt, 0])
                        if not hot_flag[nid]:
                            hot_flag[nid] = 1
                            hot_list.append(nid)
                elif schedule is not None:
                    starts = []
                    while ev_ptr < n_ev and ev_cycles[ev_ptr] == t:
                        starts.append(ev_nodes[ev_ptr])
                        ev_ptr += 1
                else:
                    mask = np_rng.random(len(active_arr)) < probs
                    starts = (
                        [int(n) for n in active_arr[mask]]
                        if mask.any()
                        else []
                    )
                for nid in starts:
                    pkt = self._make_packet(t, nid, in_window)
                    if pkt is None:
                        continue
                    if in_window:
                        self._packets_measured += 1
                    if not pkt.path:
                        # src and dst share a router: deliver instantly
                        for fidx in range(pkt.size):
                            self.total_flits_injected += 1
                            finish_flit(pkt, fidx, t, in_window)
                        continue
                    srcq[nid].append([pkt, 0])
                    if not hot_flag[nid]:
                        hot_flag[nid] = 1
                        hot_list.append(nid)

            # --- 4. arbitration ----------------------------------------
            # hot_list is rebuilt each cycle: routers that stay busy are
            # re-appended, idle ones drop out.  Phases 2-3 of the *next*
            # cycle append new arrivals to the rebuilt list.
            active_routers = hot_list
            hot_list = []
            for r in active_routers:
                ne = nonempty[r]
                sq = srcq[r]
                if not ne and not sq:
                    hot_flag[r] = 0
                    continue

                # Fast paths for the overwhelmingly common single-input
                # router on unit-budget outputs: no request dict, no
                # rotation, no pass loop.  Semantics are identical to
                # the general path below with one candidate and
                # budget == 1.
                if not sq and len(ne) == 1:
                    lv = next(iter(ne))
                    b = buf[lv]
                    f = b[0]
                    pkt = f[0]
                    nh = f[2] + 1
                    if nh == pkt.path_len:
                        if ej_w == 1:
                            b.popleft()
                            if not b:
                                del ne[lv]
                            credit_ret[
                                (t + credit_delay_lv[lv]) % wheel_size
                            ].append(lv)
                            finish_flit(pkt, f[1], t, in_window)
                            if ne:
                                hot_list.append(r)
                            else:
                                hot_flag[r] = 0
                            continue
                    else:
                        out_link = pkt.path[nh][0]
                        if cap[out_link] == 1:
                            nlv = pkt.path_lv[nh]
                            fidx = f[1]
                            if credits[nlv] > 0:
                                own = owner[nlv]
                                if (own is None) if fidx == 0 else (own is pkt):
                                    b.popleft()
                                    if not b:
                                        del ne[lv]
                                    credit_ret[
                                        (t + credit_delay_lv[lv]) % wheel_size
                                    ].append(lv)
                                    credits[nlv] -= 1
                                    if fidx == 0:
                                        owner[nlv] = pkt
                                    if fidx == pkt.size - 1:
                                        owner[nlv] = None
                                    f[2] = nh
                                    arrivals[
                                        (t + hop_delay[out_link]) % wheel_size
                                    ].append((f, nlv))
                            if ne:
                                hot_list.append(r)
                            else:
                                hot_flag[r] = 0
                            continue
                elif not ne:
                    entry = sq[0]
                    pkt, fidx = entry[0], entry[1]
                    out_link = pkt.path[0][0]
                    if cap[out_link] == 1:
                        nlv = pkt.path_lv[0]
                        if credits[nlv] > 0:
                            own = owner[nlv]
                            if (own is None) if fidx == 0 else (own is pkt):
                                self.total_flits_injected += 1
                                entry[1] = fidx + 1
                                if entry[1] == pkt.size:
                                    sq.popleft()
                                credits[nlv] -= 1
                                if fidx == 0:
                                    owner[nlv] = pkt
                                if fidx == pkt.size - 1:
                                    owner[nlv] = None
                                arrivals[
                                    (t + hop_delay[out_link]) % wheel_size
                                ].append(([pkt, fidx, 0], nlv))
                        if sq:
                            hot_list.append(r)
                        else:
                            hot_flag[r] = 0
                        continue

                # Collect requests: out_key -> list of input descriptors.
                # Descriptor: lv index for buffered inputs, -1 for the
                # source queue.  Key -1 is the router's ejection port
                # (link ids are >= 0).
                reqs: Dict = {}
                for lv in ne:
                    f = buf[lv][0]
                    pkt = f[0]
                    nh = f[2] + 1
                    if nh == pkt.path_len:
                        key = -1
                    else:
                        key = pkt.path[nh][0]
                    lst = reqs.get(key)
                    if lst is None:
                        reqs[key] = [lv]
                    else:
                        lst.append(lv)
                if sq:
                    pkt = sq[0][0]
                    key = pkt.path[0][0]
                    lst = reqs.get(key)
                    if lst is None:
                        reqs[key] = [-1]
                    else:
                        lst.append(-1)

                for key, cand in reqs.items():
                    if key < 0:  # ejection port
                        budget = ej_w
                        out_link = -1
                    else:
                        out_link = key
                        budget = cap[out_link]
                    # rotate candidates for round-robin fairness
                    if len(cand) > 1:
                        if key < 0:
                            off = rr_eject[r]
                            rr_eject[r] = off + 1
                        else:
                            off = rr_link[key]
                            rr_link[key] = off + 1
                        off %= len(cand)
                        if off:
                            cand = cand[off:] + cand[:off]

                    granted = 0
                    in_used: Dict = {}
                    # multiple passes allow capacity>1 links to move
                    # several flits per cycle
                    for _pass in range(budget):
                        progressed = False
                        for desc in cand:
                            if granted >= budget:
                                break
                            # ---- fetch head flit ----
                            if desc < 0:
                                if not sq:
                                    continue
                                entry = sq[0]
                                pkt, fidx = entry[0], entry[1]
                                hopi = -1
                                in_cap = inj_w
                            else:
                                b = buf[desc]
                                if not b:
                                    continue
                                f = b[0]
                                pkt, fidx, hopi = f[0], f[1], f[2]
                                in_cap = cap_lv[desc]
                            if budget > 1 and in_used.get(desc, 0) >= in_cap:
                                continue
                            nh = hopi + 1
                            if nh == pkt.path_len:
                                # eject (key must match; source never here)
                                if out_link >= 0:
                                    continue
                                b.popleft()
                                if not b:
                                    del ne[desc]
                                credit_ret[
                                    (t + credit_delay_lv[desc]) % wheel_size
                                ].append(desc)
                                finish_flit(pkt, fidx, t, in_window)
                                if budget > 1:
                                    in_used[desc] = in_used.get(desc, 0) + 1
                                granted += 1
                                progressed = True
                                continue
                            if pkt.path[nh][0] != out_link:
                                continue
                            nlv = pkt.path_lv[nh]
                            if credits[nlv] <= 0:
                                continue
                            own = owner[nlv]
                            if fidx == 0:
                                if own is not None:
                                    continue
                            elif own is not pkt:
                                continue
                            # ---- grant ----
                            if desc < 0:
                                # take flit from the source queue
                                self.total_flits_injected += 1
                                entry[1] = fidx + 1
                                if entry[1] == pkt.size:
                                    sq.popleft()
                                f = [pkt, fidx, hopi]
                            else:
                                b.popleft()
                                if not b:
                                    del ne[desc]
                                credit_ret[
                                    (t + credit_delay_lv[desc]) % wheel_size
                                ].append(desc)
                            credits[nlv] -= 1
                            if fidx == 0:
                                owner[nlv] = pkt
                            if fidx == pkt.size - 1:
                                owner[nlv] = None
                            f[2] = nh
                            arrivals[
                                (t + hop_delay[out_link]) % wheel_size
                            ].append((f, nlv))
                            if budget > 1:
                                in_used[desc] = in_used.get(desc, 0) + 1
                            granted += 1
                            progressed = True
                        if not progressed or granted >= budget:
                            break

                if ne or sq:
                    hot_list.append(r)
                else:
                    hot_flag[r] = 0

            # --- 5. closed-loop phase releases -------------------------
            # Completions recorded this cycle release dependent phases
            # at t+1; materialise their events before the next cycle's
            # generation pass so the strict == t match never misses.
            if plan is not None:
                if plan.dirty:
                    n_ev = plan.flush(ev_ptr)
                if plan.finished:
                    break

        self._hot_list = hot_list
        self._clock = t_end

        return SimResult.from_samples(
            offered_rate=rate,
            effective_offered=effective_offered,
            latencies=self._latencies,
            hops=self._hops,
            packets_measured=self._packets_measured,
            flits_ejected=self._flits_ejected_window,
            active_chips=self._active_chips,
            measure_cycles=plan.elapsed() if plan is not None else meas,
        )

    # ------------------------------------------------------------------
    def flits_in_flight(self) -> int:
        """Flits currently buffered or on wires (conservation checks)."""
        buffered = sum(len(b) for b in self._buf)
        flying = sum(len(slot) for slot in self._arrivals)
        return buffered + flying
