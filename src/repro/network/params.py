"""Simulation parameters (paper Table IV defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SimParams"]


@dataclass(frozen=True)
class SimParams:
    """Knobs of the cycle-accurate simulator.

    Defaults follow Table IV of the paper:

    ==========================  =======================================
    Packet Length               4 flits
    Input Buffer Size           32 flits (per virtual channel)
    Base Link Bandwidth         1 flit/cycle
    Short-Reach Link Delay      1 cycle
    Long-Reach Link Delay       8 cycles
    Simulation Time             10000 cycles after 5000 cycles warm-up
    ==========================  =======================================

    The link delays themselves live on the links (set by the topology
    builders); this object holds the router/measurement parameters.
    """

    #: flits per packet.
    packet_length: int = 4
    #: per-(link, VC) input buffer depth in flits.
    vc_buffer_size: int = 32
    #: cycles spent in the router pipeline per hop (added to link latency).
    router_latency: int = 1
    #: flits/cycle a terminal can inject into its router.
    injection_width: int = 1
    #: flits/cycle a terminal can eject (consume).
    ejection_width: int = 1
    #: warm-up cycles excluded from measurement.
    warmup_cycles: int = 5000
    #: measured cycles after warm-up.
    measure_cycles: int = 10000
    #: cycles the simulator keeps running after the measurement window so
    #: that most measured packets can drain and report a latency.
    drain_cycles: int = 2000
    #: RNG seed for injection process and oblivious routing choices.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.packet_length < 1:
            raise ValueError("packet_length must be >= 1")
        if self.vc_buffer_size < self.packet_length:
            raise ValueError(
                "vc_buffer_size must hold at least one packet "
                f"({self.vc_buffer_size} < {self.packet_length})"
            )
        if self.router_latency < 0:
            raise ValueError("router_latency must be >= 0")
        for name in ("injection_width", "ejection_width"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("warmup_cycles", "measure_cycles", "drain_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def scaled(self, **kwargs) -> "SimParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles
