"""Vectorized, bit-exact replica of the stdlib Mersenne Twister.

The simulator's bit-identity contract pins every destination draw to
the stdlib ``random.Random`` stream (see
:meth:`repro.network.native.NativeCore._resolve_packets`).  Resolving a
batch of replicas event-by-event in Python is the dominant cost of the
native core's pre-pass, so :class:`VecRandom` replays the *same* MT19937
stream in numpy: it imports a ``random.Random`` instance's state via
``getstate()``, generates tempered 32-bit words with a vectorized twist,
replicates CPython's ``_randbelow_with_getrandbits`` rejection sampling
en bloc, and writes the advanced state back with ``setstate()`` — so
scalar draws before and after a vectorized block see exactly the stream
they would have seen without it.

Two CPython facts make the vectorization exact:

* ``getrandbits(k)`` for ``k <= 32`` consumes exactly one output word
  (``genrand_uint32() >> (32 - k)``), and
* ``_randbelow(n)`` redraws while the ``k = n.bit_length()``-bit value
  is ``>= n`` — so the i-th *accepted* word of the stream is the result
  of the i-th call, no matter how the calls are grouped.

Anything outside that envelope (``n >= 2**32``, a ``random.Random``
subclass, a non-version-3 state) makes :meth:`VecRandom.for_rng` or
:meth:`VecRandom.randbelow` decline with ``None``, and callers fall
back to the scalar path.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

__all__ = ["VecRandom"]

_N = 624
_M = 397
_MATRIX_A = np.uint32(0x9908B0DF)
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)
_ZERO = np.uint32(0)
_ONE = np.uint32(1)


def _twist(mt: np.ndarray) -> np.ndarray:
    """One MT19937 state transition (624 words -> 624 words).

    The reference loop updates in place with reads that reach at most
    227 slots back, so splitting at the wrap points [0, 227), [227,
    454), [454, 623), {623} makes every segment's reads refer either to
    the *old* state or to a segment already computed — each segment
    vectorizes.
    """
    new = mt.copy()
    y = (mt[0:227] & _UPPER) | (mt[1:228] & _LOWER)
    new[0:227] = mt[397:624] ^ (y >> _ONE) ^ np.where(y & _ONE, _MATRIX_A, _ZERO)
    y = (mt[227:454] & _UPPER) | (mt[228:455] & _LOWER)
    new[227:454] = new[0:227] ^ (y >> _ONE) ^ np.where(y & _ONE, _MATRIX_A, _ZERO)
    y = (mt[454:623] & _UPPER) | (mt[455:624] & _LOWER)
    new[454:623] = new[227:396] ^ (y >> _ONE) ^ np.where(y & _ONE, _MATRIX_A, _ZERO)
    y = (mt[623] & _UPPER) | (new[0] & _LOWER)
    new[623] = new[396] ^ (y >> _ONE) ^ (_MATRIX_A if y & _ONE else _ZERO)
    return new


def _temper(y: np.ndarray) -> np.ndarray:
    """MT19937 output tempering (vectorized, uint32 in/out)."""
    y = y ^ (y >> np.uint32(11))
    y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
    y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
    return y ^ (y >> np.uint32(18))


class VecRandom:
    """Batch view over one ``random.Random``'s MT19937 stream.

    Usage: build with :meth:`for_rng`, draw with :meth:`randbelow`,
    then :meth:`commit` the advanced state back onto the source RNG
    before anyone consumes it scalar-wise again.  The source RNG must
    not be touched between ``for_rng`` and ``commit``.
    """

    def __init__(self, rng: random.Random, mt: np.ndarray, pos: int, gauss):
        self._rng = rng
        self._mt = mt
        self._pos = pos
        self._gauss = gauss

    @classmethod
    def for_rng(cls, rng: random.Random) -> Optional["VecRandom"]:
        """Wrap ``rng``; ``None`` when its stream cannot be replicated
        (subclass with overridden methods, unknown state version)."""
        if type(rng) is not random.Random:
            return None
        state = rng.getstate()
        if len(state) != 3 or state[0] != 3:
            return None
        _, internal, gauss = state
        if len(internal) != _N + 1:
            return None
        mt = np.array(internal[:_N], dtype=np.uint32)
        return cls(rng, mt, int(internal[_N]), gauss)

    # ------------------------------------------------------------------
    def _take_words(self, m: int, trail=None) -> np.ndarray:
        """Next ``m`` tempered output words, advancing the state.

        ``_twist`` is functional (returns a fresh array), so each
        intermediate state survives by reference: with ``trail`` (a
        list) every post-twist state array is recorded, letting
        :meth:`randbelow` rewind to any intermediate word position
        without re-twisting.
        """
        out = np.empty(m, dtype=np.uint32)
        filled = 0
        while filled < m:
            if self._pos >= _N:
                self._mt = _twist(self._mt)
                self._pos = 0
                if trail is not None:
                    trail.append(self._mt)
            take = min(_N - self._pos, m - filled)
            out[filled : filled + take] = self._mt[
                self._pos : self._pos + take
            ]
            self._pos += take
            filled += take
        return _temper(out)

    def randbelow(self, n: int, count: int) -> Optional[np.ndarray]:
        """The results of ``count`` consecutive ``randrange(n)`` calls.

        Replicates CPython's rejection sampling exactly: draw
        ``k``-bit values (one word each), keep those ``< n``.  Returns
        ``None`` (consuming nothing) when ``n`` needs more than one
        word per draw — the caller falls back to scalar draws.
        """
        n = int(n)
        if n <= 0:
            raise ValueError("n must be positive")
        k = n.bit_length()
        if k > 32:
            return None
        out = np.empty(count, dtype=np.int64)
        shift = np.uint32(32 - k)
        # acceptance rate is n / 2^k in (0.5, 1]; oversample by the
        # expected reject count (plus noise margin) so one round
        # usually suffices without over-drawing words that the
        # overshoot path would only roll back again — for the common
        # near-power-of-two n the overhead collapses to the margin
        rejects_per_accept = float(((1 << k) - n) / n)
        have = 0
        while have < count:
            need = count - have
            m = need + int(need * rejects_per_accept * 1.5) + 16
            snap_mt, snap_pos = self._mt, self._pos
            trail: list = []
            w = self._take_words(m, trail) >> shift
            acc = np.flatnonzero(w < n)
            if acc.size >= need:
                used = int(acc[need - 1]) + 1
                if used < m:
                    # overshot: rewind to the state right after word
                    # `used`.  The first `_N - snap_pos` words came off
                    # `snap_mt`; each trail entry spans `_N` more — so
                    # the target state is a recorded array plus an
                    # index, no re-twisting needed.
                    first = _N - snap_pos
                    if used <= first:
                        self._mt, self._pos = snap_mt, snap_pos + used
                    else:
                        j, pos = divmod(used - first - 1, _N)
                        self._mt, self._pos = trail[j], pos + 1
                out[have:] = w[acc[:need]]
                have = count
            else:
                out[have : have + acc.size] = w[acc]
                have += acc.size
        return out

    def commit(self) -> None:
        """Write the advanced state back onto the wrapped RNG."""
        internal = tuple(int(x) for x in self._mt) + (int(self._pos),)
        self._rng.setstate((3, internal, self._gauss))
