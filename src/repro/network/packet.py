"""Packets and flits for the cycle-accurate simulator.

The simulator is *source routed*: every routing algorithm in the paper is
oblivious (minimal routes are unique up to the intra-mesh path policy;
non-minimal Valiant routes pick their random intermediate at injection), so
the full path — a sequence of ``(link id, virtual channel)`` hops — is
computed once when the packet is created.  Routers then only perform buffer
management, VC allocation, arbitration and credit flow control, which is
where all contention behaviour lives.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["Hop", "Packet"]

#: One hop of a source route: (link id, virtual channel index).
Hop = Tuple[int, int]


class Packet:
    """A multi-flit packet with a precomputed source route.

    Flits are represented as small mutable lists ``[packet, flit_index,
    hop_index]`` created lazily by the simulator; the packet itself holds
    the shared route and bookkeeping.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "path",
        "path_lv",
        "path_len",
        "t_create",
        "t_done",
        "measured",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        size: int,
        path: Sequence[Hop],
        t_create: int,
        measured: bool,
    ) -> None:
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size = size
        self.path: Tuple[Hop, ...] = tuple(path)
        #: flat (link * num_vcs + vc) view of the path, filled in by the
        #: simulator for its hot loop (it knows num_vcs; we don't).
        self.path_lv: Tuple[int, ...] = ()
        self.path_len = len(self.path)
        self.t_create = t_create
        self.t_done = -1
        self.measured = measured

    @property
    def delivered(self) -> bool:
        return self.t_done >= 0

    @property
    def latency(self) -> int:
        """Creation-to-tail-ejection latency; -1 while in flight."""
        if self.t_done < 0:
            return -1
        return self.t_done - self.t_create

    def hop_count(self) -> int:
        return len(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"size={self.size}, hops={len(self.path)}, "
            f"t_create={self.t_create}, t_done={self.t_done})"
        )
