"""Vectorized injection scheduling for the cycle-accurate simulator.

The paper's injection process is Bernoulli: every active terminal starts
a packet with probability ``p`` each cycle.  Drawing that per cycle
(``rng.random(n) < p``) costs a numpy round-trip on *every* cycle even
when nothing injects.  An identical process can be sampled up front:
inter-arrival gaps of a Bernoulli(p) process are Geometric(p) on
{1, 2, ...}, so per node we draw a batch of geometric gaps, cumulative-sum
them into arrival cycles, and merge all nodes into one (cycle, node)
event list sorted by cycle.  The simulator then just walks a pointer —
idle cycles cost a single integer comparison, and cores can even jump
over provably idle stretches.

Both simulator cores accept a prebuilt :class:`InjectionSchedule`, which
is what makes cross-core equivalence exact: with a *pinned* schedule the
only remaining randomness (destination and route choice) is drawn from
the same ``random.Random`` stream in the same order by both cores.

Determinism note: the schedule sampler consumes the numpy RNG stream
differently from the retired per-cycle mask (one geometric batch per
node instead of one uniform draw per cycle), so per-seed results shift
relative to pre-schedule versions of this repo.  The process law is
unchanged — saturation points and latency curves agree within seed
noise (see ``benchmarks/bench_simcore.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Sequence

import numpy as np

__all__ = ["InjectionSchedule", "build_injection_schedule"]


@dataclass(frozen=True)
class InjectionSchedule:
    """Packet-start events for one run, sorted by (cycle, source order).

    ``cycles[i]`` is the cycle at which node ``nodes[i]`` starts a
    packet.  Within a cycle, events keep the order of the traffic
    pattern's active-node list — the same order the per-cycle Bernoulli
    mask used to walk, so arbitration sees sources in a familiar order.
    """

    #: event cycles, non-decreasing, all < horizon.
    cycles: List[int] = field(default_factory=list)
    #: event source node ids, aligned with :attr:`cycles`.
    nodes: List[int] = field(default_factory=list)
    #: cycles [0, horizon) the schedule was sampled over.
    horizon: int = 0

    def __len__(self) -> int:
        return len(self.cycles)

    def offered_packets(self) -> int:
        """Total packet-start events (an upper bound on packets sent)."""
        return len(self.cycles)

    @cached_property
    def np_cycles(self) -> np.ndarray:
        """int64 array view of :attr:`cycles` (converted once)."""
        return np.asarray(self.cycles, dtype=np.int64)

    @cached_property
    def np_nodes(self) -> np.ndarray:
        """int64 array view of :attr:`nodes` (converted once)."""
        return np.asarray(self.nodes, dtype=np.int64)


def _geometric_arrivals(
    p: float, horizon: int, rng: np.random.Generator
) -> np.ndarray:
    """Arrival cycles in [0, horizon) of a Bernoulli(p) process.

    Gaps are Geometric(p) on {1, 2, ...}; the first arrival lands at
    ``gap - 1`` so that cycle 0 can inject with probability ``p``.
    """
    if p >= 1.0:
        return np.arange(horizon, dtype=np.int64)
    mean = horizon * p
    # enough draws to overshoot the horizon almost surely; top up if not
    batch = int(mean + 6.0 * math.sqrt(mean + 1.0) + 16.0)
    times = np.cumsum(rng.geometric(p, size=batch).astype(np.int64)) - 1
    while times[-1] < horizon:
        extra = rng.geometric(p, size=max(16, batch // 4)).astype(np.int64)
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    return times[: int(np.searchsorted(times, horizon))]


def _equal_prob_arrivals(
    probs: np.ndarray, horizon: int, rng: np.random.Generator
):
    """All nodes' arrival cycles in one geometric draw, when possible.

    When every node shares one probability ``p`` in ``(0, 1)`` (the
    common uniform-traffic case), the per-node batches of
    :func:`_geometric_arrivals` are consecutive same-sized slices of
    the generator's stream — numpy fills a single ``size=n*batch``
    request in exactly that order, so one call produces bit-identical
    gaps at a fraction of the per-node dispatch cost.  Returns
    ``(cycles, node_index)`` aligned row-major (node order, then
    cycle), or ``None`` to decline: unequal/degenerate probabilities,
    or any node's batch under-shooting the horizon (the per-node path
    would top up mid-stream; the bit-generator state is restored so
    the slow path replays the identical draws).
    """
    if horizon <= 0 or probs.size == 0:
        return None
    p = float(probs[0])
    if not 0.0 < p < 1.0 or not np.all(probs == p):
        return None
    mean = horizon * p
    batch = int(mean + 6.0 * math.sqrt(mean + 1.0) + 16.0)
    state = rng.bit_generator.state
    gaps = rng.geometric(p, size=probs.size * batch).astype(np.int64)
    times = np.cumsum(gaps.reshape(probs.size, batch), axis=1) - 1
    if not np.all(times[:, -1] >= horizon):
        rng.bit_generator.state = state
        return None
    mask = times < horizon
    rows, _ = np.nonzero(mask)
    return times[mask], rows


def build_injection_schedule(
    active_nodes: Sequence[int],
    probs: Sequence[float],
    horizon: int,
    rng: np.random.Generator,
) -> InjectionSchedule:
    """Sample every node's packet-start cycles over ``[0, horizon)``.

    Parameters
    ----------
    active_nodes:
        Traffic-generating node ids, in the traffic pattern's order.
    probs:
        Per-node packet-start probability per cycle (aligned with
        ``active_nodes``); each must be in ``[0, 1]``.
    horizon:
        Number of cycles packets may start in (warmup + measurement).
    rng:
        Numpy generator; one geometric batch is consumed per node with
        ``0 < p < 1``, in node order.
    """
    fast = _equal_prob_arrivals(
        np.asarray(probs, dtype=np.float64), horizon, rng
    )
    if fast is not None:
        cycles, order = fast
        if not cycles.size:
            return InjectionSchedule([], [], horizon)
    else:
        cycle_parts: List[np.ndarray] = []
        order_parts: List[np.ndarray] = []
        for i, p in enumerate(probs):
            if p <= 0.0 or horizon <= 0:
                continue
            if p > 1.0:
                raise ValueError(
                    f"injection probability {p} > 1 for node index {i}"
                )
            times = _geometric_arrivals(float(p), horizon, rng)
            if times.size:
                cycle_parts.append(times)
                order_parts.append(np.full(times.size, i, dtype=np.int64))
        if not cycle_parts:
            return InjectionSchedule([], [], horizon)
        cycles = np.concatenate(cycle_parts)
        order = np.concatenate(order_parts)
    # lexsort: primary key last — sort by cycle, ties by active-list order
    idx = np.lexsort((order, cycles))
    cycle_arr = cycles[idx]
    node_arr = np.asarray(active_nodes, dtype=np.int64)[order[idx]]
    sched = InjectionSchedule(
        cycle_arr.tolist(), node_arr.tolist(), horizon
    )
    # pre-seed the cached array views — vectorized consumers skip the
    # list round-trip entirely
    sched.__dict__["np_cycles"] = cycle_arr
    sched.__dict__["np_nodes"] = node_arr
    return sched
