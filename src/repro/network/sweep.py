"""Injection-rate sweeps: the latency-vs-load curves of Figs. 10-14."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..topology.graph import NetworkGraph
from .params import SimParams
from .simulator import Simulator
from .stats import SimResult

__all__ = [
    "LOADSWEEP_SCHEMA",
    "LoadSweep",
    "assemble_sweep",
    "cutoff_walk",
    "find_saturation",
    "sweep_rates",
]

#: stable schema tag for serialised sweeps (see SIMRESULT_SCHEMA).
LOADSWEEP_SCHEMA = "repro.load-sweep/v1"


@dataclass
class LoadSweep:
    """A measured latency/throughput curve for one network configuration."""

    label: str
    rates: List[float]
    results: List[SimResult]

    @property
    def saturation_rate(self) -> float:
        """First offered rate at which the run saturated (inf if none)."""
        for rate, res in zip(self.rates, self.results):
            if res.saturated:
                return rate
        return float("inf")

    @property
    def max_accepted(self) -> float:
        """Highest accepted throughput seen across the sweep."""
        return max((r.accepted_rate for r in self.results), default=0.0)

    def zero_load_latency(self) -> float:
        """Average latency at the lowest *non-saturated* measured rate.

        A saturated point's mean latency is a queueing artefact (it
        mostly measures how long the window was), so saturated points
        are skipped even when they sit first in the sweep — e.g. a
        sweep whose lowest offered load already exceeded saturation.
        Returns ``nan`` when every measured point saturated (or the
        sweep is empty): there is no zero-load regime to report.
        """
        for res in self.results:
            if not res.saturated:
                return res.avg_latency
        return float("nan")

    def rows(self) -> List[Tuple[float, float, float]]:
        """(offered, accepted, avg latency) rows for tabular output."""
        return [
            (rate, res.accepted_rate, res.avg_latency)
            for rate, res in zip(self.rates, self.results)
        ]

    def format_table(self) -> str:
        lines = [f"# {self.label}", "offered  accepted  avg_latency"]
        for rate, acc, lat in self.rows():
            lines.append(f"{rate:7.3f}  {acc:8.3f}  {lat:11.1f}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable view, schema-tagged like ``SimResult``."""
        return {
            "schema": LOADSWEEP_SCHEMA,
            "label": self.label,
            "rates": list(self.rates),
            "results": [res.to_dict() for res in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadSweep":
        """Inverse of :meth:`to_dict` (untagged payloads accepted)."""
        schema = data.get("schema")
        if schema is not None and schema != LOADSWEEP_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as {LOADSWEEP_SCHEMA!r}"
            )
        return cls(
            label=data.get("label", ""),
            rates=[float(r) for r in data["rates"]],
            results=[SimResult.from_dict(r) for r in data["results"]],
        )


def cutoff_walk(
    num_rates: int,
    results: dict,
    stop_after_saturation: int,
) -> Tuple[bool, int]:
    """Walk a sweep's rate indices in order against known results.

    ``results`` maps rate index -> :class:`SimResult` (gaps allowed —
    the engine fills them out of order).  Returns ``(complete, n)``:
    when complete, ``n`` is the sweep length after the saturation cutoff
    (past saturation the latency is unbounded anyway, and those runs are
    the most expensive ones); otherwise ``n`` is the first missing rate
    index that must be simulated next.
    """
    saturated = 0
    for ri in range(num_rates):
        res = results.get(ri)
        if res is None:
            return False, ri
        if res.saturated:
            saturated += 1
            if saturated >= stop_after_saturation:
                return True, ri + 1
    return True, num_rates


def assemble_sweep(
    label: str,
    rates: Sequence[float],
    results: dict,
    stop_after_saturation: int,
) -> LoadSweep:
    """Build the :class:`LoadSweep` a serial in-order run would return."""
    complete, n = cutoff_walk(len(rates), results, stop_after_saturation)
    if not complete:
        raise ValueError(
            f"sweep {label!r} is missing the result for rate index {n}"
        )
    return LoadSweep(
        label=label,
        rates=[float(r) for r in rates[:n]],
        results=[results[ri] for ri in range(n)],
    )


def sweep_rates(
    graph: NetworkGraph,
    routing,
    traffic,
    rates: Sequence[float],
    params: Optional[SimParams] = None,
    *,
    label: str = "",
    stop_after_saturation: int = 1,
) -> LoadSweep:
    """Simulate each offered rate with a fresh simulator instance.

    This is the in-process primitive under :func:`repro.engine.
    run_experiments`, which adds spec-based reconstruction, process
    parallelism and caching on top of the same cutoff semantics.
    """
    params = params or SimParams()
    rates = list(rates)
    results: dict = {}
    while True:
        complete, ri = cutoff_walk(
            len(rates), results, stop_after_saturation
        )
        if complete:
            break
        sim = Simulator(graph, routing, traffic, params)
        results[ri] = sim.run(rates[ri])
    return assemble_sweep(label, rates, results, stop_after_saturation)


def find_saturation(
    graph_factory: Callable[[], Tuple[NetworkGraph, object, object]],
    *,
    params: Optional[SimParams] = None,
    lo: float = 0.05,
    hi: float = 4.0,
    tol: float = 0.05,
    max_iter: int = 12,
) -> float:
    """Bisect for the saturation injection rate (flits/cycle/chip).

    ``graph_factory`` returns a fresh ``(graph, routing, traffic)`` triple
    per probe so simulator state never leaks between probes.  Returns the
    highest rate that is *not* saturated, within ``tol``.
    """
    params = params or SimParams()

    def probe(rate: float) -> bool:
        graph, routing, traffic = graph_factory()
        res = Simulator(graph, routing, traffic, params).run(rate)
        return res.saturated

    if probe(lo):
        return 0.0
    if not probe(hi):
        return hi
    good, bad = lo, hi
    for _ in range(max_iter):
        if bad - good <= tol:
            break
        mid = 0.5 * (good + bad)
        if probe(mid):
            bad = mid
        else:
            good = mid
    return good
