/* Native kernel for the struct-of-arrays simulator core.
 *
 * Compiled on demand by repro.network.native with a plain
 * ``cc -O2 -shared -fPIC`` (no Python headers), loaded via ctypes.
 * All state lives in caller-owned int64 buffers, so a core instance
 * can run() repeatedly (drain leftovers persist) and Python can
 * inspect buffers for conservation checks.
 *
 * The cycle model replicates repro.network.refcore.ReferenceCore
 * exactly — phases, per-output round-robin over candidate inputs in
 * input-insertion order, multi-pass grants for capacity > 1, wormhole
 * VC ownership, credit flow — so that, given the same injection
 * schedule and pre-resolved packet table, results are bit-identical
 * to both Python cores.  The Python wrapper pre-resolves every
 * packet's destination and route (the only consumers of the stdlib
 * RNG stream) in schedule order, so this kernel needs no callbacks.
 *
 * Flit words use the Python core's packing, minus the event tag that
 * would overflow 64 bits: f = (pid << 22) | (flit_idx << 11) | hop.
 * Wheel events are parallel (flit, lv) arrays.
 */

#include <stdint.h>

typedef int64_t i64;

#define HOP_BITS 11
#define FIDX_SHIFT 11
#define PID_SHIFT 22
#define HOP_MASK ((1 << HOP_BITS) - 1)
#define FIDX_MASK ((1 << (PID_SHIFT - FIDX_SHIFT)) - 1)

/* Everything the kernel touches; mirrored field-for-field by the
 * ctypes.Structure in repro.network.native.  int64 scalars first,
 * then pointers, to keep the layout trivially predictable. */
typedef struct {
    /* sizes and parameters */
    i64 num_nodes;
    i64 num_links;
    i64 num_lv;
    i64 wheel_size;
    i64 slot_cap;   /* per-wheel-slot event capacity */
    i64 buf_cap;    /* flits per (link, vc) ring == vc_buffer_size */
    i64 max_in;     /* max inbound (link, vc) inputs of any router */
    i64 pkt_len;
    i64 inj_w;
    i64 ej_w;
    i64 warm;
    i64 meas_end;
    i64 t_end;
    i64 t0;         /* first cycle of this run (continues prior runs) */
    /* injection events (pre-resolved packets, schedule order) */
    i64 n_ev;
    /* outputs / running counters (read-modify-write) */
    i64 n_lat;
    i64 tfi;
    i64 tfe;
    i64 pm;
    i64 few;
    i64 hot_n;
    i64 error;      /* 0 ok; 1 wheel overflow; 2 ne overflow */

    /* per-link / per-lv constants */
    i64 *cap;        /* [num_links] flits per cycle */
    i64 *lv_dst;     /* [num_lv] destination router */
    i64 *cap_lv;     /* [num_lv] upstream link capacity */
    i64 *cdel_lv;    /* [num_lv] credit return delay */
    /* mutable per-lv state */
    i64 *credits;    /* [num_lv] */
    i64 *owner;      /* [num_lv] owning pid, -1 free */
    i64 *buf;        /* [num_lv * buf_cap] flit rings */
    i64 *b_head;     /* [num_lv] ring head index */
    i64 *b_len;      /* [num_lv] ring occupancy */
    /* per-router input bookkeeping (insertion-ordered, like the
     * Python cores' nonempty dicts) */
    i64 *ne_arr;     /* [num_nodes * max_in] */
    i64 *ne_len;     /* [num_nodes] */
    /* source queues: one arena, per-node slices */
    i64 *sq_arena;   /* [sum of per-node capacities] pids */
    i64 *sq_off;     /* [num_nodes] arena offset */
    i64 *sq_head;    /* [num_nodes] index into slice */
    i64 *sq_len;     /* [num_nodes] */
    i64 *s_fidx;     /* [num_nodes] next flit idx of queue head */
    /* event wheels: parallel (flit, lv) arrays per slot */
    i64 *aw_f;       /* [wheel_size * slot_cap] arrival flits */
    i64 *aw_lv;      /* [wheel_size * slot_cap] arrival lvs */
    i64 *aw_n;       /* [wheel_size] */
    i64 *cw_lv;      /* [wheel_size * slot_cap] credit lvs */
    i64 *cw_n;       /* [wheel_size] */
    /* round-robin pointers */
    i64 *rr_link;    /* [num_links] */
    i64 *rr_eject;   /* [num_nodes] */
    /* hot-router machinery */
    i64 *hot_a;      /* [num_nodes] current list */
    i64 *hot_b;      /* [num_nodes] next list */
    unsigned char *hot_flag; /* [num_nodes] */
    /* packet table and flattened routes (read-only here) */
    i64 *p_off;      /* [num_packets] route offset */
    i64 *p_hops;     /* [num_packets] route length */
    i64 *p_t0;       /* [num_packets] creation cycle */
    i64 *p_meas;     /* [num_packets] created in window */
    i64 *route_lv;   /* per-hop (link*V + vc) */
    i64 *route_link; /* per-hop link id */
    i64 *route_delay;/* per-hop in-flight delay */
    /* injection events */
    i64 *ev_cycle;   /* [n_ev] sorted */
    i64 *ev_src;     /* [n_ev] */
    i64 *ev_pid;     /* [n_ev] */
    /* measurement output */
    i64 *lat_out;    /* [>= packets] */
    i64 *hops_out;   /* [>= packets] */
    i64 *pid_out;    /* [>= packets] delivered pid per latency sample */
    /* scratch (max_in + 1 each) */
    i64 *sc_desc;
    i64 *sc_key;
    i64 *sc_cand;
    i64 *sc_used;
} S;

/* drop input lv from router r's insertion-ordered list */
static void ne_remove(S *s, i64 r, i64 lv)
{
    i64 *a = s->ne_arr + r * s->max_in;
    i64 n = s->ne_len[r];
    for (i64 i = 0; i < n; i++) {
        if (a[i] == lv) {
            for (i64 j = i + 1; j < n; j++)
                a[j - 1] = a[j];
            s->ne_len[r] = n - 1;
            return;
        }
    }
}

i64 sim_run(S *s)
{
    const i64 W = s->wheel_size, SC = s->slot_cap, BC = s->buf_cap;
    const i64 pkt_len = s->pkt_len, szm1 = pkt_len - 1;
    const i64 inj_w = s->inj_w, ej_w = s->ej_w;
    const i64 warm = s->warm, meas_end = s->meas_end, t_end = s->t_end;
    const i64 n_ev = s->n_ev;

    i64 *hot = s->hot_a, *nxt = s->hot_b;
    i64 hot_n = s->hot_n, nxt_n;
    i64 tfi = s->tfi, tfe = s->tfe, pm = s->pm, few = s->few;
    i64 n_lat = s->n_lat;
    i64 ipk = 0;

    i64 pending = 0;
    for (i64 i = 0; i < W; i++)
        pending += s->aw_n[i] + s->cw_n[i];

    for (i64 t = s->t0; t < t_end; ) {
        i64 slot = t % W;
        int in_window = (warm <= t) && (t < meas_end);

        /* --- 1. credit returns ----------------------------------- */
        {
            i64 n = s->cw_n[slot];
            if (n) {
                i64 *lvs = s->cw_lv + slot * SC;
                for (i64 i = 0; i < n; i++)
                    s->credits[lvs[i]] += 1;
                pending -= n;
                s->cw_n[slot] = 0;
            }
        }

        /* --- 2. flit arrivals ------------------------------------ */
        {
            i64 n = s->aw_n[slot];
            if (n) {
                i64 *fs = s->aw_f + slot * SC;
                i64 *lvs = s->aw_lv + slot * SC;
                for (i64 i = 0; i < n; i++) {
                    i64 lv = lvs[i];
                    i64 bl = s->b_len[lv];
                    if (bl == 0) {
                        i64 r = s->lv_dst[lv];
                        if (s->ne_len[r] >= s->max_in) {
                            s->error = 2;
                            goto out;
                        }
                        s->ne_arr[r * s->max_in + s->ne_len[r]++] = lv;
                        if (!s->hot_flag[r]) {
                            s->hot_flag[r] = 1;
                            hot[hot_n++] = r;
                        }
                    }
                    s->buf[lv * BC + (s->b_head[lv] + bl) % BC] = fs[i];
                    s->b_len[lv] = bl + 1;
                }
                pending -= n;
                s->aw_n[slot] = 0;
            }
        }

        /* --- 3. packet generation (pre-resolved schedule) -------- */
        while (ipk < n_ev && s->ev_cycle[ipk] <= t) {
            i64 pid = s->ev_pid[ipk];
            i64 src = s->ev_src[ipk];
            ipk++;
            if (s->p_meas[pid])
                pm++;
            if (s->p_hops[pid] == 0) {
                /* src and dst share a router: deliver instantly */
                tfi += pkt_len;
                tfe += pkt_len;
                if (s->p_meas[pid]) {
                    few += pkt_len;
                    s->lat_out[n_lat] = 0;
                    s->hops_out[n_lat] = 0;
                    s->pid_out[n_lat] = pid;
                    n_lat++;
                }
                continue;
            }
            if (s->sq_len[src] == 0)
                s->s_fidx[src] = 0;
            s->sq_arena[s->sq_off[src] + s->sq_head[src] + s->sq_len[src]]
                = pid;
            s->sq_len[src] += 1;
            if (!s->hot_flag[src]) {
                s->hot_flag[src] = 1;
                hot[hot_n++] = src;
            }
        }

        /* --- 4. arbitration -------------------------------------- */
        nxt_n = 0;
        for (i64 hi = 0; hi < hot_n; hi++) {
            i64 r = hot[hi];
            i64 nin = s->ne_len[r];
            i64 sqn = s->sq_len[r];
            if (nin == 0 && sqn == 0) {
                s->hot_flag[r] = 0;
                continue;
            }

            /* collect requests: descriptor (lv, or -2 for the source
             * queue) + requested output key, in the Python cores'
             * order: nonempty inputs first (insertion order), source
             * last.  Key -1 is the ejection port. */
            i64 *desc = s->sc_desc, *dkey = s->sc_key;
            i64 nd = 0;
            i64 *nearr = s->ne_arr + r * s->max_in;
            for (i64 i = 0; i < nin; i++) {
                i64 lv = nearr[i];
                i64 f = s->buf[lv * BC + s->b_head[lv]];
                i64 pid = f >> PID_SHIFT;
                i64 nh = (f & HOP_MASK) + 1;
                desc[nd] = lv;
                dkey[nd] = (nh == s->p_hops[pid])
                    ? -1
                    : s->route_link[s->p_off[pid] + nh];
                nd++;
            }
            if (sqn) {
                i64 pid = s->sq_arena[s->sq_off[r] + s->sq_head[r]];
                desc[nd] = -2;
                dkey[nd] = s->route_link[s->p_off[pid]];
                nd++;
            }

            /* process each output key once, in first-seen order */
            for (i64 i = 0; i < nd; i++) {
                i64 key = dkey[i];
                int seen = 0;
                for (i64 j = 0; j < i; j++)
                    if (dkey[j] == key) {
                        seen = 1;
                        break;
                    }
                if (seen)
                    continue;
                i64 *cand = s->sc_cand;
                i64 cn = 0;
                for (i64 j = i; j < nd; j++)
                    if (dkey[j] == key)
                        cand[cn++] = desc[j];

                i64 budget = (key < 0) ? ej_w : s->cap[key];
                if (cn > 1) {
                    i64 off;
                    if (key < 0) {
                        off = s->rr_eject[r];
                        s->rr_eject[r] = off + 1;
                    } else {
                        off = s->rr_link[key];
                        s->rr_link[key] = off + 1;
                    }
                    off %= cn;
                    if (off) {
                        /* rotate candidates for round-robin fairness */
                        i64 *tmp = s->sc_used;
                        for (i64 j = 0; j < cn; j++)
                            tmp[j] = cand[(off + j) % cn];
                        for (i64 j = 0; j < cn; j++)
                            cand[j] = tmp[j];
                    }
                }

                i64 *used = s->sc_used;
                for (i64 j = 0; j < cn; j++)
                    used[j] = 0;
                i64 granted = 0;
                for (i64 pass = 0; pass < budget; pass++) {
                    int progressed = 0;
                    for (i64 ci = 0; ci < cn; ci++) {
                        if (granted >= budget)
                            break;
                        i64 d = cand[ci];
                        if (d < 0) {
                            /* source queue head */
                            if (s->sq_len[r] == 0)
                                continue;
                            i64 pid = s->sq_arena[
                                s->sq_off[r] + s->sq_head[r]];
                            i64 base = s->p_off[pid];
                            if (s->route_link[base] != key)
                                continue;
                            if (budget > 1 && used[ci] >= inj_w)
                                continue;
                            i64 fidx = s->s_fidx[r];
                            i64 nlv = s->route_lv[base];
                            if (s->credits[nlv] <= 0)
                                continue;
                            i64 own = s->owner[nlv];
                            if (fidx == 0 ? own != -1 : own != pid)
                                continue;
                            tfi++;
                            s->credits[nlv] -= 1;
                            s->owner[nlv] = (fidx == szm1) ? -1 : pid;
                            {
                                i64 dslot =
                                    (t + s->route_delay[base]) % W;
                                i64 n2 = s->aw_n[dslot];
                                if (n2 >= SC) {
                                    s->error = 1;
                                    goto out;
                                }
                                s->aw_f[dslot * SC + n2] =
                                    (pid << PID_SHIFT)
                                    | (fidx << FIDX_SHIFT);
                                s->aw_lv[dslot * SC + n2] = nlv;
                                s->aw_n[dslot] = n2 + 1;
                            }
                            pending++;
                            if (fidx + 1 == pkt_len) {
                                s->sq_head[r] += 1;
                                s->sq_len[r] -= 1;
                                s->s_fidx[r] = 0;
                            } else {
                                s->s_fidx[r] = fidx + 1;
                            }
                        } else {
                            i64 bl = s->b_len[d];
                            if (bl == 0)
                                continue;
                            i64 f = s->buf[d * BC + s->b_head[d]];
                            i64 pid = f >> PID_SHIFT;
                            i64 fidx = (f >> FIDX_SHIFT) & FIDX_MASK;
                            i64 nh = (f & HOP_MASK) + 1;
                            if (nh == s->p_hops[pid]) {
                                /* eject (key must match) */
                                if (key >= 0)
                                    continue;
                                if (budget > 1
                                    && used[ci] >= s->cap_lv[d])
                                    continue;
                                s->b_head[d] =
                                    (s->b_head[d] + 1) % BC;
                                s->b_len[d] = bl - 1;
                                if (bl == 1)
                                    ne_remove(s, r, d);
                                {
                                    i64 dslot =
                                        (t + s->cdel_lv[d]) % W;
                                    i64 n2 = s->cw_n[dslot];
                                    if (n2 >= SC) {
                                        s->error = 1;
                                        goto out;
                                    }
                                    s->cw_lv[dslot * SC + n2] = d;
                                    s->cw_n[dslot] = n2 + 1;
                                }
                                pending++;
                                tfe++;
                                if (in_window)
                                    few++;
                                if (fidx == szm1 && s->p_meas[pid]) {
                                    s->lat_out[n_lat] =
                                        t - s->p_t0[pid];
                                    s->hops_out[n_lat] =
                                        s->p_hops[pid];
                                    s->pid_out[n_lat] = pid;
                                    n_lat++;
                                }
                            } else {
                                i64 base = s->p_off[pid] + nh;
                                if (s->route_link[base] != key)
                                    continue;
                                if (budget > 1
                                    && used[ci] >= s->cap_lv[d])
                                    continue;
                                i64 nlv = s->route_lv[base];
                                if (s->credits[nlv] <= 0)
                                    continue;
                                i64 own = s->owner[nlv];
                                if (fidx == 0 ? own != -1 : own != pid)
                                    continue;
                                s->b_head[d] =
                                    (s->b_head[d] + 1) % BC;
                                s->b_len[d] = bl - 1;
                                if (bl == 1)
                                    ne_remove(s, r, d);
                                {
                                    i64 dslot =
                                        (t + s->cdel_lv[d]) % W;
                                    i64 n2 = s->cw_n[dslot];
                                    if (n2 >= SC) {
                                        s->error = 1;
                                        goto out;
                                    }
                                    s->cw_lv[dslot * SC + n2] = d;
                                    s->cw_n[dslot] = n2 + 1;
                                }
                                s->credits[nlv] -= 1;
                                s->owner[nlv] =
                                    (fidx == szm1) ? -1 : pid;
                                {
                                    i64 dslot =
                                        (t + s->route_delay[base]) % W;
                                    i64 n2 = s->aw_n[dslot];
                                    if (n2 >= SC) {
                                        s->error = 1;
                                        goto out;
                                    }
                                    s->aw_f[dslot * SC + n2] = f + 1;
                                    s->aw_lv[dslot * SC + n2] = nlv;
                                    s->aw_n[dslot] = n2 + 1;
                                }
                                pending += 2;
                            }
                        }
                        if (budget > 1)
                            used[ci] += 1;
                        granted++;
                        progressed = 1;
                    }
                    if (!progressed || granted >= budget)
                        break;
                }
            }

            if (s->ne_len[r] || s->sq_len[r]) {
                nxt[nxt_n++] = r;
            } else {
                s->hot_flag[r] = 0;
            }
        }

        /* swap hot lists */
        {
            i64 *tl = hot;
            hot = nxt;
            nxt = tl;
            hot_n = nxt_n;
        }

        t++;
        /* --- idle fast-forward ----------------------------------- */
        if (hot_n == 0 && pending == 0) {
            if (ipk < n_ev)
                t = s->ev_cycle[ipk];
            else
                break;
        }
    }

out:
    /* persist the hot list in hot_a for the next run() */
    if (hot != s->hot_a) {
        for (i64 i = 0; i < hot_n; i++)
            s->hot_a[i] = hot[i];
    }
    s->hot_n = hot_n;
    s->tfi = tfi;
    s->tfe = tfe;
    s->pm = pm;
    s->few = few;
    s->n_lat = n_lat;
    return s->error;
}

/* ------------------------------------------------------------------ *
 * Batched entry: run N independent lanes (one struct S each, fully
 * isolated state) with optional pthread workers.  Lanes are pulled
 * from a shared atomic index, so any thread count yields the same
 * per-lane results as a serial loop — bit-identical by construction.
 *
 * Compiled with -DREPRO_HAVE_PTHREADS (and -pthread) when the
 * toolchain supports it; otherwise the entry still exists and runs
 * the lanes serially, so the Python side needs no capability probe.
 * ------------------------------------------------------------------ */

#ifdef REPRO_HAVE_PTHREADS
#include <pthread.h>

typedef struct {
    S *states;
    i64 n;
    i64 next; /* atomic lane cursor */
} BatchCtl;

static void *batch_worker(void *arg)
{
    BatchCtl *ctl = (BatchCtl *)arg;
    for (;;) {
        i64 i = __atomic_fetch_add(&ctl->next, 1, __ATOMIC_RELAXED);
        if (i >= ctl->n)
            break;
        sim_run(&ctl->states[i]);
    }
    return 0;
}
#endif

#define BATCH_MAX_THREADS 64

/* Returns the first lane's nonzero error code (0 = all lanes ok);
 * per-lane codes stay readable in states[i].error either way. */
i64 sim_run_batch(S *states, i64 n, i64 threads)
{
    if (n <= 0)
        return 0;
    if (threads > n)
        threads = n;
#ifdef REPRO_HAVE_PTHREADS
    if (threads > 1) {
        pthread_t tid[BATCH_MAX_THREADS];
        BatchCtl ctl;
        i64 started = 0;
        if (threads > BATCH_MAX_THREADS)
            threads = BATCH_MAX_THREADS;
        ctl.states = states;
        ctl.n = n;
        ctl.next = 0;
        for (i64 i = 0; i < threads - 1; i++) {
            if (pthread_create(&tid[started], 0, batch_worker, &ctl))
                break; /* thread-spawn failure: caller thread picks up */
            started++;
        }
        batch_worker(&ctl);
        for (i64 i = 0; i < started; i++)
            pthread_join(tid[i], 0);
    } else
#endif
    {
        for (i64 i = 0; i < n; i++)
            sim_run(&states[i]);
    }
    for (i64 i = 0; i < n; i++)
        if (states[i].error)
            return states[i].error;
    return 0;
}
