"""Cycle-accurate virtual-channel network simulator (CNSim substitute)."""

from .native import (
    THREADS_ENV,
    NativeBatch,
    NativeCore,
    native_available,
    resolve_threads,
)
from .packet import Hop, Packet
from .params import SimParams
from .refcore import ReferenceCore
from .schedule import InjectionSchedule, build_injection_schedule
from .simcore import ArrayCore
from .simulator import CORE_ENV, Simulator, run_batch, run_simulation
from .stats import SIMRESULT_SCHEMA, SimResult
from .sweep import (
    LOADSWEEP_SCHEMA,
    LoadSweep,
    assemble_sweep,
    cutoff_walk,
    find_saturation,
    sweep_rates,
)

__all__ = [
    "Hop",
    "Packet",
    "SimParams",
    "Simulator",
    "run_batch",
    "run_simulation",
    "CORE_ENV",
    "THREADS_ENV",
    "ArrayCore",
    "NativeBatch",
    "NativeCore",
    "native_available",
    "resolve_threads",
    "ReferenceCore",
    "InjectionSchedule",
    "build_injection_schedule",
    "SIMRESULT_SCHEMA",
    "SimResult",
    "LOADSWEEP_SCHEMA",
    "LoadSweep",
    "assemble_sweep",
    "cutoff_walk",
    "find_saturation",
    "sweep_rates",
]
