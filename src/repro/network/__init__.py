"""Cycle-accurate virtual-channel network simulator (CNSim substitute)."""

from .packet import Hop, Packet
from .params import SimParams
from .simulator import Simulator, run_simulation
from .stats import SimResult
from .sweep import (
    LoadSweep,
    assemble_sweep,
    cutoff_walk,
    find_saturation,
    sweep_rates,
)

__all__ = [
    "Hop",
    "Packet",
    "SimParams",
    "Simulator",
    "run_simulation",
    "SimResult",
    "LoadSweep",
    "assemble_sweep",
    "cutoff_walk",
    "find_saturation",
    "sweep_rates",
]
