"""Cycle-accurate virtual-channel network simulator (CNSim substitute)."""

from .packet import Hop, Packet
from .params import SimParams
from .simulator import Simulator, run_simulation
from .stats import SIMRESULT_SCHEMA, SimResult
from .sweep import (
    LOADSWEEP_SCHEMA,
    LoadSweep,
    assemble_sweep,
    cutoff_walk,
    find_saturation,
    sweep_rates,
)

__all__ = [
    "Hop",
    "Packet",
    "SimParams",
    "Simulator",
    "run_simulation",
    "SIMRESULT_SCHEMA",
    "SimResult",
    "LOADSWEEP_SCHEMA",
    "LoadSweep",
    "assemble_sweep",
    "cutoff_walk",
    "find_saturation",
    "sweep_rates",
]
