"""Compiled kernel for the struct-of-arrays simulator core.

The pure-Python :class:`~repro.network.simcore.ArrayCore` already lays
every piece of hot state out as flat integer arrays — which makes the
inner loop mechanically portable to C.  This module compiles
``_simcore.c`` on demand (plain ``cc -O2 -shared -fPIC``; no Python
headers, no build-system dependency), loads it via :mod:`ctypes`, and
wraps it as :class:`NativeCore`.

The enabling observation is that the stdlib RNG stream is consumed
*only* by destination and route choice, in injection-schedule order —
so the whole packet table (destinations, flattened routes, creation
cycles) can be resolved in Python before the hot loop starts, and the
C kernel runs the entire warmup+measure+drain window without a single
callback.  Given the same schedule the kernel replicates the Python
cores' cycle semantics exactly, so ``NativeCore`` produces
**bit-identical** :class:`~repro.network.stats.SimResult`\\ s to
``ArrayCore`` (asserted by ``tests/network/test_core_equivalence.py``).

When no C compiler is available the loader returns ``None`` and
:class:`~repro.network.simulator.Simulator` silently falls back to the
pure-Python array core; nothing in the public API changes.  Set
``REPRO_SIM_CORE=array`` (or ``native``/``reference``) to pin a core,
and ``REPRO_NATIVE_CACHE`` to relocate the compiled-object cache.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from typing import List, Optional

import numpy as np

from .simcore import ArrayCore
from .schedule import InjectionSchedule, build_injection_schedule
from .stats import SimResult

__all__ = ["NativeCore", "load_native", "native_available"]

_C_SOURCE = Path(__file__).with_name("_simcore.c")

_i64p = ctypes.POINTER(ctypes.c_int64)
_u8p = ctypes.POINTER(ctypes.c_uint8)


class _SimState(ctypes.Structure):
    """Mirror of ``struct S`` in ``_simcore.c`` (same field order)."""

    _fields_ = [
        ("num_nodes", ctypes.c_int64),
        ("num_links", ctypes.c_int64),
        ("num_lv", ctypes.c_int64),
        ("wheel_size", ctypes.c_int64),
        ("slot_cap", ctypes.c_int64),
        ("buf_cap", ctypes.c_int64),
        ("max_in", ctypes.c_int64),
        ("pkt_len", ctypes.c_int64),
        ("inj_w", ctypes.c_int64),
        ("ej_w", ctypes.c_int64),
        ("warm", ctypes.c_int64),
        ("meas_end", ctypes.c_int64),
        ("t_end", ctypes.c_int64),
        ("t0", ctypes.c_int64),
        ("n_ev", ctypes.c_int64),
        ("n_lat", ctypes.c_int64),
        ("tfi", ctypes.c_int64),
        ("tfe", ctypes.c_int64),
        ("pm", ctypes.c_int64),
        ("few", ctypes.c_int64),
        ("hot_n", ctypes.c_int64),
        ("error", ctypes.c_int64),
        ("cap", _i64p),
        ("lv_dst", _i64p),
        ("cap_lv", _i64p),
        ("cdel_lv", _i64p),
        ("credits", _i64p),
        ("owner", _i64p),
        ("buf", _i64p),
        ("b_head", _i64p),
        ("b_len", _i64p),
        ("ne_arr", _i64p),
        ("ne_len", _i64p),
        ("sq_arena", _i64p),
        ("sq_off", _i64p),
        ("sq_head", _i64p),
        ("sq_len", _i64p),
        ("s_fidx", _i64p),
        ("aw_f", _i64p),
        ("aw_lv", _i64p),
        ("aw_n", _i64p),
        ("cw_lv", _i64p),
        ("cw_n", _i64p),
        ("rr_link", _i64p),
        ("rr_eject", _i64p),
        ("hot_a", _i64p),
        ("hot_b", _i64p),
        ("hot_flag", _u8p),
        ("p_off", _i64p),
        ("p_hops", _i64p),
        ("p_t0", _i64p),
        ("p_meas", _i64p),
        ("route_lv", _i64p),
        ("route_link", _i64p),
        ("route_delay", _i64p),
        ("ev_cycle", _i64p),
        ("ev_src", _i64p),
        ("ev_pid", _i64p),
        ("lat_out", _i64p),
        ("hops_out", _i64p),
        ("pid_out", _i64p),
        ("sc_desc", _i64p),
        ("sc_key", _i64p),
        ("sc_cand", _i64p),
        ("sc_used", _i64p),
    ]


def _find_cc() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-dragonfly"


def _compile_library() -> Optional[Path]:
    """Compile ``_simcore.c`` into the cache, reusing prior builds."""
    cc = _find_cc()
    if cc is None or not _C_SOURCE.is_file():
        return None
    source = _C_SOURCE.read_bytes()
    tag = hashlib.sha256(
        source + sysconfig.get_platform().encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    out = cache / f"_simcore-{tag}.so"
    if out.is_file():
        return out
    tmp = None
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        cmd = [cc, "-O2", "-shared", "-fPIC", str(_C_SOURCE), "-o", tmp]
        res = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
        )
        if res.returncode != 0:
            return None
        os.replace(tmp, out)  # atomic: concurrent builders race safely
        tmp = None
        return out
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


_LIB = None
_LIB_TRIED = False


def load_native():
    """Compile (once) and load the kernel; ``None`` if unavailable."""
    global _LIB, _LIB_TRIED
    if _LIB_TRIED:
        return _LIB
    _LIB_TRIED = True
    path = _compile_library()
    if path is None:
        return None
    try:
        lib = ctypes.CDLL(str(path))
        lib.sim_run.argtypes = [ctypes.POINTER(_SimState)]
        lib.sim_run.restype = ctypes.c_int64
    except OSError:
        return None
    _LIB = lib
    return _LIB


def native_available() -> bool:
    """True when the compiled kernel can be (or has been) loaded."""
    return load_native() is not None


def _zeros(n: int) -> np.ndarray:
    return np.zeros(max(1, int(n)), dtype=np.int64)


def _as_i64(values) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    return arr if arr.size else _zeros(0)


def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(_i64p)


class NativeCore(ArrayCore):
    """Array core whose hot loop runs in the compiled kernel.

    Construction, route resolution, scheduling and measurement stay in
    Python (inherited from :class:`ArrayCore`); only the per-cycle loop
    is delegated.  Results are bit-identical to the pure-Python core.

    Probing (see :mod:`repro.metrics`) needs no kernel callbacks: the
    kernel already reports every delivered measured packet's latency,
    and alongside it writes the packet id (``pid_out``) — a bulk
    counter the probe layer decodes post-run.  Source/destination are
    captured in the Python pre-pass (:meth:`_resolve_packets`).
    Raises :class:`RuntimeError` when the kernel cannot be compiled —
    callers that want a fallback should check :func:`native_available`
    first (as :class:`~repro.network.simulator.Simulator` does).
    """

    core_id = "native"

    def __init__(self, graph, routing, traffic, params) -> None:
        super().__init__(graph, routing, traffic, params)
        lib = load_native()
        if lib is None:
            raise RuntimeError(
                "native simulation core unavailable "
                "(no C compiler or compilation failed); "
                "use core='array' instead"
            )
        self._lib = lib

        num_nodes = graph.num_nodes
        num_lv = self._num_lv
        B = params.vc_buffer_size

        indeg = [0] * num_nodes
        for link in graph.links:
            indeg[link.dst] += 1
        self._max_in = max(1, max(indeg, default=0) * self.num_vcs)

        # Per-wheel-slot capacity.  Arrivals delivered in one cycle are
        # bounded by the sum of link capacities (one issuing cycle per
        # link and slot).  Credit returns fold *different* issuing
        # cycles into one slot when links have different latencies, but
        # per issuing cycle each of a link's num_vcs buffers pops at
        # most `capacity` flits, so num_vcs * sum(cap) bounds both.
        slot_cap = self.num_vcs * sum(self._cap) + num_nodes * max(
            params.ejection_width, params.injection_width
        ) + 8
        self._slot_cap = slot_cap
        W = self._wheel_size

        self._n_cap = _as_i64(self._cap)
        self._n_lv_dst = _as_i64(self._lv_dst)
        self._n_cap_lv = _as_i64(self._cap_lv)
        self._n_cdel_lv = _as_i64(self._credit_delay_lv)
        self._n_credits = np.full(num_lv, B, dtype=np.int64)
        self._n_owner = np.full(num_lv, -1, dtype=np.int64)
        self._n_buf = _zeros(num_lv * B)
        self._n_b_head = _zeros(num_lv)
        self._n_b_len = _zeros(num_lv)
        self._n_ne_arr = _zeros(num_nodes * self._max_in)
        self._n_ne_len = _zeros(num_nodes)
        self._n_sq_arena = _zeros(0)
        self._n_sq_off = _zeros(num_nodes)
        self._n_sq_head = _zeros(num_nodes)
        self._n_sq_len = _zeros(num_nodes)
        self._n_s_fidx = _zeros(num_nodes)
        self._n_aw_f = _zeros(W * slot_cap)
        self._n_aw_lv = _zeros(W * slot_cap)
        self._n_aw_n = _zeros(W)
        self._n_cw_lv = _zeros(W * slot_cap)
        self._n_cw_n = _zeros(W)
        self._n_rr_link = _zeros(graph.num_links)
        self._n_rr_eject = _zeros(num_nodes)
        self._n_hot_a = _zeros(num_nodes)
        self._n_hot_b = _zeros(num_nodes)
        self._n_hot_flag = np.zeros(max(1, num_nodes), dtype=np.uint8)
        self._n_hot_n = 0
        scratch = self._max_in + 1
        self._n_sc = [_zeros(scratch) for _ in range(4)]

    # ------------------------------------------------------------------
    def _resolve_packets(self, schedule: InjectionSchedule, t0, horizon):
        """Resolve every scheduled event into the packet table.

        Consumes the stdlib RNG exactly as the Python cores' injection
        phase does (destination draw, then route draw for packets that
        are actually created), so results stay bit-identical.  Events
        at or past the injection window (``horizon`` run-local cycles)
        are dropped *before* any RNG draw, matching the reference
        core's injection gate; stamps are absolute (``t0``-shifted).
        """
        dest = self.traffic.dest
        py_rng = self._py_rng
        route_slice = self._route_slice
        p_off = self._p_off
        p_hops = self._p_hops
        p_t0 = self._p_t0
        p_meas = self._p_meas
        probing = self._probe_mode
        p_src = self._p_src
        p_dst = self._p_dst

        warm = t0 + self.params.warmup_cycles
        meas_end = warm + self.params.measure_cycles
        ev_cycle: List[int] = []
        ev_src: List[int] = []
        ev_pid: List[int] = []
        npk = self._num_packets
        for t, nid in zip(schedule.cycles, schedule.nodes):
            if t >= horizon:
                break  # cycles are sorted; no RNG consumed past the gate
            t += t0
            dst = dest(nid, py_rng)
            if dst is None or dst == nid:
                continue
            off, nhops = route_slice(nid, dst)
            pid = npk
            npk += 1
            if probing:
                p_src.append(nid)
                p_dst.append(dst)
            p_off.append(off)
            p_hops.append(nhops)
            p_t0.append(t)
            p_meas.append(1 if warm <= t < meas_end else 0)
            ev_cycle.append(t)
            ev_src.append(nid)
            ev_pid.append(pid)
        self._num_packets = npk
        return ev_cycle, ev_src, ev_pid

    def _rebuild_srcq_arena(self, ev_src: List[int]) -> None:
        """Re-lay the per-node source-queue slices for this run.

        Heads are rewound to slice starts; leftovers from a previous
        run (drain may not empty saturated queues) are copied over, and
        each slice gets room for this run's new events.
        """
        num_nodes = self.graph.num_nodes
        need = np.zeros(num_nodes, dtype=np.int64)
        sq_len = self._n_sq_len
        need += sq_len
        for nid in ev_src:
            need[nid] += 1
        off = np.zeros(num_nodes, dtype=np.int64)
        if num_nodes > 1:
            off[1:] = np.cumsum(need[:-1])
        arena = _zeros(int(need.sum()))
        old = self._n_sq_arena
        old_off = self._n_sq_off
        old_head = self._n_sq_head
        for r in range(num_nodes):
            n = int(sq_len[r])
            if n:
                start = int(old_off[r] + old_head[r])
                arena[int(off[r]): int(off[r]) + n] = old[start: start + n]
        self._n_sq_arena = arena
        self._n_sq_off = off
        self._n_sq_head = np.zeros(num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    def run(
        self, rate: float, schedule: Optional[InjectionSchedule] = None
    ) -> SimResult:
        """Run the full warmup+measure+drain schedule at ``rate``."""
        p = self.params
        probs = self._checked_probs(rate)
        meas = p.measure_cycles
        horizon = p.warmup_cycles + meas
        # absolute cycle stamps: this run covers [t0, t_end)
        t0 = self._clock
        warm = t0 + p.warmup_cycles
        meas_end = warm + meas

        effective_offered = (
            float(np.array(probs, dtype=np.float64).sum())
            * p.packet_length
            / self._active_chips
            if self._active_chips
            else 0.0
        )

        if schedule is None:
            schedule = build_injection_schedule(
                self._active_nodes, probs, horizon, self._np_rng
            )

        ev_cycle, ev_src, ev_pid = self._resolve_packets(
            schedule, t0, horizon
        )
        self._rebuild_srcq_arena(ev_src)

        n_new = len(ev_pid)
        # sized for every latency the kernel may report this run: new
        # packets plus measured leftovers still in flight from earlier
        # runs (each delivered packet reports exactly once)
        out_cap = self._num_packets - len(self._latencies)
        lat_out = _zeros(out_cap)
        hops_out = _zeros(out_cap)
        pid_out = _zeros(out_cap)
        np_p_off = _as_i64(self._p_off)
        np_p_hops = _as_i64(self._p_hops)
        np_p_t0 = _as_i64(self._p_t0)
        np_p_meas = _as_i64(self._p_meas)
        np_route_lv = _as_i64(self._route_lv)
        np_route_link = _as_i64(self._route_link)
        np_route_delay = _as_i64(self._route_delay)
        np_ev_cycle = _as_i64(ev_cycle)
        np_ev_src = _as_i64(ev_src)
        np_ev_pid = _as_i64(ev_pid)

        st = _SimState(
            num_nodes=self.graph.num_nodes,
            num_links=self.graph.num_links,
            num_lv=self._num_lv,
            wheel_size=self._wheel_size,
            slot_cap=self._slot_cap,
            buf_cap=p.vc_buffer_size,
            max_in=self._max_in,
            pkt_len=p.packet_length,
            inj_w=p.injection_width,
            ej_w=p.ejection_width,
            warm=warm,
            meas_end=meas_end,
            t_end=meas_end + p.drain_cycles,
            t0=t0,
            n_ev=n_new,
            n_lat=0,
            tfi=self.total_flits_injected,
            tfe=self.total_flits_ejected,
            pm=self._packets_measured,
            few=self._flits_ejected_window,
            hot_n=self._n_hot_n,
            error=0,
            cap=_ptr(self._n_cap),
            lv_dst=_ptr(self._n_lv_dst),
            cap_lv=_ptr(self._n_cap_lv),
            cdel_lv=_ptr(self._n_cdel_lv),
            credits=_ptr(self._n_credits),
            owner=_ptr(self._n_owner),
            buf=_ptr(self._n_buf),
            b_head=_ptr(self._n_b_head),
            b_len=_ptr(self._n_b_len),
            ne_arr=_ptr(self._n_ne_arr),
            ne_len=_ptr(self._n_ne_len),
            sq_arena=_ptr(self._n_sq_arena),
            sq_off=_ptr(self._n_sq_off),
            sq_head=_ptr(self._n_sq_head),
            sq_len=_ptr(self._n_sq_len),
            s_fidx=_ptr(self._n_s_fidx),
            aw_f=_ptr(self._n_aw_f),
            aw_lv=_ptr(self._n_aw_lv),
            aw_n=_ptr(self._n_aw_n),
            cw_lv=_ptr(self._n_cw_lv),
            cw_n=_ptr(self._n_cw_n),
            rr_link=_ptr(self._n_rr_link),
            rr_eject=_ptr(self._n_rr_eject),
            hot_a=_ptr(self._n_hot_a),
            hot_b=_ptr(self._n_hot_b),
            hot_flag=self._n_hot_flag.ctypes.data_as(_u8p),
            p_off=_ptr(np_p_off),
            p_hops=_ptr(np_p_hops),
            p_t0=_ptr(np_p_t0),
            p_meas=_ptr(np_p_meas),
            route_lv=_ptr(np_route_lv),
            route_link=_ptr(np_route_link),
            route_delay=_ptr(np_route_delay),
            ev_cycle=_ptr(np_ev_cycle),
            ev_src=_ptr(np_ev_src),
            ev_pid=_ptr(np_ev_pid),
            lat_out=_ptr(lat_out),
            hops_out=_ptr(hops_out),
            pid_out=_ptr(pid_out),
            sc_desc=_ptr(self._n_sc[0]),
            sc_key=_ptr(self._n_sc[1]),
            sc_cand=_ptr(self._n_sc[2]),
            sc_used=_ptr(self._n_sc[3]),
        )
        err = self._lib.sim_run(ctypes.byref(st))
        if err:
            raise RuntimeError(
                f"native simulation kernel failed (error code {err})"
            )

        self._n_hot_n = int(st.hot_n)
        self._clock = meas_end + p.drain_cycles
        self.total_flits_injected = int(st.tfi)
        self.total_flits_ejected = int(st.tfe)
        self._packets_measured = int(st.pm)
        self._flits_ejected_window = int(st.few)
        n_lat = int(st.n_lat)
        self._latencies.extend(lat_out[:n_lat].tolist())
        self._hops.extend(hops_out[:n_lat].tolist())
        if self._probe_mode:
            self._eject_pid.extend(pid_out[:n_lat].tolist())

        return SimResult.from_samples(
            offered_rate=rate,
            effective_offered=effective_offered,
            latencies=self._latencies,
            hops=self._hops,
            packets_measured=self._packets_measured,
            flits_ejected=self._flits_ejected_window,
            active_chips=self._active_chips,
            measure_cycles=meas,
        )

    # ------------------------------------------------------------------
    def flits_in_flight(self) -> int:
        """Flits currently buffered or on wires (conservation checks)."""
        return int(self._n_b_len.sum()) + int(self._n_aw_n.sum())
