"""Compiled kernel for the struct-of-arrays simulator core.

The pure-Python :class:`~repro.network.simcore.ArrayCore` already lays
every piece of hot state out as flat integer arrays — which makes the
inner loop mechanically portable to C.  This module compiles
``_simcore.c`` on demand (plain ``cc -O2 -shared -fPIC``; no Python
headers, no build-system dependency), loads it via :mod:`ctypes`, and
wraps it as :class:`NativeCore`.

The enabling observation is that the stdlib RNG stream is consumed
*only* by destination and route choice, in injection-schedule order —
so the whole packet table (destinations, flattened routes, creation
cycles) can be resolved in Python before the hot loop starts, and the
C kernel runs the entire warmup+measure+drain window without a single
callback.  Given the same schedule the kernel replicates the Python
cores' cycle semantics exactly, so ``NativeCore`` produces
**bit-identical** :class:`~repro.network.stats.SimResult`\\ s to
``ArrayCore`` (asserted by ``tests/network/test_core_equivalence.py``).

When no C compiler is available the loader returns ``None`` and
:class:`~repro.network.simulator.Simulator` silently falls back to the
pure-Python array core; nothing in the public API changes.  Set
``REPRO_SIM_CORE=array`` (or ``native``/``reference``) to pin a core,
and ``REPRO_NATIVE_CACHE`` to relocate the compiled-object cache.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from typing import List, Optional

import numpy as np

from .simcore import ArrayCore
from .schedule import InjectionSchedule, build_injection_schedule
from .stats import SimResult
from .vecrandom import VecRandom

__all__ = [
    "NativeBatch",
    "NativeCore",
    "THREADS_ENV",
    "load_native",
    "native_available",
    "resolve_threads",
]

_C_SOURCE = Path(__file__).with_name("_simcore.c")

#: environment override for batch-lane kernel threads (default: auto =
#: the CPU count; ``1`` forces serial lanes).
THREADS_ENV = "REPRO_SIM_THREADS"


def resolve_threads(lanes: int, threads: Optional[int] = None) -> int:
    """Kernel threads for a batch of ``lanes``: explicit argument, else
    ``REPRO_SIM_THREADS``, else the CPU count — clamped to the lane
    count (extra threads would only spin on the empty work queue)."""
    if threads is None:
        env = os.environ.get(THREADS_ENV)
        if env:
            threads = int(env)
        else:
            threads = os.cpu_count() or 1
    return max(1, min(int(threads), max(1, lanes)))

_i64p = ctypes.POINTER(ctypes.c_int64)
_u8p = ctypes.POINTER(ctypes.c_uint8)


class _SimState(ctypes.Structure):
    """Mirror of ``struct S`` in ``_simcore.c`` (same field order)."""

    _fields_ = [
        ("num_nodes", ctypes.c_int64),
        ("num_links", ctypes.c_int64),
        ("num_lv", ctypes.c_int64),
        ("wheel_size", ctypes.c_int64),
        ("slot_cap", ctypes.c_int64),
        ("buf_cap", ctypes.c_int64),
        ("max_in", ctypes.c_int64),
        ("pkt_len", ctypes.c_int64),
        ("inj_w", ctypes.c_int64),
        ("ej_w", ctypes.c_int64),
        ("warm", ctypes.c_int64),
        ("meas_end", ctypes.c_int64),
        ("t_end", ctypes.c_int64),
        ("t0", ctypes.c_int64),
        ("n_ev", ctypes.c_int64),
        ("n_lat", ctypes.c_int64),
        ("tfi", ctypes.c_int64),
        ("tfe", ctypes.c_int64),
        ("pm", ctypes.c_int64),
        ("few", ctypes.c_int64),
        ("hot_n", ctypes.c_int64),
        ("error", ctypes.c_int64),
        ("cap", _i64p),
        ("lv_dst", _i64p),
        ("cap_lv", _i64p),
        ("cdel_lv", _i64p),
        ("credits", _i64p),
        ("owner", _i64p),
        ("buf", _i64p),
        ("b_head", _i64p),
        ("b_len", _i64p),
        ("ne_arr", _i64p),
        ("ne_len", _i64p),
        ("sq_arena", _i64p),
        ("sq_off", _i64p),
        ("sq_head", _i64p),
        ("sq_len", _i64p),
        ("s_fidx", _i64p),
        ("aw_f", _i64p),
        ("aw_lv", _i64p),
        ("aw_n", _i64p),
        ("cw_lv", _i64p),
        ("cw_n", _i64p),
        ("rr_link", _i64p),
        ("rr_eject", _i64p),
        ("hot_a", _i64p),
        ("hot_b", _i64p),
        ("hot_flag", _u8p),
        ("p_off", _i64p),
        ("p_hops", _i64p),
        ("p_t0", _i64p),
        ("p_meas", _i64p),
        ("route_lv", _i64p),
        ("route_link", _i64p),
        ("route_delay", _i64p),
        ("ev_cycle", _i64p),
        ("ev_src", _i64p),
        ("ev_pid", _i64p),
        ("lat_out", _i64p),
        ("hops_out", _i64p),
        ("pid_out", _i64p),
        ("sc_desc", _i64p),
        ("sc_key", _i64p),
        ("sc_cand", _i64p),
        ("sc_used", _i64p),
    ]


def _find_cc() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-dragonfly"


#: preferred flag set first; the plain serial build is the fallback for
#: toolchains without pthread support (sim_run_batch then loops lanes
#: serially, which is bit-identical anyway).
_FLAG_SETS = (
    ["-O3", "-shared", "-fPIC", "-pthread", "-DREPRO_HAVE_PTHREADS"],
    ["-O3", "-shared", "-fPIC"],
)


def _compile_library() -> Optional[Path]:
    """Compile ``_simcore.c`` into the cache, reusing prior builds."""
    cc = _find_cc()
    if cc is None or not _C_SOURCE.is_file():
        return None
    source = _C_SOURCE.read_bytes()
    for flags in _FLAG_SETS:
        tag = hashlib.sha256(
            source
            + " ".join(flags).encode()
            + sysconfig.get_platform().encode()
        ).hexdigest()[:16]
        cache = _cache_dir()
        out = cache / f"_simcore-{tag}.so"
        if out.is_file():
            return out
        tmp = None
        try:
            cache.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
            os.close(fd)
            cmd = [cc, *flags, str(_C_SOURCE), "-o", tmp]
            res = subprocess.run(
                cmd,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                timeout=120,
            )
            if res.returncode != 0:
                continue
            os.replace(tmp, out)  # atomic: concurrent builders race safely
            tmp = None
            return out
        except (OSError, subprocess.SubprocessError):
            continue
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
    return None


_LIB = None
_LIB_TRIED = False


def load_native():
    """Compile (once) and load the kernel; ``None`` if unavailable."""
    global _LIB, _LIB_TRIED
    if _LIB_TRIED:
        return _LIB
    _LIB_TRIED = True
    path = _compile_library()
    if path is None:
        return None
    try:
        lib = ctypes.CDLL(str(path))
        lib.sim_run.argtypes = [ctypes.POINTER(_SimState)]
        lib.sim_run.restype = ctypes.c_int64
        lib.sim_run_batch.argtypes = [
            ctypes.POINTER(_SimState),
            ctypes.c_int64,
            ctypes.c_int64,
        ]
        lib.sim_run_batch.restype = ctypes.c_int64
    except OSError:
        return None
    except AttributeError:
        # a pre-batch cached build is stale; one-shot rebuilds are not
        # worth the complexity — clearing the cache dir fixes it
        return None
    _LIB = lib
    return _LIB


def native_available() -> bool:
    """True when the compiled kernel can be (or has been) loaded."""
    return load_native() is not None


#: largest num_nodes**2 for which the route-pair mirror also keeps a
#: dense direct-index table (2 x int64 -> 16 MiB at the cap); bigger
#: graphs fall back to binary search on the sorted key mirror.
_DENSE_PAIRS_MAX = 1 << 20


def _zeros(n: int) -> np.ndarray:
    return np.zeros(max(1, int(n)), dtype=np.int64)


def _as_i64(values) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    return arr if arr.size else _zeros(0)


def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(_i64p)


class _LaneCtx:
    """Per-run staging between prepare, kernel call and finish.

    Holds the run's window bookkeeping plus references to every numpy
    buffer the packed ``struct S`` points into — the batch path keeps
    one of these per lane alive for the duration of the (possibly
    threaded) kernel call.
    """

    __slots__ = (
        "rate",
        "meas",
        "t0",
        "warm",
        "meas_end",
        "effective_offered",
        "np_ev_cycle",
        "np_ev_src",
        "np_ev_pid",
        "n_new",
        "lat_out",
        "hops_out",
        "pid_out",
        "keepalive",
        "st",
    )


class NativeCore(ArrayCore):
    """Array core whose hot loop runs in the compiled kernel.

    Construction, route resolution, scheduling and measurement stay in
    Python (inherited from :class:`ArrayCore`); only the per-cycle loop
    is delegated.  Results are bit-identical to the pure-Python core.

    Probing (see :mod:`repro.metrics`) needs no kernel callbacks: the
    kernel already reports every delivered measured packet's latency,
    and alongside it writes the packet id (``pid_out``) — a bulk
    counter the probe layer decodes post-run.  Source/destination are
    captured in the Python pre-pass (:meth:`_resolve_packets`).
    Raises :class:`RuntimeError` when the kernel cannot be compiled —
    callers that want a fallback should check :func:`native_available`
    first (as :class:`~repro.network.simulator.Simulator` does).
    """

    core_id = "native"

    def __init__(self, graph, routing, traffic, params) -> None:
        super().__init__(graph, routing, traffic, params)
        lib = load_native()
        if lib is None:
            raise RuntimeError(
                "native simulation core unavailable "
                "(no C compiler or compilation failed); "
                "use core='array' instead"
            )
        self._lib = lib

        #: packet-table segments kept as numpy arrays by the vectorized
        #: pre-pass (non-probed cores only — ``run_record`` reads the
        #: scalar lists).  List entries always precede part entries in
        #: pid order: the scalar pre-pass flushes parts before
        #: appending.
        self._p_parts: list = []

        num_nodes = graph.num_nodes
        num_lv = self._num_lv
        B = params.vc_buffer_size

        indeg = [0] * num_nodes
        for link in graph.links:
            indeg[link.dst] += 1
        self._max_in = max(1, max(indeg, default=0) * self.num_vcs)

        # Per-wheel-slot capacity.  Arrivals delivered in one cycle are
        # bounded by the sum of link capacities (one issuing cycle per
        # link and slot).  Credit returns fold *different* issuing
        # cycles into one slot when links have different latencies, but
        # per issuing cycle each of a link's num_vcs buffers pops at
        # most `capacity` flits, so num_vcs * sum(cap) bounds both.
        slot_cap = self.num_vcs * sum(self._cap) + num_nodes * max(
            params.ejection_width, params.injection_width
        ) + 8
        self._slot_cap = slot_cap
        W = self._wheel_size

        self._n_cap = _as_i64(self._cap)
        self._n_lv_dst = _as_i64(self._lv_dst)
        self._n_cap_lv = _as_i64(self._cap_lv)
        self._n_cdel_lv = _as_i64(self._credit_delay_lv)
        self._n_credits = np.full(num_lv, B, dtype=np.int64)
        self._n_owner = np.full(num_lv, -1, dtype=np.int64)
        self._n_buf = _zeros(num_lv * B)
        self._n_b_head = _zeros(num_lv)
        self._n_b_len = _zeros(num_lv)
        self._n_ne_arr = _zeros(num_nodes * self._max_in)
        self._n_ne_len = _zeros(num_nodes)
        self._n_sq_arena = _zeros(0)
        self._n_sq_off = _zeros(num_nodes)
        self._n_sq_head = _zeros(num_nodes)
        self._n_sq_len = _zeros(num_nodes)
        self._n_s_fidx = _zeros(num_nodes)
        self._n_aw_f = _zeros(W * slot_cap)
        self._n_aw_lv = _zeros(W * slot_cap)
        self._n_aw_n = _zeros(W)
        self._n_cw_lv = _zeros(W * slot_cap)
        self._n_cw_n = _zeros(W)
        self._n_rr_link = _zeros(graph.num_links)
        self._n_rr_eject = _zeros(num_nodes)
        self._n_hot_a = _zeros(num_nodes)
        self._n_hot_b = _zeros(num_nodes)
        self._n_hot_flag = np.zeros(max(1, num_nodes), dtype=np.uint8)
        self._n_hot_n = 0
        scratch = self._max_in + 1
        self._n_sc = [_zeros(scratch) for _ in range(4)]

        # Numpy mirror of the (src, dst) -> (offset, hops) route memo
        # for bulk lookup: [sorted pair keys, offsets, hops, memo size
        # at build time].  A shared mutable holder so batch lanes that
        # adopt this core's route plane see one mirror (see
        # :meth:`_adopt_route_plane`).  Slots 4/5 hold an optional
        # dense (src*nn+dst)-indexed offset/hops table (-1 offset =
        # unresolved) — valid because the slice memo is insert-only.
        self._pair_mirror: list = [None, None, None, -1, None, None]
        # Converted int64 route arena [(lv, link, delay) arrays, arena
        # length at conversion] — shared like the mirror, so a batch
        # only re-converts when new routes were appended.
        self._np_routes: list = [None, -1]

    # ------------------------------------------------------------------
    def _adopt_route_plane(self, donor: "NativeCore") -> None:
        """Share ``donor``'s route arena, memo and pair mirror.

        Only valid for deterministic routings (a route is a pure
        function of the pair, so lanes can pool resolutions) and only
        before any route was resolved on this core.  Lists are shared
        *by reference*: any lane resolving a new pair extends the one
        arena every lane's packet table points into.
        """
        if not (self._deterministic and donor._deterministic):
            return
        if self._route_lv or self._num_packets:
            raise RuntimeError(
                "route plane adoption must happen before any route is "
                "resolved on this core"
            )
        self._slice_memo = donor._slice_memo
        self._route_lv = donor._route_lv
        self._route_link = donor._route_link
        self._route_delay = donor._route_delay
        self._pair_mirror = donor._pair_mirror
        self._np_routes = donor._np_routes

    def _pair_table(self):
        """Current numpy view of the route memo (rebuilt when stale)."""
        memo = self._slice_memo
        mirror = self._pair_mirror
        if mirror[3] != len(memo):
            nn = self.graph.num_nodes
            n = len(memo)
            keys = np.fromiter(
                (s * nn + d for s, d in memo.keys()),
                dtype=np.int64,
                count=n,
            )
            offs = np.fromiter(
                (v[0] for v in memo.values()), dtype=np.int64, count=n
            )
            hops = np.fromiter(
                (v[1] for v in memo.values()), dtype=np.int64, count=n
            )
            order = np.argsort(keys)
            mirror[0] = keys[order]
            mirror[1] = offs[order]
            mirror[2] = hops[order]
            mirror[3] = n
            if nn * nn <= _DENSE_PAIRS_MAX:
                if mirror[4] is None:
                    mirror[4] = np.full(nn * nn, -1, dtype=np.int64)
                    mirror[5] = np.empty(nn * nn, dtype=np.int64)
                mirror[4][keys] = offs
                mirror[5][keys] = hops
        return mirror

    def _route_slices_bulk(self, srcs: np.ndarray, dsts: np.ndarray):
        """Vectorized ``_route_slice`` over aligned pair arrays.

        Missing pairs are resolved through the scalar single point of
        truth (appending to the shared arena and memo), then looked up
        via the sorted mirror.  Returns ``None`` when the memo cap
        keeps pairs out of the mirror — callers fall back to the
        scalar pre-pass.
        """
        nn = self.graph.num_nodes
        keys = srcs * nn + dsts
        tab = self._pair_table()
        # probe the mirror first: on a warmed route plane every pair
        # hits, and the np.unique pass only runs for actual misses.
        # Small graphs probe a dense table (one gather); larger ones
        # binary-search the sorted key mirror.
        if tab[4] is not None:
            off = tab[4][keys]
            miss = off < 0
            if not miss.any():
                return off, tab[5][keys]
            missing = np.unique(keys[miss])
        elif tab[0] is not None and tab[0].size:
            tk = tab[0]
            pos = np.searchsorted(tk, keys)
            clip = np.minimum(pos, tk.size - 1)
            miss = (pos >= tk.size) | (tk[clip] != keys)
            if not miss.any():
                return tab[1][clip], tab[2][clip]
            missing = np.unique(keys[miss])
        else:
            missing = np.unique(keys)
        route_slice = self._route_slice
        for k in missing.tolist():
            route_slice(int(k // nn), int(k % nn))
        tab = self._pair_table()
        if tab[4] is not None:
            off = tab[4][keys]
            if (off < 0).any():
                return None  # memo cap hit: resolved but unmirrored
            return off, tab[5][keys]
        tk = tab[0]
        pos = np.searchsorted(tk, keys)
        clip = np.minimum(pos, tk.size - 1)
        if ((pos >= tk.size) | (tk[clip] != keys)).any():
            return None  # memo cap hit: pairs resolved but unmirrored
        return tab[1][clip], tab[2][clip]

    # ------------------------------------------------------------------
    def _resolve_packets_vec(
        self, schedule: InjectionSchedule, t0, horizon
    ):
        """Vectorized twin of :meth:`_resolve_packets`.

        Destinations come from the traffic pattern's ``dest_batch``
        hook over a :class:`VecRandom` replica of the stdlib stream,
        routes from the bulk memo mirror — both bit-exact with the
        scalar pre-pass.  Returns ``None`` to decline (non-deterministic
        routing, no/declining hook, un-mirrorable memo); nothing is
        consumed from the RNG in that case, so the scalar path can take
        over from the exact same state.
        """
        if not self._deterministic:
            return None
        dest_batch = getattr(self.traffic, "dest_batch", None)
        if dest_batch is None:
            return None
        vr = VecRandom.for_rng(self._py_rng)
        if vr is None:
            return None
        cycles = schedule.np_cycles
        nodes = schedule.np_nodes
        n_ev = int(np.searchsorted(cycles, horizon, side="left"))
        cycles = cycles[:n_ev]
        nodes = nodes[:n_ev]
        if n_ev == 0:
            return [], [], []
        dsts = dest_batch(nodes, vr)
        if dsts is None:
            return None
        keep = (dsts >= 0) & (dsts != nodes)
        k_src = nodes[keep]
        k_dst = dsts[keep]
        k_t = cycles[keep] + t0
        if k_src.size:
            bulk = self._route_slices_bulk(k_src, k_dst)
            if bulk is None:
                return None  # pre-commit: the RNG was never advanced
            off, nhops = bulk
        else:
            off = nhops = np.empty(0, dtype=np.int64)
        vr.commit()
        warm = t0 + self.params.warmup_cycles
        meas_end = warm + self.params.measure_cycles
        meas = ((k_t >= warm) & (k_t < meas_end)).astype(np.int64)
        pid0 = self._num_packets
        if self._probe_mode:
            # run_record reads the scalar tables; keep them canonical
            self._p_off.extend(off.tolist())
            self._p_hops.extend(nhops.tolist())
            self._p_t0.extend(k_t.tolist())
            self._p_meas.extend(meas.tolist())
            self._p_src.extend(k_src.tolist())
            self._p_dst.extend(k_dst.tolist())
        elif k_src.size:
            self._p_parts.append((off, nhops, k_t, meas))
        n_new = int(k_src.size)
        self._num_packets = pid0 + n_new
        ev_pid = np.arange(pid0, pid0 + n_new, dtype=np.int64)
        return k_t, k_src, ev_pid

    # ------------------------------------------------------------------
    def _resolve_packets(self, schedule: InjectionSchedule, t0, horizon):
        """Resolve every scheduled event into the packet table.

        Consumes the stdlib RNG exactly as the Python cores' injection
        phase does (destination draw, then route draw for packets that
        are actually created), so results stay bit-identical.  Events
        at or past the injection window (``horizon`` run-local cycles)
        are dropped *before* any RNG draw, matching the reference
        core's injection gate; stamps are absolute (``t0``-shifted).
        """
        self._flush_packet_parts()
        dest = self.traffic.dest
        py_rng = self._py_rng
        route_slice = self._route_slice
        p_off = self._p_off
        p_hops = self._p_hops
        p_t0 = self._p_t0
        p_meas = self._p_meas
        probing = self._probe_mode
        p_src = self._p_src
        p_dst = self._p_dst

        warm = t0 + self.params.warmup_cycles
        meas_end = warm + self.params.measure_cycles
        ev_cycle: List[int] = []
        ev_src: List[int] = []
        ev_pid: List[int] = []
        npk = self._num_packets
        for t, nid in zip(schedule.cycles, schedule.nodes):
            if t >= horizon:
                break  # cycles are sorted; no RNG consumed past the gate
            t += t0
            dst = dest(nid, py_rng)
            if dst is None or dst == nid:
                continue
            off, nhops = route_slice(nid, dst)
            pid = npk
            npk += 1
            if probing:
                p_src.append(nid)
                p_dst.append(dst)
            p_off.append(off)
            p_hops.append(nhops)
            p_t0.append(t)
            p_meas.append(1 if warm <= t < meas_end else 0)
            ev_cycle.append(t)
            ev_src.append(nid)
            ev_pid.append(pid)
        self._num_packets = npk
        return ev_cycle, ev_src, ev_pid

    def _flush_packet_parts(self) -> None:
        """Fold vectorized packet-table parts back into the scalar
        lists (before a scalar pre-pass appends behind them)."""
        for off, nhops, t, meas in self._p_parts:
            self._p_off.extend(off.tolist())
            self._p_hops.extend(nhops.tolist())
            self._p_t0.extend(t.tolist())
            self._p_meas.extend(meas.tolist())
        self._p_parts.clear()

    def _rebuild_srcq_arena(self, ev_src) -> None:
        """Re-lay the per-node source-queue slices for this run.

        Heads are rewound to slice starts; leftovers from a previous
        run (drain may not empty saturated queues) are copied over, and
        each slice gets room for this run's new events.
        """
        num_nodes = self.graph.num_nodes
        ev_src = np.asarray(ev_src, dtype=np.int64)
        sq_len = self._n_sq_len
        need = sq_len + (
            np.bincount(ev_src, minlength=num_nodes)
            if ev_src.size
            else 0
        )
        off = np.zeros(num_nodes, dtype=np.int64)
        if num_nodes > 1:
            off[1:] = np.cumsum(need[:-1])
        arena = _zeros(int(need.sum()))
        old = self._n_sq_arena
        old_off = self._n_sq_off
        old_head = self._n_sq_head
        for r in np.flatnonzero(sq_len).tolist():
            n = int(sq_len[r])
            start = int(old_off[r] + old_head[r])
            arena[int(off[r]): int(off[r]) + n] = old[start: start + n]
        self._n_sq_arena = arena
        self._n_sq_off = off
        self._n_sq_head = np.zeros(num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    def _prepare(
        self,
        rate: float,
        schedule: Optional[InjectionSchedule] = None,
        *,
        vec: bool = False,
    ) -> "_LaneCtx":
        """Everything before the kernel call, minus the state struct:
        schedule sampling, packet pre-resolution (vectorized when
        ``vec`` and the config supports it) and the source-queue arena.
        """
        p = self.params
        probs = self._checked_probs(rate)
        meas = p.measure_cycles
        horizon = p.warmup_cycles + meas
        # absolute cycle stamps: this run covers [t0, t_end)
        t0 = self._clock
        warm = t0 + p.warmup_cycles
        meas_end = warm + meas

        effective_offered = (
            float(np.array(probs, dtype=np.float64).sum())
            * p.packet_length
            / self._active_chips
            if self._active_chips
            else 0.0
        )

        if schedule is None:
            schedule = build_injection_schedule(
                self._active_nodes, probs, horizon, self._np_rng
            )

        ev = self._resolve_packets_vec(schedule, t0, horizon) if vec else None
        if ev is None:
            ev = self._resolve_packets(schedule, t0, horizon)
        ev_cycle, ev_src, ev_pid = ev
        self._rebuild_srcq_arena(ev_src)

        ctx = _LaneCtx()
        ctx.rate = rate
        ctx.meas = meas
        ctx.t0 = t0
        ctx.warm = warm
        ctx.meas_end = meas_end
        ctx.effective_offered = effective_offered
        ctx.np_ev_cycle = _as_i64(ev_cycle)
        ctx.np_ev_src = _as_i64(ev_src)
        ctx.np_ev_pid = _as_i64(ev_pid)
        ctx.n_new = len(ev_pid)
        return ctx

    def _build_state(self, ctx: "_LaneCtx", routes=None) -> _SimState:
        """Pack the kernel's ``struct S`` for a prepared run.

        ``routes`` passes pre-converted shared route arrays (batch
        lanes convert the common arena once); every numpy buffer the
        struct points into is pinned on ``ctx`` until :meth:`_finish`.
        """
        p = self.params
        t0 = ctx.t0
        warm = ctx.warm
        meas_end = ctx.meas_end
        # sized for every latency the kernel may report this run: new
        # packets plus measured leftovers still in flight from earlier
        # runs (each delivered packet reports exactly once)
        out_cap = self._num_packets - len(self._latencies)
        lat_out = ctx.lat_out = _zeros(out_cap)
        hops_out = ctx.hops_out = _zeros(out_cap)
        pid_out = ctx.pid_out = _zeros(out_cap)
        parts = self._p_parts
        if parts and not self._p_off:
            # pure-vectorized history: the parts are already
            # contiguous int64 arrays — no list round-trip
            if len(parts) == 1:
                cols = parts[0]
            else:
                cols = tuple(
                    np.concatenate([pt[i] for pt in parts])
                    for i in range(4)
                )
            np_p_off, np_p_hops, np_p_t0, np_p_meas = (
                _as_i64(c) for c in cols
            )
        else:
            self._flush_packet_parts()
            np_p_off = _as_i64(self._p_off)
            np_p_hops = _as_i64(self._p_hops)
            np_p_t0 = _as_i64(self._p_t0)
            np_p_meas = _as_i64(self._p_meas)
        if routes is None:
            routes = (
                _as_i64(self._route_lv),
                _as_i64(self._route_link),
                _as_i64(self._route_delay),
            )
        np_route_lv, np_route_link, np_route_delay = routes
        np_ev_cycle = ctx.np_ev_cycle
        np_ev_src = ctx.np_ev_src
        np_ev_pid = ctx.np_ev_pid
        n_new = ctx.n_new
        ctx.keepalive = (
            np_p_off, np_p_hops, np_p_t0, np_p_meas,
            np_route_lv, np_route_link, np_route_delay,
        )

        st = _SimState(
            num_nodes=self.graph.num_nodes,
            num_links=self.graph.num_links,
            num_lv=self._num_lv,
            wheel_size=self._wheel_size,
            slot_cap=self._slot_cap,
            buf_cap=p.vc_buffer_size,
            max_in=self._max_in,
            pkt_len=p.packet_length,
            inj_w=p.injection_width,
            ej_w=p.ejection_width,
            warm=warm,
            meas_end=meas_end,
            t_end=meas_end + p.drain_cycles,
            t0=t0,
            n_ev=n_new,
            n_lat=0,
            tfi=self.total_flits_injected,
            tfe=self.total_flits_ejected,
            pm=self._packets_measured,
            few=self._flits_ejected_window,
            hot_n=self._n_hot_n,
            error=0,
            cap=_ptr(self._n_cap),
            lv_dst=_ptr(self._n_lv_dst),
            cap_lv=_ptr(self._n_cap_lv),
            cdel_lv=_ptr(self._n_cdel_lv),
            credits=_ptr(self._n_credits),
            owner=_ptr(self._n_owner),
            buf=_ptr(self._n_buf),
            b_head=_ptr(self._n_b_head),
            b_len=_ptr(self._n_b_len),
            ne_arr=_ptr(self._n_ne_arr),
            ne_len=_ptr(self._n_ne_len),
            sq_arena=_ptr(self._n_sq_arena),
            sq_off=_ptr(self._n_sq_off),
            sq_head=_ptr(self._n_sq_head),
            sq_len=_ptr(self._n_sq_len),
            s_fidx=_ptr(self._n_s_fidx),
            aw_f=_ptr(self._n_aw_f),
            aw_lv=_ptr(self._n_aw_lv),
            aw_n=_ptr(self._n_aw_n),
            cw_lv=_ptr(self._n_cw_lv),
            cw_n=_ptr(self._n_cw_n),
            rr_link=_ptr(self._n_rr_link),
            rr_eject=_ptr(self._n_rr_eject),
            hot_a=_ptr(self._n_hot_a),
            hot_b=_ptr(self._n_hot_b),
            hot_flag=self._n_hot_flag.ctypes.data_as(_u8p),
            p_off=_ptr(np_p_off),
            p_hops=_ptr(np_p_hops),
            p_t0=_ptr(np_p_t0),
            p_meas=_ptr(np_p_meas),
            route_lv=_ptr(np_route_lv),
            route_link=_ptr(np_route_link),
            route_delay=_ptr(np_route_delay),
            ev_cycle=_ptr(np_ev_cycle),
            ev_src=_ptr(np_ev_src),
            ev_pid=_ptr(np_ev_pid),
            lat_out=_ptr(lat_out),
            hops_out=_ptr(hops_out),
            pid_out=_ptr(pid_out),
            sc_desc=_ptr(self._n_sc[0]),
            sc_key=_ptr(self._n_sc[1]),
            sc_cand=_ptr(self._n_sc[2]),
            sc_used=_ptr(self._n_sc[3]),
        )
        ctx.st = st
        return st

    def _finish(self, ctx: "_LaneCtx", st: _SimState) -> SimResult:
        """Read the kernel's outputs back and build the result.

        ``st`` is the struct the kernel actually ran (for batches, the
        lane's slot in the packed array — not the ``ctx.st`` template
        it was copied from).
        """
        p = self.params
        self._n_hot_n = int(st.hot_n)
        self._clock = ctx.meas_end + p.drain_cycles
        self.total_flits_injected = int(st.tfi)
        self.total_flits_ejected = int(st.tfe)
        self._packets_measured = int(st.pm)
        self._flits_ejected_window = int(st.few)
        n_lat = int(st.n_lat)
        self._latencies.extend(ctx.lat_out[:n_lat].tolist())
        self._hops.extend(ctx.hops_out[:n_lat].tolist())
        if self._probe_mode:
            self._eject_pid.extend(ctx.pid_out[:n_lat].tolist())

        return SimResult.from_samples(
            offered_rate=ctx.rate,
            effective_offered=ctx.effective_offered,
            latencies=self._latencies,
            hops=self._hops,
            packets_measured=self._packets_measured,
            flits_ejected=self._flits_ejected_window,
            active_chips=self._active_chips,
            measure_cycles=ctx.meas,
        )

    def run(
        self,
        rate: float,
        schedule: Optional[InjectionSchedule] = None,
        plan=None,
    ) -> SimResult:
        """Run the full warmup+measure+drain schedule at ``rate``."""
        if plan is not None:
            # The C kernel has no per-cycle callback surface for the
            # closed-loop feedback, so decline and fall back to the
            # array core's Python loop (same decline idiom as
            # ``dest_batch = None``).  Results stay bit-identical to a
            # plain ArrayCore run of the same plan.
            return ArrayCore.run(self, rate, schedule=schedule, plan=plan)
        ctx = self._prepare(rate, schedule)
        st = self._build_state(ctx)
        err = self._lib.sim_run(ctypes.byref(st))
        if err:
            raise RuntimeError(
                f"native simulation kernel failed (error code {err})"
            )
        return self._finish(ctx, st)

    @classmethod
    def run_batch(
        cls,
        graph,
        routing,
        traffic,
        params,
        lanes,
        *,
        threads: Optional[int] = None,
        probes: bool = False,
        schedules=None,
    ):
        """Run N replica lanes through one packed kernel call.

        ``lanes`` is a sequence of ``(seed, rate)`` pairs; each lane is
        a fresh core over the shared graph/routing/traffic with
        ``params`` reseeded per lane.  Returns ``(cores, results)`` —
        the cores so probed callers can pull :meth:`run_record`.
        """
        batch = NativeBatch(
            graph,
            routing,
            traffic,
            params,
            [seed for seed, _ in lanes],
            probes=probes,
        )
        results = batch.run(
            [rate for _, rate in lanes],
            schedules=schedules,
            threads=threads,
        )
        return batch.lanes, results

    # ------------------------------------------------------------------
    def flits_in_flight(self) -> int:
        """Flits currently buffered or on wires (conservation checks)."""
        return int(self._n_b_len.sum()) + int(self._n_aw_n.sum())


class NativeBatch:
    """N replica lanes of one configuration, run as one kernel call.

    Each lane is an isolated :class:`NativeCore` (own seed-derived RNG
    streams, flit/VC/credit/latency state); what the lanes *share* is
    the read-only route plane: for deterministic routings every lane
    adopts the first lane's route arena, (src, dst) memo and numpy pair
    mirror, so each route slice is resolved once per batch instead of
    once per lane.  Packet pre-resolution uses the vectorized pre-pass
    when the traffic pattern offers ``dest_batch`` (falling back to the
    scalar resolve per lane otherwise), the per-lane ``struct S``
    states are packed into one contiguous ctypes array, and a single
    ``sim_run_batch`` call walks the lanes — threaded over
    :func:`resolve_threads` workers pulling lanes from an atomic
    cursor, which is bit-identical to the serial loop because lanes
    share no mutable state.

    A batch is **one-shot**: lanes accumulate measurement state, so
    ``run()`` raises on reuse.  Build a fresh batch per lane set (as
    :func:`repro.network.simulator.run_batch` and the engine do).  To
    amortise route resolution *across* batches of the same
    configuration, pass a previous batch's :attr:`route_donor` as
    ``route_donor`` — the new lanes adopt its already-resolved route
    plane instead of starting from an empty memo (the arena is
    append-only, so a stale donor is never wrong, just partial).
    """

    def __init__(
        self,
        graph,
        routing,
        traffic,
        params,
        seeds,
        *,
        probes: bool = False,
        route_donor: Optional[NativeCore] = None,
    ) -> None:
        self.lanes: List[NativeCore] = []
        donor: Optional[NativeCore] = None
        if (
            route_donor is not None
            and route_donor.graph is graph
            and route_donor.routing is routing
            and route_donor._deterministic
        ):
            donor = route_donor
        for seed in seeds:
            core = NativeCore(
                graph, routing, traffic, params.scaled(seed=int(seed))
            )
            if probes:
                core.enable_probes()
            if donor is None:
                donor = core
            else:
                core._adopt_route_plane(donor)
            self.lanes.append(core)
        self._shared_routes = (
            donor is not None
            and donor._deterministic
            and all(
                core._route_lv is donor._route_lv for core in self.lanes
            )
        )
        #: lane whose route plane a follow-up batch of the same
        #: (graph, routing) can adopt via the ``route_donor`` argument.
        self.route_donor: Optional[NativeCore] = (
            self.lanes[0] if self._shared_routes else None
        )
        self._ran = False

    def __len__(self) -> int:
        return len(self.lanes)

    def run(
        self,
        rates,
        schedules=None,
        *,
        threads: Optional[int] = None,
    ) -> List[SimResult]:
        """Run lane ``i`` at ``rates[i]`` (optionally pinning
        ``schedules[i]``); returns per-lane results in lane order."""
        if self._ran:
            raise RuntimeError(
                "NativeBatch is one-shot: lanes accumulate measurement "
                "state — build a fresh batch per lane set"
            )
        self._ran = True
        n = len(self.lanes)
        if len(rates) != n:
            raise ValueError(
                f"{len(rates)} rates for {n} lanes"
            )
        if schedules is not None and len(schedules) != n:
            raise ValueError(
                f"{len(schedules)} schedules for {n} lanes"
            )
        if n == 0:
            return []
        ctxs = [
            core._prepare(
                rates[i],
                schedules[i] if schedules is not None else None,
                vec=True,
            )
            for i, core in enumerate(self.lanes)
        ]
        # all lanes resolved: the shared arena is final, convert once
        # (and keep the conversion on the shared plane so a follow-up
        # batch adopting it re-converts only if routes were appended)
        routes = None
        if self._shared_routes:
            donor = self.lanes[0]
            cached = donor._np_routes
            if cached[1] != len(donor._route_lv):
                cached[0] = (
                    _as_i64(donor._route_lv),
                    _as_i64(donor._route_link),
                    _as_i64(donor._route_delay),
                )
                cached[1] = len(donor._route_lv)
            routes = cached[0]
        states = (_SimState * n)()
        for i, (core, ctx) in enumerate(zip(self.lanes, ctxs)):
            states[i] = core._build_state(ctx, routes)
        lib = self.lanes[0]._lib
        err = lib.sim_run_batch(states, n, resolve_threads(n, threads))
        if err:
            codes = [int(states[i].error) for i in range(n)]
            raise RuntimeError(
                "native batch kernel failed "
                f"(first error {err}; per-lane codes {codes})"
            )
        return [
            core._finish(ctx, states[i])
            for i, (core, ctx) in enumerate(zip(self.lanes, ctxs))
        ]
