"""Cycle-accurate flit-level network simulator with virtual channels.

This is the reproduction's substitute for CNSim [72]: an input-buffered,
credit-flow-controlled, wormhole virtual-channel simulator.  The model
per cycle is:

1. *Credit return* — credits released ``link latency`` cycles ago arrive
   back at the upstream arbiter.
2. *Flit arrival* — flits that finished traversing a link (+ router
   pipeline) are appended to the downstream input buffer of their
   ``(link, VC)`` pair.
3. *Injection* — every active terminal starts a packet as a Bernoulli
   process with probability ``rate / (packet_length * nodes_per_chip)``
   per cycle (rate in the paper's flits/cycle/chip unit).  The process
   is sampled up front into an injection schedule (geometric
   inter-arrival gaps — same law, vectorized; see
   :mod:`repro.network.schedule`).
4. *Arbitration* — for every router with pending input flits, head flits
   request their next output.  Each output link grants up to
   ``capacity`` flits per cycle, round-robin over requesting inputs,
   subject to downstream credits and wormhole VC ownership (an output VC
   is owned by one packet from head-flit grant until tail-flit grant,
   which keeps packets contiguous per VC).  Ejection ports grant up to
   ``ejection_width`` flits per cycle.

Packets are source routed (see :mod:`repro.network.packet`): contention,
buffer occupancy, credit stalls and VC ownership — the phenomena the
paper's latency/throughput figures measure — are fully simulated, while
route *choice* is made at injection, exactly as the paper's oblivious
minimal/non-minimal algorithms do.

Fault handling: every core drops a packet-start event whose traffic
pattern returns ``dest(...) is None`` — the hook
:class:`repro.faults.FaultMaskedTraffic` uses to mask failed endpoints
(dead terminals are additionally absent from ``active_nodes()``, so the
injection schedule samples no events for them).  Failed *links* never
appear in routes because :class:`repro.faults.FaultAwareRouting` routes
around them; the simulator arrays keep the healthy graph's link ids, so
degraded and healthy runs share the same core machinery.

:class:`Simulator` is a thin facade over three interchangeable cores:

* :class:`~repro.network.native.NativeCore` (default when a C compiler
  is present) — the struct-of-arrays core with its hot loop compiled
  on demand from ``_simcore.c``; bit-identical results to the array
  core.
* :class:`~repro.network.simcore.ArrayCore` (portable default) — the
  pure-Python struct-of-arrays core: packed-int flits, flat route
  arrays, integer VC ownership, cached head-flit requests, and
  idle-cycle fast-forwarding.
* :class:`~repro.network.refcore.ReferenceCore` — the original
  object-based implementation, kept as the semantic reference.

Select explicitly with ``Simulator(..., core="reference")`` or globally
via the ``REPRO_SIM_CORE`` environment variable.  Given the same pinned
:class:`~repro.network.schedule.InjectionSchedule` all cores produce
identical results; run free, the array/native cores consume the numpy
RNG stream differently from the reference core, so individual per-seed
numbers differ while curves agree within seed noise
(``benchmarks/bench_simcore.py`` quantifies both).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

from ..metrics import Probe, build_probe
from ..metrics.record import RunRecord
from ..topology.graph import NetworkGraph
from .native import NativeBatch, NativeCore, native_available
from .params import SimParams
from .refcore import ReferenceCore
from .schedule import InjectionSchedule
from .simcore import ArrayCore
from .stats import SimResult

__all__ = ["CORE_ENV", "Simulator", "run_batch", "run_simulation"]

#: environment override for the default simulation core.
CORE_ENV = "REPRO_SIM_CORE"

_CORES = {
    "array": ArrayCore,
    "native": NativeCore,
    "reference": ReferenceCore,
    "ref": ReferenceCore,
}

_CORE_NAMES = {
    ArrayCore: "array",
    NativeCore: "native",
    ReferenceCore: "reference",
}


class Simulator:
    """One simulation instance binding a graph, routing and traffic.

    Parameters
    ----------
    graph:
        The router network.
    routing:
        Object exposing ``num_vcs`` and ``route(src, dst, rng) ->
        [(link_id, vc), ...]``.
    traffic:
        Object exposing ``active_nodes()``, ``dest(src, rng)`` and
        ``num_active_chips()`` (see :mod:`repro.traffic.base`).
    params:
        Router/measurement knobs (Table IV defaults).
    core:
        ``"native"``, ``"array"`` or ``"reference"``; ``None`` reads
        the ``REPRO_SIM_CORE`` environment variable, then picks the
        native core when it can be compiled, else the array core.
    probes:
        Optional metric probes (see :mod:`repro.metrics`): a sequence
        of :class:`~repro.metrics.Probe` instances and/or registered
        kind names.  With probes attached, :meth:`run` additionally
        decodes the core's post-run record into typed channels stored
        on ``SimResult.channels`` (and keeps the record itself on
        :attr:`last_record`).  Without probes nothing is recorded and
        results are bit-identical to a probe-less build.

        A probed simulator is **single-run**: the cores accumulate
        measurement state across repeated ``run()`` calls, but probes
        decode the record against one measurement window, so a second
        probed ``run()`` raises instead of producing channels that mix
        windows.  Build a fresh ``Simulator`` per probed point (the
        engine always does).
    """

    def __init__(
        self,
        graph: NetworkGraph,
        routing,
        traffic,
        params: SimParams,
        *,
        core: Optional[str] = None,
        probes: Optional[Sequence[Union[Probe, str]]] = None,
    ) -> None:
        if core is None:
            core = os.environ.get(CORE_ENV) or None
        if core is None:
            core = "native" if native_available() else "array"
        try:
            core_cls = _CORES[core]
        except KeyError:
            raise ValueError(
                f"unknown simulation core {core!r}; "
                f"expected one of {sorted(set(_CORES))}"
            ) from None
        self.core_name = _CORE_NAMES[core_cls]
        self._core = core_cls(graph, routing, traffic, params)
        self.probes: List[Probe] = []
        for p in probes or ():
            if isinstance(p, Probe):
                self.probes.append(p)
            elif isinstance(p, str):
                self.probes.append(build_probe(p))
            else:  # (name, options) pair, as the spec metrics axis uses
                name, opts = p
                self.probes.append(build_probe(name, **dict(opts)))
        #: the most recent run's :class:`~repro.metrics.RunRecord`
        #: (``None`` until a probed run happened).
        self.last_record: Optional[RunRecord] = None
        if self.probes:
            self._core.enable_probes()
        self._probed_runs = 0

    # -- construction-time bindings (read-only conveniences) -----------
    @property
    def graph(self) -> NetworkGraph:
        return self._core.graph

    @property
    def routing(self):
        return self._core.routing

    @property
    def traffic(self):
        return self._core.traffic

    @property
    def params(self) -> SimParams:
        return self._core.params

    @property
    def num_vcs(self) -> int:
        return self._core.num_vcs

    # -- the simulation -------------------------------------------------
    def make_schedule(self, rate: float) -> InjectionSchedule:
        """Sample the injection schedule ``run(rate)`` would use.

        Consumes the core's numpy RNG, so either pass the result back
        into :meth:`run` (pinned mode) or use a fresh ``Simulator``.
        """
        return self._core.make_schedule(rate)

    def run(
        self,
        rate: float,
        schedule: Optional[InjectionSchedule] = None,
        plan=None,
    ) -> SimResult:
        """Run the full warmup+measure+drain window at ``rate``.

        ``rate`` is offered load in flits/cycle/chip over the traffic
        pattern's active chips.  ``schedule`` pins the packet-start
        events (used by the cross-core equivalence harness); by default
        the core samples its own.  ``plan`` switches to closed-loop
        mode (see :class:`~repro.workload.driver.PhasePlan`): injections
        follow the plan's phase releases and the run ends when the last
        phase drains.

        With probes attached, each probe decodes the run's record into
        one channel on the returned result — strictly after the core
        finished, so the simulated numbers are unaffected.
        """
        if self.probes:
            if self._probed_runs:
                raise RuntimeError(
                    "a probed Simulator is single-run: probes decode "
                    "one measurement window, but repeated run() calls "
                    "accumulate across windows — build a fresh "
                    "Simulator per probed point"
                )
            self._probed_runs = 1
        result = self._core.run(rate, schedule=schedule, plan=plan)
        if self.probes:
            record = self._core.run_record(rate)
            self.last_record = record
            for probe in self.probes:
                channel = probe.collect(record)
                result.channels[channel.name] = channel
        return result

    # -- conservation bookkeeping ---------------------------------------
    @property
    def total_flits_injected(self) -> int:
        return self._core.total_flits_injected

    @property
    def total_flits_ejected(self) -> int:
        return self._core.total_flits_ejected

    def flits_in_flight(self) -> int:
        """Flits currently buffered or on wires (conservation checks)."""
        return self._core.flits_in_flight()


def run_simulation(
    graph: NetworkGraph,
    routing,
    traffic,
    rate: float,
    params: Optional[SimParams] = None,
) -> SimResult:
    """Convenience wrapper: build a fresh :class:`Simulator` and run it."""
    sim = Simulator(graph, routing, traffic, params or SimParams())
    return sim.run(rate)


def _attach_probe_channels(core, rate, probes, result) -> None:
    for p in probes:
        channel = p.collect(core.run_record(rate))
        result.channels[channel.name] = channel


def run_batch(
    graph: NetworkGraph,
    routing,
    traffic,
    params: SimParams,
    lanes: Sequence[Tuple[int, float]],
    *,
    core: Optional[str] = None,
    threads: Optional[int] = None,
    probes: Optional[Sequence[Union[Probe, str]]] = None,
    schedules: Optional[Sequence[InjectionSchedule]] = None,
) -> List[SimResult]:
    """Simulate N replica lanes of one configuration as a batch.

    ``lanes`` is a sequence of ``(seed, rate)`` pairs; lane ``i`` runs
    a fresh simulator over the shared ``graph``/``routing``/``traffic``
    with ``params`` reseeded to ``lanes[i][0]``.  Results are
    **bit-identical** to running each lane through its own
    :class:`Simulator` — the batch only amortises setup (shared route
    resolution, vectorized destination pre-resolution, one kernel call)
    and, on multi-core hosts, threads lanes via ``REPRO_SIM_THREADS``
    / ``threads`` (see :func:`repro.network.native.resolve_threads`).

    ``core`` resolves exactly as in :class:`Simulator`; the packed
    native batch runs when the native core is selected, every other
    core falls back to an equivalent serial per-lane loop (same
    results, no amortisation).  ``probes`` build fresh per-lane probe
    instances; channels land on each lane's ``SimResult.channels``.
    """
    lanes = list(lanes)
    if schedules is not None and len(schedules) != len(lanes):
        raise ValueError(
            f"{len(schedules)} schedules for {len(lanes)} lanes"
        )
    if core is None:
        core = os.environ.get(CORE_ENV) or None
    if core is None:
        core = "native" if native_available() else "array"
    if core not in _CORES:
        raise ValueError(
            f"unknown simulation core {core!r}; "
            f"expected one of {sorted(set(_CORES))}"
        )

    def lane_probes() -> List[Probe]:
        built: List[Probe] = []
        for p in probes or ():
            if isinstance(p, Probe):
                built.append(p)
            elif isinstance(p, str):
                built.append(build_probe(p))
            else:
                name, opts = p
                built.append(build_probe(name, **dict(opts)))
        return built

    if core == "native" and native_available():
        batch = NativeBatch(
            graph,
            routing,
            traffic,
            params,
            [seed for seed, _ in lanes],
            probes=bool(probes),
        )
        results = batch.run(
            [rate for _, rate in lanes],
            schedules=schedules,
            threads=threads,
        )
        if probes:
            for i, (res, lane_core) in enumerate(
                zip(results, batch.lanes)
            ):
                _attach_probe_channels(
                    lane_core, lanes[i][1], lane_probes(), res
                )
        return results

    # serial fallback: per-lane simulators, same per-lane seeds and
    # probe semantics, so results match the packed path bit-for-bit
    results = []
    for i, (seed, rate) in enumerate(lanes):
        sim = Simulator(
            graph,
            routing,
            traffic,
            params.scaled(seed=int(seed)),
            core=core,
            probes=lane_probes() if probes else None,
        )
        results.append(
            sim.run(
                rate,
                schedule=(
                    schedules[i] if schedules is not None else None
                ),
            )
        )
    return results
