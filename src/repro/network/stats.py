"""Measurement aggregation for simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..metrics.channel import MetricChannel

__all__ = ["SIMRESULT_SCHEMA", "SimResult"]

#: stable schema tag stamped into serialised results; bump the version
#: suffix on incompatible field changes so foreign/stale payloads are
#: rejected instead of silently misread.
SIMRESULT_SCHEMA = "repro.sim-result/v1"

#: serialised scalar fields and the types they are restored as.
_SIMRESULT_FIELDS = {
    "offered_rate": float,
    "effective_offered": float,
    "accepted_rate": float,
    "avg_latency": float,
    "p50_latency": float,
    "p99_latency": float,
    "packets_measured": int,
    "packets_delivered": int,
    "flits_ejected": int,
    "active_chips": int,
    "measure_cycles": int,
    "avg_hops": float,
}


@dataclass
class SimResult:
    """Outcome of one simulation run at a fixed offered load.

    Rates are normalised in the paper's unit, flits/cycle/chip, where a
    "chip" is a chiplet (possibly containing several on-chip nodes).
    """

    #: nominal offered injection rate (flits/cycle/chip).
    offered_rate: float
    #: effectively offered rate: patterns with inactive nodes (e.g.
    #: permutation fixed points) inject less than nominal.
    effective_offered: float
    #: accepted throughput (flits ejected per cycle per active chip)
    #: during the measurement window.
    accepted_rate: float
    #: mean packet latency (cycles, creation -> tail ejection) over
    #: measured, delivered packets.  ``nan`` if nothing was delivered.
    avg_latency: float
    #: latency percentiles of the same population.
    p50_latency: float
    p99_latency: float
    #: number of packets created in the measurement window.
    packets_measured: int
    #: of those, how many were delivered before the simulation ended.
    packets_delivered: int
    #: total flits ejected during the measurement window.
    flits_ejected: int
    #: number of chips participating in traffic generation.
    active_chips: int
    #: cycles in the measurement window.
    measure_cycles: int
    #: mean hop count of delivered measured packets.
    avg_hops: float = float("nan")
    #: extra per-run diagnostics (delivered fraction, etc).
    extras: Dict[str, float] = field(default_factory=dict)
    #: typed metric channels produced by attached probes (see
    #: :mod:`repro.metrics`), keyed by channel name.  Empty for
    #: probe-off runs — and then absent from :meth:`to_dict`, so
    #: probe-off payloads stay byte-identical to pre-probe versions.
    channels: Dict[str, MetricChannel] = field(default_factory=dict)

    @property
    def delivered_fraction(self) -> float:
        if self.packets_measured == 0:
            return 1.0
        return self.packets_delivered / self.packets_measured

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag.

        A run is considered saturated when the network visibly fails to
        deliver the offered load: a large fraction of measured packets
        still stuck at the end, or (with enough samples for the estimate
        to be meaningful) accepted throughput below 90% of offered.
        """
        if self.offered_rate <= 0:
            return False
        if self.packets_measured >= 50 and self.delivered_fraction < 0.75:
            return True
        return (
            self.packets_measured >= 200
            and self.accepted_rate < 0.9 * self.effective_offered
        )

    @classmethod
    def from_samples(
        cls,
        *,
        offered_rate: float,
        effective_offered: float = -1.0,
        latencies: List[int],
        hops: List[int],
        packets_measured: int,
        flits_ejected: int,
        active_chips: int,
        measure_cycles: int,
    ) -> "SimResult":
        if latencies:
            arr = np.asarray(latencies, dtype=np.float64)
            avg = float(arr.mean())
            p50 = float(np.percentile(arr, 50))
            p99 = float(np.percentile(arr, 99))
        else:
            avg = p50 = p99 = float("nan")
        avg_hops = float(np.mean(hops)) if hops else float("nan")
        accepted = (
            flits_ejected / (measure_cycles * active_chips)
            if measure_cycles > 0 and active_chips > 0
            else 0.0
        )
        if effective_offered < 0:
            effective_offered = offered_rate
        return cls(
            offered_rate=offered_rate,
            effective_offered=effective_offered,
            accepted_rate=accepted,
            avg_latency=avg,
            p50_latency=p50,
            p99_latency=p99,
            packets_measured=packets_measured,
            packets_delivered=len(latencies),
            flits_ejected=flits_ejected,
            active_chips=active_chips,
            measure_cycles=measure_cycles,
            avg_hops=avg_hops,
        )

    def to_dict(self) -> Dict:
        """JSON-serialisable view (NaNs encoded as ``None``)."""
        out = {"schema": SIMRESULT_SCHEMA}
        for name in _SIMRESULT_FIELDS:
            val = getattr(self, name)
            if isinstance(val, float) and math.isnan(val):
                val = None
            out[name] = val
        out["extras"] = dict(self.extras)
        if self.channels:
            out["channels"] = {
                name: ch.to_dict() for name, ch in self.channels.items()
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        """Inverse of :meth:`to_dict` (unknown keys are ignored).

        Payloads written before schema tagging carry no ``schema`` key
        and are accepted; a tag from a different schema is rejected.
        """
        schema = data.get("schema")
        if schema is not None and schema != SIMRESULT_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as {SIMRESULT_SCHEMA!r}"
            )
        kwargs = {}
        for name, typ in _SIMRESULT_FIELDS.items():
            val = data[name]
            if val is None:
                val = float("nan")
            kwargs[name] = typ(val)
        channels = {
            name: MetricChannel.from_dict(ch)
            for name, ch in data.get("channels", {}).items()
        }
        return cls(
            extras=dict(data.get("extras", {})),
            channels=channels,
            **kwargs,
        )

    def __str__(self) -> str:
        return (
            f"rate={self.offered_rate:.3f} accepted={self.accepted_rate:.3f} "
            f"lat={self.avg_latency:.1f}cyc p99={self.p99_latency:.1f} "
            f"delivered={self.packets_delivered}/{self.packets_measured}"
        )
