"""Struct-of-arrays simulation core (the production data plane).

This core simulates exactly the model of
:mod:`repro.network.refcore` — credit-flow-controlled wormhole VC
routers with per-output round-robin arbitration — but stores all hot
state in flat integer structures instead of heap objects:

* **Packet state** lives in preallocated integer arrays indexed by
  packet id (``p_off``/``p_hops``/``p_t0``/``p_meas``); the arrays are
  sized once per run from the injection schedule, whose length is an
  exact upper bound on the number of packets.
* **Routes** are flattened into one shared trio of int arrays
  (``route_lv``/``route_link``/``route_delay``); a packet references its
  route as an ``(offset, hops)`` slice.  Deterministic routings share
  one slice per (src, dst) pair via a core-level memo.
* **Flits** are packed ints ``(pid << 22) | (flit_idx << 11) | hop`` —
  moving a flit one hop is ``f + 1``; an in-flight wheel event packs the
  destination ``(link, vc)`` index on top: ``(f' << 32) | lv``.
* **VC ownership** is an int array of packet ids (``-1`` = free), so the
  wormhole gate is a single integer compare instead of an object
  identity check.
* **Head-flit caching**: for every input port the core caches the head
  flit's decoded request (output key, next ``lv``, required owner,
  post-grant owner, prebuilt arrival event, hop delay).  When the next
  flit in a buffer is the granted flit's same-packet successor — the
  common case inside a wormhole — the cache is refreshed with two adds
  instead of a full decode.
* **Output-singleton arbitration**: request collection stores a bare
  input index per output until a second requester shows up, so the
  (overwhelmingly common) contention-free output skips candidate
  lists, round-robin rotation and the multi-pass grant loop entirely.
* **Injection** consumes a prebuilt
  :class:`~repro.network.schedule.InjectionSchedule` (vectorized
  geometric inter-arrival sampling), so idle cycles cost one integer
  compare, and stretches where nothing is in flight and nothing will
  inject are skipped outright (the drain phase ends as soon as the
  network is empty).

Equivalence: given the same pinned schedule, this core and
:class:`~repro.network.refcore.ReferenceCore` produce identical
results; ``tests/network/test_core_equivalence.py`` asserts it field by
field.  Without a pinned schedule the cores consume the numpy RNG
stream differently (geometric batches vs. per-cycle masks), which
shifts individual per-seed results but not the distribution — see
``benchmarks/bench_simcore.py`` for the curve-level comparison.

Measurement state accumulates across ``run()`` calls and the cycle
clock keeps counting, so leftover in-flight state from a truncated
drain stays consistent (wheel slots aligned, latencies non-negative).
The engine still builds a fresh instance per simulated point.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from ..metrics.record import RunRecord, failed_links_of
from ..topology.graph import NetworkGraph
from .params import SimParams
from .schedule import InjectionSchedule, build_injection_schedule
from .stats import SimResult

__all__ = ["ArrayCore"]

# Flit word layout: (pid << PID_SHIFT) | (flit_idx << FIDX_SHIFT) | hop.
# Wheel events add the destination lv: (flit << EV_SHIFT) | lv.
_HOP_BITS = 11
_FIDX_SHIFT = 11
_PID_SHIFT = 22
_EV_SHIFT = 32
_HOP_MASK = (1 << _HOP_BITS) - 1
_FIDX_MASK = (1 << (_PID_SHIFT - _FIDX_SHIFT)) - 1
_EV_MASK = (1 << _EV_SHIFT) - 1
_MAX_HOPS = _HOP_MASK  # longest representable route
#: same packet, next flit index: the successor of flit ``f`` is
#: ``f + _FIDX_STEP`` while it sits in the same buffer (same hop).
_FIDX_STEP = 1 << _FIDX_SHIFT
#: bump a source-head event's flit index in place.
_FIDX_INC = 1 << (_FIDX_SHIFT + _EV_SHIFT)


class ArrayCore:
    """Array-backed simulation core (see module docstring)."""

    #: name reported in :class:`~repro.metrics.RunRecord.core`.
    core_id = "array"

    def __init__(
        self,
        graph: NetworkGraph,
        routing,
        traffic,
        params: SimParams,
    ) -> None:
        self.graph = graph
        self.routing = routing
        self.traffic = traffic
        self.params = params

        if params.packet_length > _FIDX_MASK:
            raise ValueError(
                f"packet_length {params.packet_length} exceeds the array "
                f"core's flit-index field ({_FIDX_MASK}); use the "
                "reference core"
            )

        num_links = graph.num_links
        num_nodes = graph.num_nodes
        num_vcs = routing.num_vcs
        self.num_vcs = num_vcs

        self._hop_delay = [
            l.latency + params.router_latency for l in graph.links
        ]
        self._credit_delay = [max(1, l.latency) for l in graph.links]
        self._cap = [l.capacity for l in graph.links]

        num_lv = num_links * num_vcs
        self._num_lv = num_lv

        self._lv_dst = [graph.links[lv // num_vcs].dst for lv in range(num_lv)]
        self._cap_lv = [self._cap[lv // num_vcs] for lv in range(num_lv)]
        self._credit_delay_lv = [
            self._credit_delay[lv // num_vcs] for lv in range(num_lv)
        ]

        max_delay = max(self._hop_delay, default=1)
        max_delay = max(max_delay, max(self._credit_delay, default=1))
        self._wheel_size = max_delay + 1

        # The Python hot-loop state (buffers, head caches, wheels, …)
        # is sized O(num_lv) and allocated lazily on first run():
        # NativeCore inherits this constructor but keeps all of that
        # state in its own numpy mirrors instead.
        self._loop_ready = False

        self._np_rng = np.random.default_rng(params.seed)
        self._py_rng = random.Random(params.seed ^ 0x5EED)

        self._route_flat = getattr(routing, "route_flat", None)
        self._deterministic = bool(
            getattr(routing, "is_deterministic", False)
        )
        self._slice_memo_max = getattr(routing, "route_memo_max", 1 << 19)
        #: (src, dst) -> (offset, hops) into the shared route arrays.
        self._slice_memo: Dict = {}

        # Shared flattened route arrays: per hop, the (link*V + vc)
        # index, the link id (arbitration key) and the in-flight delay.
        self._route_lv: List[int] = []
        self._route_link: List[int] = []
        self._route_delay: List[int] = []

        self._active_nodes = list(traffic.active_nodes())
        self._active_chips = traffic.num_active_chips()
        chips = graph.chips()
        self._nodes_per_chip = {
            nid: len(chips[graph.nodes[nid].chip]) for nid in self._active_nodes
        }

        # Per-packet state, preallocated in run() from the schedule.
        self._p_off: List[int] = []
        self._p_hops: List[int] = []
        self._p_t0: List[int] = []
        self._p_meas: List[int] = []
        self._num_packets = 0

        self._latencies: List[int] = []
        self._hops: List[int] = []
        # Probe bookkeeping (see repro.metrics): disabled by default —
        # the hot loop then records nothing beyond the lists above.
        # When enabled (before the first run) the injection site keeps
        # per-packet source/destination and the ejection sites keep the
        # delivered packet ids, aligned with ``_latencies``.
        self._probe_mode = False
        self._p_src: List[int] = []
        self._p_dst: List[int] = []
        self._eject_pid: List[int] = []
        self._packets_measured = 0
        self._flits_ejected_window = 0
        self.total_flits_injected = 0
        self.total_flits_ejected = 0
        #: cycles simulated by previous run() calls.  The clock keeps
        #: counting across runs so that leftover in-flight events stay
        #: aligned with their wheel slots and leftover packets report
        #: non-negative latencies.  A fresh instance (the engine always
        #: uses one per point) starts at 0, where behaviour is
        #: bit-identical to the single-run semantics.
        self._clock = 0
        #: the closed-loop PhasePlan of the most recent run (None for
        #: open-loop runs); run_record() reads its phase records and
        #: measurement window.
        self._plan = None

    # ------------------------------------------------------------------
    def _init_loop_state(self) -> None:
        """Allocate the Python hot-loop state (first run() only)."""
        num_lv = self._num_lv
        num_nodes = self.graph.num_nodes
        num_links = self.graph.num_links
        self._buf: List[deque] = [deque() for _ in range(num_lv)]
        self._credits: List[int] = [
            self.params.vc_buffer_size
        ] * num_lv
        #: wormhole owner per (link, vc): packet id, -1 = free.
        self._owner: List[int] = [-1] * num_lv

        self._nonempty: List[Dict[int, bool]] = [
            {} for _ in range(num_nodes)
        ]
        self._srcq: List[deque] = [deque() for _ in range(num_nodes)]
        self._hot_flag = bytearray(num_nodes)
        self._hot_list: List[int] = []

        self._arrivals: List[list] = [
            [] for _ in range(self._wheel_size)
        ]
        self._credit_ret: List[list] = [
            [] for _ in range(self._wheel_size)
        ]

        self._rr_link = [0] * num_links
        self._rr_eject = [0] * num_nodes

        # Per-input-port head-flit cache (valid while the buffer is
        # non-empty): decoded request of the current head flit.
        self._hd_key = [0] * num_lv     # output link id, -1 = eject
        self._hd_nlv = [0] * num_lv     # next (link, vc) index
        self._hd_need = [0] * num_lv    # required owner of next lv
        self._hd_post = [0] * num_lv    # owner of next lv after grant
        self._hd_ev = [0] * num_lv      # prebuilt arrival event
        self._hd_delay = [0] * num_lv   # hop delay to next buffer
        self._hd_pid = [0] * num_lv     # packet id (eject bookkeeping)
        self._hd_tail = [0] * num_lv    # head is the tail flit (eject)

        # Source-queue head cache, per router.
        self._s_pid = [0] * num_nodes
        self._s_key = [0] * num_nodes
        self._s_nlv = [0] * num_nodes
        self._s_need = [0] * num_nodes
        self._s_post = [0] * num_nodes
        self._s_ev = [0] * num_nodes
        self._s_delay = [0] * num_nodes
        self._s_fidx = [0] * num_nodes
        self._loop_ready = True

    # ------------------------------------------------------------------
    def enable_probes(self) -> None:
        """Start recording the per-packet probe surface.

        Must be called before the first ``run()`` — packets injected
        earlier have no recorded source/destination, which would
        misalign the arrays.
        """
        if self._clock:
            raise RuntimeError(
                "probes must be enabled before the first run()"
            )
        self._probe_mode = True

    def run_record(self, rate: float) -> RunRecord:
        """Bulk measurement record of this core's runs so far."""
        if not self._probe_mode:
            raise RuntimeError(
                "probing was not enabled on this core; pass probes= to "
                "Simulator (or call enable_probes() before run())"
            )
        npk = self._num_packets
        p_done = [-1] * npk
        p_t0 = self._p_t0
        latencies = self._latencies
        for i, pid in enumerate(self._eject_pid):
            p_done[pid] = p_t0[pid] + latencies[i]
        p = self.params
        graph = self.graph
        plan = self._plan
        if plan is not None:
            # closed-loop: the whole makespan is the measurement window
            measure_start = plan._t0
            measure_cycles = plan.elapsed()
            measure_end = measure_start + measure_cycles
            phases = plan.phase_records()
        else:
            measure_end = self._clock - p.drain_cycles
            measure_start = measure_end - p.measure_cycles
            measure_cycles = p.measure_cycles
            phases = ()
        return RunRecord(
            core=self.core_id,
            rate=rate,
            num_nodes=graph.num_nodes,
            num_links=graph.num_links,
            num_vcs=self.num_vcs,
            packet_length=p.packet_length,
            measure_start=measure_start,
            measure_end=measure_end,
            measure_cycles=measure_cycles,
            active_chips=self._active_chips,
            phases=phases,
            p_src=list(self._p_src),
            p_dst=list(self._p_dst),
            p_t0=list(p_t0[:npk]),
            p_meas=list(self._p_meas[:npk]),
            p_done=p_done,
            p_hops=list(self._p_hops[:npk]),
            p_off=list(self._p_off[:npk]),
            route_lv=self._route_lv,
            node_chip={
                nid: node.chip for nid, node in enumerate(graph.nodes)
            },
            link_ends=[(l.src, l.dst) for l in graph.links],
            failed_links=failed_links_of(self.routing),
        )

    # ------------------------------------------------------------------
    def injection_probs(self, rate: float) -> List[float]:
        """Per-active-node packet-start probability per cycle."""
        pkt_len = self.params.packet_length
        return [
            rate / (pkt_len * self._nodes_per_chip[nid])
            for nid in self._active_nodes
        ]

    def make_schedule(self, rate: float) -> InjectionSchedule:
        """Sample this run's injection schedule (consumes the numpy RNG)."""
        probs = self._checked_probs(rate)
        p = self.params
        return build_injection_schedule(
            self._active_nodes,
            probs,
            p.warmup_cycles + p.measure_cycles,
            self._np_rng,
        )

    def _checked_probs(self, rate: float) -> List[float]:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        probs = self.injection_probs(rate)
        if any(pr > 1.0 for pr in probs):
            raise ValueError(
                f"offered rate {rate} exceeds 1 packet/node/cycle; "
                "increase packet_length or lower the rate"
            )
        return probs

    def _route_slice(self, nid: int, dst: int):
        """``(offset, hops)`` into the shared route arrays for a route
        ``nid -> dst``, resolving (and memoising, for deterministic
        routings) on demand.

        Single point of truth for route resolution: the Python hot
        loop and the native core's pre-pass both call it, which keeps
        their stdlib-RNG consumption byte-identical — the invariant
        behind cross-core bit-identity.
        """
        sl = (
            self._slice_memo.get((nid, dst))
            if self._deterministic
            else None
        )
        if sl is not None:
            return sl
        if self._route_flat is not None:
            path, path_lv = self._route_flat(nid, dst, self._py_rng)
        else:
            path = tuple(self.routing.route(nid, dst, self._py_rng))
            num_vcs = self.num_vcs
            path_lv = tuple(l * num_vcs + v for l, v in path)
        nhops = len(path_lv)
        if nhops > _MAX_HOPS:
            raise ValueError(
                f"route with {nhops} hops exceeds the core's hop "
                f"field ({_MAX_HOPS}); use the reference core"
            )
        route_lv = self._route_lv
        off = len(route_lv)
        route_lv.extend(path_lv)
        route_link = self._route_link
        route_delay = self._route_delay
        hop_delay = self._hop_delay
        for l, _v in path:
            route_link.append(l)
            route_delay.append(hop_delay[l])
        sl = (off, nhops)
        if (
            self._deterministic
            and len(self._slice_memo) < self._slice_memo_max
        ):
            self._slice_memo[(nid, dst)] = sl
        return sl

    # ------------------------------------------------------------------
    def run(
        self,
        rate: float,
        schedule: Optional[InjectionSchedule] = None,
        plan=None,
    ) -> SimResult:
        """Run the full warmup+measure+drain schedule at ``rate``.

        ``plan`` switches the run to closed-loop mode: injection events
        come from (and phase completions feed back into) a
        :class:`~repro.workload.driver.PhasePlan` instead of a
        pre-sampled schedule, and the loop ends when the plan's last
        phase drains.
        """
        if plan is not None and schedule is not None:
            raise ValueError("pass either a schedule or a plan, not both")
        if not self._loop_ready:
            self._init_loop_state()
        self._plan = plan
        p = self.params
        meas = p.measure_cycles
        # absolute cycle stamps: this run covers [t0, t_end)
        t0 = self._clock
        warm = t0 + p.warmup_cycles
        meas_end = warm + meas
        t_end = meas_end + p.drain_cycles
        pkt_len = p.packet_length
        szm1 = pkt_len - 1

        if plan is not None:
            if rate <= 0:
                raise ValueError("closed-loop rate must be > 0")
            # nothing is offered open-loop: the plan injects on demand
            effective_offered = 0.0
            ev_cycles = plan.ev_cycles
            ev_nodes = plan.ev_nodes
            ev_dests = plan.ev_dests
            n_ev = plan.begin(t0)
            ip = 0
            grow = [0] * plan.total_events
        else:
            probs = self._checked_probs(rate)
            # bit-identical to the reference core's
            # float(np.array(...).sum())
            effective_offered = (
                float(np.array(probs, dtype=np.float64).sum())
                * pkt_len
                / self._active_chips
                if self._active_chips
                else 0.0
            )

            if schedule is None:
                schedule = build_injection_schedule(
                    self._active_nodes,
                    probs,
                    p.warmup_cycles + meas,
                    self._np_rng,
                )
            # schedule cycles are run-local; shift them onto the clock
            ev_cycles = (
                [c + t0 for c in schedule.cycles]
                if t0
                else schedule.cycles
            )
            ev_nodes = schedule.nodes
            ev_dests = None
            n_ev = len(ev_cycles)
            ip = 0

            # Preallocate packet arrays: one slot per scheduled packet
            # start (extending, so packet ids stay valid across
            # repeated run()s).
            grow = [0] * n_ev
        p_off = self._p_off
        p_off.extend(grow)
        p_hops = self._p_hops
        p_hops.extend(grow)
        p_t0 = self._p_t0
        p_t0.extend(grow)
        p_meas = self._p_meas
        p_meas.extend(grow)
        npk = self._num_packets

        wheel_size = self._wheel_size
        arrivals = self._arrivals
        credit_ret = self._credit_ret
        buf = self._buf
        credits = self._credits
        owner = self._owner
        nonempty = self._nonempty
        srcq = self._srcq
        hot_flag = self._hot_flag
        hot_list = self._hot_list
        rr_link = self._rr_link
        rr_eject = self._rr_eject
        lv_dst = self._lv_dst
        cap_lv = self._cap_lv
        cdel_lv = self._credit_delay_lv
        cap = self._cap
        inj_w = p.injection_width
        ej_w = p.ejection_width

        route_lv = self._route_lv
        route_link = self._route_link
        route_delay = self._route_delay
        route_slice = self._route_slice
        dest = self.traffic.dest
        py_rng = self._py_rng
        plan_done = plan.packet_done if plan is not None else None

        hd_key = self._hd_key
        hd_nlv = self._hd_nlv
        hd_need = self._hd_need
        hd_post = self._hd_post
        hd_ev = self._hd_ev
        hd_delay = self._hd_delay
        hd_pid = self._hd_pid
        hd_tail = self._hd_tail
        s_pid = self._s_pid
        s_key = self._s_key
        s_nlv = self._s_nlv
        s_need = self._s_need
        s_post = self._s_post
        s_ev = self._s_ev
        s_delay = self._s_delay
        s_fidx = self._s_fidx

        latencies = self._latencies
        hops_out = self._hops
        probing = self._probe_mode
        p_src = self._p_src
        p_dst = self._p_dst
        eject_pid = self._eject_pid
        pm = self._packets_measured
        few = self._flits_ejected_window
        tfi = self.total_flits_injected
        tfe = self.total_flits_ejected

        #: wheel events (arrivals + credits) not yet delivered; when it
        #: is zero and no router is hot, only injections can wake the
        #: network, so the clock can jump.
        pending = sum(len(s) for s in arrivals)
        pending += sum(len(s) for s in credit_ret)

        def set_head(lv: int, f: int) -> None:
            """Refresh the head cache of input ``lv`` from flit ``f``."""
            hop = f & _HOP_MASK
            fidx = (f >> _FIDX_SHIFT) & _FIDX_MASK
            pid = f >> _PID_SHIFT
            nh = hop + 1
            if nh == p_hops[pid]:
                hd_key[lv] = -1
                hd_pid[lv] = pid
                hd_tail[lv] = fidx == szm1
            else:
                base = p_off[pid] + nh
                hd_key[lv] = route_link[base]
                nlv = route_lv[base]
                hd_nlv[lv] = nlv
                hd_delay[lv] = route_delay[base]
                hd_need[lv] = -1 if fidx == 0 else pid
                hd_post[lv] = -1 if fidx == szm1 else pid
                hd_ev[lv] = ((f + 1) << _EV_SHIFT) | nlv

        def set_src_head(r: int, pid: int) -> None:
            """Refresh router ``r``'s source-queue head cache."""
            base = p_off[pid]
            nlv = route_lv[base]
            s_pid[r] = pid
            s_key[r] = route_link[base]
            s_nlv[r] = nlv
            s_delay[r] = route_delay[base]
            s_need[r] = -1
            s_post[r] = -1 if szm1 == 0 else pid
            s_ev[r] = (pid << (_PID_SHIFT + _EV_SHIFT)) | nlv
            s_fidx[r] = 0

        t = t0
        while t < t_end:
            slot = t % wheel_size
            in_window = warm <= t < meas_end

            # --- 1. credit returns -------------------------------------
            crs = credit_ret[slot]
            if crs:
                pending -= len(crs)
                for lv in crs:
                    credits[lv] += 1
                credit_ret[slot] = []

            # --- 2. flit arrivals --------------------------------------
            arr_list = arrivals[slot]
            if arr_list:
                pending -= len(arr_list)
                for ev in arr_list:
                    lv = ev & _EV_MASK
                    b = buf[lv]
                    if b:
                        b.append(ev >> _EV_SHIFT)
                    else:
                        f = ev >> _EV_SHIFT
                        r = lv_dst[lv]
                        nonempty[r][lv] = True
                        if not hot_flag[r]:
                            hot_flag[r] = 1
                            hot_list.append(r)
                        b.append(f)
                        set_head(lv, f)
                arrivals[slot] = []

            # Rotated wheel views for this cycle: ``arr_at[d]`` is the
            # slot a grant with delay ``d`` lands in — all hot-path
            # ``(t + d) % wheel_size`` indexing collapses to one load.
            # Built after the drained slots were rebound, so ``[0]``
            # targets the *fresh* list (a delay-0 event waits one full
            # wheel turn, exactly as the modulo indexing did).
            arr_at = arrivals[slot:] + arrivals[:slot]
            cr_at = credit_ret[slot:] + credit_ret[:slot]

            # --- 3. packet generation (scheduled) ----------------------
            # the reference core never injects past the measurement
            # window; enforce the same gate for pinned schedules whose
            # horizon exceeds it
            if ip < n_ev and t >= meas_end:
                ip = n_ev
            while ip < n_ev and ev_cycles[ip] <= t:
                nid = ev_nodes[ip]
                if plan_done is not None:
                    # closed-loop: destination was planned at release;
                    # no drop branch, so pid == event index (the plan's
                    # phase lookup key)
                    dst = ev_dests[ip]
                    ip += 1
                else:
                    ip += 1
                    dst = dest(nid, py_rng)
                    if dst is None or dst == nid:
                        continue
                off, nhops = route_slice(nid, dst)
                pid = npk
                npk += 1
                p_off[pid] = off
                p_hops[pid] = nhops
                p_t0[pid] = t
                p_meas[pid] = in_window
                if probing:
                    p_src.append(nid)
                    p_dst.append(dst)
                if in_window:
                    pm += 1
                if nhops == 0:
                    # src and dst share a router: deliver instantly
                    tfi += pkt_len
                    tfe += pkt_len
                    if in_window:
                        few += pkt_len
                        latencies.append(0)
                        hops_out.append(0)
                        if probing:
                            eject_pid.append(pid)
                    if plan_done is not None:
                        plan_done(pid, t)
                    continue
                sq = srcq[nid]
                if not sq:
                    set_src_head(nid, pid)
                sq.append(pid)
                if not hot_flag[nid]:
                    hot_flag[nid] = 1
                    hot_list.append(nid)

            # --- 4. arbitration ----------------------------------------
            active_routers = hot_list
            hot_list = []
            for r in active_routers:
                ne = nonempty[r]
                sq = srcq[r]
                if not ne:
                    if not sq:
                        hot_flag[r] = 0
                        continue
                    # ---- source-only router ----------------------------
                    key = s_key[r]
                    budget = cap[key]
                    lim = budget if budget < inj_w else inj_w
                    arl = arr_at[s_delay[r]]
                    n = 0
                    while n < lim:
                        nlv = s_nlv[r]
                        if credits[nlv] <= 0 or owner[nlv] != s_need[r]:
                            break
                        tfi += 1
                        credits[nlv] -= 1
                        owner[nlv] = s_post[r]
                        arl.append(s_ev[r])
                        pending += 1
                        n += 1
                        nf = s_fidx[r] + 1
                        if nf == pkt_len:
                            sq.popleft()
                            if not sq:
                                break
                            set_src_head(r, sq[0])
                            if s_key[r] != key:
                                break
                        else:
                            s_fidx[r] = nf
                            s_ev[r] += _FIDX_INC
                            s_need[r] = s_pid[r]
                            if nf == szm1:
                                s_post[r] = -1
                    if sq:
                        hot_list.append(r)
                    else:
                        hot_flag[r] = 0
                    continue
                if not sq and len(ne) == 1:
                    # ---- single buffered input -------------------------
                    lv = next(iter(ne))
                    b = buf[lv]
                    key = hd_key[lv]
                    if key < 0:
                        # ejection port
                        in_cap = cap_lv[lv]
                        lim = ej_w if ej_w < in_cap else in_cap
                        crl = cr_at[cdel_lv[lv]]
                        n = 0
                        while n < lim:
                            f = b.popleft()
                            crl.append(lv)
                            pending += 1
                            tfe += 1
                            if in_window:
                                few += 1
                            if hd_tail[lv]:
                                pid = hd_pid[lv]
                                if p_meas[pid]:
                                    latencies.append(t - p_t0[pid])
                                    hops_out.append(p_hops[pid])
                                    if probing:
                                        eject_pid.append(pid)
                                if plan_done is not None:
                                    plan_done(pid, t)
                            n += 1
                            if not b:
                                del ne[lv]
                                break
                            f2 = b[0]
                            if f2 == f + _FIDX_STEP:
                                # same packet, next flit: still ejecting
                                hd_tail[lv] = (
                                    (f2 >> _FIDX_SHIFT) & _FIDX_MASK == szm1
                                )
                            else:
                                set_head(lv, f2)
                                if hd_key[lv] >= 0:
                                    break
                        if ne:
                            hot_list.append(r)
                        else:
                            hot_flag[r] = 0
                        continue
                    budget = cap[key]
                    in_cap = cap_lv[lv]
                    lim = budget if budget < in_cap else in_cap
                    crl = cr_at[cdel_lv[lv]]
                    arl = arr_at[hd_delay[lv]]
                    n = 0
                    while n < lim:
                        nlv = hd_nlv[lv]
                        if credits[nlv] <= 0 or owner[nlv] != hd_need[lv]:
                            break
                        f = b.popleft()
                        crl.append(lv)
                        credits[nlv] -= 1
                        owner[nlv] = hd_post[lv]
                        arl.append(hd_ev[lv])
                        pending += 2
                        n += 1
                        if not b:
                            del ne[lv]
                            break
                        f2 = b[0]
                        if f2 == f + _FIDX_STEP:
                            # same packet, next flit: same route position,
                            # so only owner gates and the event change
                            pid = f2 >> _PID_SHIFT
                            hd_need[lv] = pid
                            hd_post[lv] = (
                                -1
                                if (f2 >> _FIDX_SHIFT) & _FIDX_MASK == szm1
                                else pid
                            )
                            hd_ev[lv] += _FIDX_INC
                        else:
                            set_head(lv, f2)
                            if hd_key[lv] != key:
                                break
                    if ne:
                        hot_list.append(r)
                    else:
                        hot_flag[r] = 0
                    continue

                # ---- general path: multiple inputs / mixed sources ----
                # Request collection: an output key maps to its single
                # requesting input until a second one appears; only then
                # is a candidate list (and the round-robin/multi-pass
                # machinery below) materialized.  The source queue's
                # descriptor is -2 (buffered inputs are lv >= 0).
                reqs: Dict = {}
                for lv in ne:
                    k = hd_key[lv]
                    prev = reqs.get(k)
                    if prev is None:
                        reqs[k] = lv
                    elif type(prev) is list:
                        prev.append(lv)
                    else:
                        reqs[k] = [prev, lv]
                if sq:
                    k = s_key[r]
                    prev = reqs.get(k)
                    if prev is None:
                        reqs[k] = -2
                    elif type(prev) is list:
                        prev.append(-2)
                    else:
                        reqs[k] = [prev, -2]

                for key, cand in reqs.items():
                    if type(cand) is not list:
                        # ---- uncontended output: direct grant kernels --
                        lv = cand
                        if lv == -2:
                            # source queue head
                            budget = cap[key]
                            lim = budget if budget < inj_w else inj_w
                            arl = arr_at[s_delay[r]]
                            n = 0
                            while n < lim:
                                nlv = s_nlv[r]
                                if (
                                    credits[nlv] <= 0
                                    or owner[nlv] != s_need[r]
                                ):
                                    break
                                tfi += 1
                                credits[nlv] -= 1
                                owner[nlv] = s_post[r]
                                arl.append(s_ev[r])
                                pending += 1
                                n += 1
                                nf = s_fidx[r] + 1
                                if nf == pkt_len:
                                    sq.popleft()
                                    if not sq:
                                        break
                                    set_src_head(r, sq[0])
                                    if s_key[r] != key:
                                        break
                                else:
                                    s_fidx[r] = nf
                                    s_ev[r] += _FIDX_INC
                                    s_need[r] = s_pid[r]
                                    if nf == szm1:
                                        s_post[r] = -1
                        elif key < 0:
                            # ejection port
                            b = buf[lv]
                            in_cap = cap_lv[lv]
                            lim = ej_w if ej_w < in_cap else in_cap
                            crl = cr_at[cdel_lv[lv]]
                            n = 0
                            while n < lim:
                                f = b.popleft()
                                crl.append(lv)
                                pending += 1
                                tfe += 1
                                if in_window:
                                    few += 1
                                if hd_tail[lv]:
                                    pid = hd_pid[lv]
                                    if p_meas[pid]:
                                        latencies.append(t - p_t0[pid])
                                        hops_out.append(p_hops[pid])
                                        if probing:
                                            eject_pid.append(pid)
                                    if plan_done is not None:
                                        plan_done(pid, t)
                                n += 1
                                if not b:
                                    del ne[lv]
                                    break
                                f2 = b[0]
                                if f2 == f + _FIDX_STEP:
                                    hd_tail[lv] = (
                                        (f2 >> _FIDX_SHIFT) & _FIDX_MASK
                                        == szm1
                                    )
                                else:
                                    set_head(lv, f2)
                                    if hd_key[lv] >= 0:
                                        break
                        else:
                            b = buf[lv]
                            budget = cap[key]
                            in_cap = cap_lv[lv]
                            lim = budget if budget < in_cap else in_cap
                            crl = cr_at[cdel_lv[lv]]
                            arl = arr_at[hd_delay[lv]]
                            n = 0
                            while n < lim:
                                nlv = hd_nlv[lv]
                                if (
                                    credits[nlv] <= 0
                                    or owner[nlv] != hd_need[lv]
                                ):
                                    break
                                f = b.popleft()
                                crl.append(lv)
                                credits[nlv] -= 1
                                owner[nlv] = hd_post[lv]
                                arl.append(hd_ev[lv])
                                pending += 2
                                n += 1
                                if not b:
                                    del ne[lv]
                                    break
                                f2 = b[0]
                                if f2 == f + _FIDX_STEP:
                                    pid = f2 >> _PID_SHIFT
                                    hd_need[lv] = pid
                                    hd_post[lv] = (
                                        -1
                                        if (f2 >> _FIDX_SHIFT) & _FIDX_MASK
                                        == szm1
                                        else pid
                                    )
                                    hd_ev[lv] += _FIDX_INC
                                else:
                                    set_head(lv, f2)
                                    if hd_key[lv] != key:
                                        break
                        continue

                    # ---- contended output: round-robin multi-pass ------
                    budget = ej_w if key < 0 else cap[key]
                    if key < 0:
                        off = rr_eject[r]
                        rr_eject[r] = off + 1
                    else:
                        off = rr_link[key]
                        rr_link[key] = off + 1
                    off %= len(cand)
                    if off:
                        cand = cand[off:] + cand[:off]

                    granted = 0
                    in_used: Dict = {}
                    for _pass in range(budget):
                        progressed = False
                        for desc in cand:
                            if granted >= budget:
                                break
                            if desc < 0:
                                # source queue head
                                if not sq or s_key[r] != key:
                                    continue
                                if (
                                    budget > 1
                                    and in_used.get(desc, 0) >= inj_w
                                ):
                                    continue
                                nlv = s_nlv[r]
                                if (
                                    credits[nlv] <= 0
                                    or owner[nlv] != s_need[r]
                                ):
                                    continue
                                tfi += 1
                                credits[nlv] -= 1
                                owner[nlv] = s_post[r]
                                arr_at[s_delay[r]].append(s_ev[r])
                                pending += 1
                                nf = s_fidx[r] + 1
                                if nf == pkt_len:
                                    sq.popleft()
                                    if sq:
                                        set_src_head(r, sq[0])
                                else:
                                    s_fidx[r] = nf
                                    s_ev[r] += _FIDX_INC
                                    s_need[r] = s_pid[r]
                                    if nf == szm1:
                                        s_post[r] = -1
                            else:
                                b = buf[desc]
                                if not b:
                                    continue
                                k2 = hd_key[desc]
                                if key < 0:
                                    # ejection port
                                    if k2 >= 0:
                                        continue
                                    if (
                                        budget > 1
                                        and in_used.get(desc, 0)
                                        >= cap_lv[desc]
                                    ):
                                        continue
                                    b.popleft()
                                    cr_at[cdel_lv[desc]].append(desc)
                                    pending += 1
                                    tfe += 1
                                    if in_window:
                                        few += 1
                                    if hd_tail[desc]:
                                        pid = hd_pid[desc]
                                        if p_meas[pid]:
                                            latencies.append(
                                                t - p_t0[pid]
                                            )
                                            hops_out.append(p_hops[pid])
                                            if probing:
                                                eject_pid.append(pid)
                                        if plan_done is not None:
                                            plan_done(pid, t)
                                    if b:
                                        set_head(desc, b[0])
                                    else:
                                        del ne[desc]
                                else:
                                    if k2 != key:
                                        continue
                                    if (
                                        budget > 1
                                        and in_used.get(desc, 0)
                                        >= cap_lv[desc]
                                    ):
                                        continue
                                    nlv = hd_nlv[desc]
                                    if (
                                        credits[nlv] <= 0
                                        or owner[nlv] != hd_need[desc]
                                    ):
                                        continue
                                    b.popleft()
                                    cr_at[cdel_lv[desc]].append(desc)
                                    pending += 1
                                    credits[nlv] -= 1
                                    owner[nlv] = hd_post[desc]
                                    arr_at[hd_delay[desc]].append(
                                        hd_ev[desc]
                                    )
                                    pending += 1
                                    if b:
                                        set_head(desc, b[0])
                                    else:
                                        del ne[desc]
                            if budget > 1:
                                in_used[desc] = in_used.get(desc, 0) + 1
                            granted += 1
                            progressed = True
                        if not progressed or granted >= budget:
                            break

                if ne or sq:
                    hot_list.append(r)
                else:
                    hot_flag[r] = 0

            t += 1
            # --- closed-loop phase releases ----------------------------
            if plan is not None:
                if plan.dirty:
                    # completions this cycle unlocked phases: merge
                    # their events (cycles >= t) into the tail
                    n_ev = plan.flush(ip)
                if plan.finished:
                    break
            # --- idle fast-forward -------------------------------------
            if not hot_list and pending == 0:
                if ip < n_ev:
                    t = ev_cycles[ip]
                else:
                    # nothing in flight and nothing left to inject
                    break

        self._hot_list = hot_list
        self._clock = t_end
        self._num_packets = npk
        self._packets_measured = pm
        self._flits_ejected_window = few
        self.total_flits_injected = tfi
        self.total_flits_ejected = tfe

        return SimResult.from_samples(
            offered_rate=rate,
            effective_offered=effective_offered,
            latencies=latencies,
            hops=hops_out,
            packets_measured=pm,
            flits_ejected=few,
            active_chips=self._active_chips,
            # closed-loop: the window is the measured makespan, so
            # accepted_rate reports achieved collective bandwidth
            measure_cycles=plan.elapsed() if plan is not None else meas,
        )

    # ------------------------------------------------------------------
    def flits_in_flight(self) -> int:
        """Flits currently buffered or on wires (conservation checks)."""
        if not self._loop_ready:
            return 0
        buffered = sum(len(b) for b in self._buf)
        flying = sum(len(slot) for slot in self._arrivals)
        return buffered + flying
