"""Shared content-addressed result store with single-flight compute.

The store is the fleet-wide memory of the simulation service: point
results keyed by the engine's ``point_key`` digests (``config_key`` +
``ENGINE_VERSION`` + rate), so any two submissions of the same physics
— same process or not, same day or not — share one cache entry.

Three layers, each usable on its own:

* :class:`ResultStore` wraps the engine's :class:`~repro.engine.cache.
  ResultCache` with LRU eviction bounds (``max_entries`` /
  ``max_bytes``), a directory stats scan (entry count, bytes,
  ENGINE_VERSION mix, stale-version detection) and a ``cache_stats``
  :class:`~repro.metrics.MetricChannel` export;
* :class:`SingleFlight` is a lock-file protocol: at most one process
  computes a given key at a time, everyone else waits for the entry to
  land (stale locks of dead holders are stolen, so a crashed worker
  never wedges the fleet);
* :class:`SingleFlightCache` is a drop-in ``ResultCache``-compatible
  adapter gluing the two under ``run_experiments(cache=...)`` — a miss
  first tries to become the key's computer, otherwise blocks until the
  in-flight computation publishes, so N concurrent runs of one study
  simulate each point exactly once.

Everything here is stdlib-only and safe across processes sharing one
directory; in-process thread-safety is what the GIL gives dict/counter
updates (the service serialises engine execution anyway).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..engine.cache import ResultCache
from ..engine.spec import ENGINE_VERSION
from ..metrics import MetricChannel
from ..network.stats import SimResult
from ..obs import REGISTRY
from ..obs import trace as obs_trace
from . import chaos

__all__ = ["ResultStore", "SingleFlight", "SingleFlightCache"]

# runtime telemetry (repro.obs): fleet-wide store behaviour.
_M_HITS = REGISTRY.counter(
    "store_hits_total", "Result-store lookups served from disk"
)
_M_MISSES = REGISTRY.counter(
    "store_misses_total", "Result-store lookups that missed"
)
_M_EVICTIONS = REGISTRY.counter(
    "store_evictions_total", "Entries evicted by the LRU bounds"
)
_M_SF_WAITS = REGISTRY.counter(
    "singleflight_waits_total",
    "Lookups that blocked on another process's in-flight computation",
)
_M_SF_STEALS = REGISTRY.counter(
    "singleflight_steals_total", "Stale single-flight locks removed"
)


class SingleFlight:
    """Cross-process ``key -> one computer`` coordination via lock files.

    A lock is a ``<key>.lock`` file created with ``O_CREAT | O_EXCL``
    (atomic on POSIX and NT) containing ``pid timestamp``.  A lock is
    *stale* when its holder pid is gone or its mtime is older than
    ``stale_after`` seconds; stale locks are removed ("stolen") by
    whoever notices, so a killed worker only delays peers, never blocks
    them forever.
    """

    def __init__(
        self,
        root: Union[str, Path],
        stale_after: float = 600.0,
        poll_interval: float = 0.02,
    ) -> None:
        self.root = Path(root)
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        #: how many waits blocked on another holder at least once.
        self.waits = 0
        #: how many stale locks this instance removed.
        self.steals = 0

    def _lock_path(self, key: str) -> Path:
        return self.root / f"{key}.lock"

    def try_acquire(self, key: str) -> bool:
        """Become the key's computer; never blocks.

        A stale lock found in the way is stolen and acquisition retried
        once, so a dead holder's key is immediately adoptable.
        """
        if chaos.should_fire("sf-delay", key):
            time.sleep(chaos.param("sf-delay", "seconds", 0.2, float))
        for _ in range(2):
            try:
                fd = os.open(
                    self._lock_path(key),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                if not self._steal_if_stale(key):
                    return False
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(f"{os.getpid()} {time.time():.3f}")
            return True
        return False

    def release(self, key: str) -> None:
        try:
            os.unlink(self._lock_path(key))
        except OSError:
            pass

    def holder(self, key: str) -> Optional[int]:
        """Pid recorded in the key's lock file, or ``None``."""
        try:
            text = self._lock_path(key).read_text()
            return int(text.split()[0])
        except (OSError, ValueError, IndexError):
            return None

    def locked(self, key: str) -> bool:
        return self._lock_path(key).exists()

    def _steal_if_stale(self, key: str) -> bool:
        """Remove the lock if its holder is dead or too old."""
        path = self._lock_path(key)
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return True  # already gone
        pid = self.holder(key)
        if pid is None:
            # unreadable/empty lock: orphaned by a crash mid-create —
            # but give a live writer a beat between O_CREAT and the
            # pid landing before calling it dead
            dead = age > 5.0
        else:
            dead = not _pid_alive(pid)
        forced = chaos.should_fire("sf-steal", key)
        if dead or forced or age > self.stale_after:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.steals += 1
            _M_SF_STEALS.inc()
            return True
        return False

    def wait(self, key: str, timeout: float) -> bool:
        """Block until the key's lock disappears.

        Returns ``True`` when the holder released it (its result should
        now be in the store) and ``False`` on timeout or when the lock
        was stale and got stolen (the caller should try to acquire and
        compute itself).
        """
        deadline = time.monotonic() + timeout
        waited = False
        while self.locked(key):
            if self._steal_if_stale(key):
                return False
            if time.monotonic() >= deadline:
                return False
            if not waited:
                waited = True
                self.waits += 1
                _M_SF_WAITS.inc()
            time.sleep(self.poll_interval)
        return True

    def clear(self, *, all_locks: bool = False) -> int:
        """Restart hygiene: remove *dead* holders' locks.

        By default only locks whose holder pid is gone (or whose lock
        file is old *and* unreadable) are removed — N servers sharing
        one store directory can each run startup hygiene without
        stealing a live sibling's in-flight computation.
        ``all_locks=True`` force-removes everything (the store-wipe
        path, where the entries are going away anyway).
        """
        n = 0
        for path in self.root.glob("*.lock"):
            if all_locks:
                try:
                    path.unlink()
                    n += 1
                except OSError:
                    pass
                continue
            key = path.name[: -len(".lock")]
            pid = self.holder(key)
            if pid is not None and _pid_alive(pid):
                continue
            if self._steal_if_stale(key):
                n += 1
        return n


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class ResultStore:
    """Bounded, inspectable content-addressed store over a cache dir.

    Duck-compatible with :class:`~repro.engine.cache.ResultCache` where
    the engine and ``Study.run`` need it (``get`` / ``put`` /
    ``__contains__`` / ``__len__`` / ``root`` / ``hits`` / ``misses``),
    plus:

    * **LRU eviction** — ``max_entries`` / ``max_bytes`` bounds enforced
      after every write; recency is file mtime, refreshed on every hit,
      and keys with an in-flight ``.lock`` are never evicted;
    * **stats** — directory scan reporting entry count, bytes and the
      ENGINE_VERSION mix, flagging entries a version bump stranded
      (their keys hash the old version, so they can never hit again);
    * **``cache_stats`` channel** — the counters as a schema-tagged
      :class:`~repro.metrics.MetricChannel` for telemetry streams.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        stale_after: float = 600.0,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.cache = ResultCache(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.single_flight = SingleFlight(
            self.cache.root, stale_after=stale_after
        )
        self.evicted = 0

    # -- ResultCache surface -------------------------------------------
    @property
    def root(self) -> Path:
        return self.cache.root

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses

    def get(self, key: str) -> Optional[SimResult]:
        res = self.cache.get(key)
        if res is not None:
            _M_HITS.inc()
            try:  # LRU recency: a hit counts as a use
                os.utime(self.cache._path(key))
            except OSError:
                pass
        else:
            _M_MISSES.inc()
        return res

    def put(
        self, key: str, result: SimResult, meta: Optional[Dict] = None
    ) -> None:
        meta = dict(meta or {})
        meta.setdefault("engine", ENGINE_VERSION)
        self.cache.put(key, result, meta=meta)
        self.prune()

    def __contains__(self, key: str) -> bool:
        return key in self.cache

    def __len__(self) -> int:
        return len(self.cache)

    def clear(self) -> int:
        self.single_flight.clear(all_locks=True)
        return self.cache.clear()

    # -- bounds --------------------------------------------------------
    def entries(self) -> List[Tuple[str, Path, int, float]]:
        """``(key, path, size_bytes, mtime)`` per entry, oldest first."""
        out = []
        for path in self.root.glob("*.json"):
            try:
                st = path.stat()
            except OSError:
                continue  # raced with eviction/clear
            out.append((path.stem, path, st.st_size, st.st_mtime))
        out.sort(key=lambda e: e[3])
        return out

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict least-recently-used entries beyond the bounds.

        Explicit arguments override the store's configured bounds (the
        ``cache prune`` CLI path); with neither configured nor given
        this is a no-op.  Entries whose key has an active single-flight
        lock are skipped — someone is mid-computation on them.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        if max_entries is None and max_bytes is None:
            return 0
        entries = self.entries()
        total = sum(size for _, _, size, _ in entries)
        count = len(entries)
        removed = 0
        for key, path, size, _ in entries:
            over_entries = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not over_entries and not over_bytes:
                break
            if self.single_flight.locked(key):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            count -= 1
            total -= size
        self.evicted += removed
        if removed:
            _M_EVICTIONS.inc(removed)
        return removed

    # -- inspection ----------------------------------------------------
    def stats(self, scan_meta: bool = True) -> Dict:
        """Counters plus (optionally) a per-entry metadata scan.

        ``scan_meta=True`` opens every entry to read its stamped engine
        version — fine for CLI inspection, skip it on hot paths.  The
        ``stale_entries`` count covers entries stamped with a different
        ENGINE_VERSION (or none, i.e. written before stamping existed):
        their keys hash the old version, so they occupy disk but can
        never be hit again.
        """
        entries = self.entries()
        stats: Dict = {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, _, size, _ in entries),
            "engine_version": ENGINE_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "evicted": self.evicted,
            "locks": sum(1 for _ in self.root.glob("*.lock")),
            "sf_waits": self.single_flight.waits,
            "sf_steals": self.single_flight.steals,
        }
        if scan_meta:
            mix: Dict[str, int] = {}
            stale = 0
            for _, path, _, _ in entries:
                try:
                    with path.open() as fh:
                        meta = json.load(fh).get("meta", {})
                    version = meta.get("engine")
                except (OSError, ValueError):
                    version = None
                tag = "unknown" if version is None else f"v{version}"
                mix[tag] = mix.get(tag, 0) + 1
                if version != ENGINE_VERSION:
                    stale += 1
            stats["version_mix"] = dict(sorted(mix.items()))
            stats["stale_entries"] = stale
        return stats

    def stats_channel(self, scan_meta: bool = False) -> MetricChannel:
        """The counters as a ``cache_stats`` metric channel."""
        stats = self.stats(scan_meta=scan_meta)
        rows = tuple(
            (name, float(value))
            for name, value in stats.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        )
        return MetricChannel(
            name="cache_stats",
            kind="counters",
            columns=("counter", "value"),
            rows=rows,
            summary={name: value for name, value in rows},
            meta={"root": str(self.root)},
        )

    def single_flight_cache(self, **kwargs) -> "SingleFlightCache":
        return SingleFlightCache(self, **kwargs)


class SingleFlightCache:
    """``ResultCache``-compatible adapter adding exactly-once compute.

    Designed to sit under ``run_experiments(cache=...)``: the engine
    calls :meth:`get` before simulating a point and :meth:`put` right
    after.  A miss first tries to *own* the key (making this process
    the one computer); when another process owns it, :meth:`get` blocks
    until the owner publishes the entry, then returns it — so the point
    is never simulated twice.

    Deadlock safety: a run that already owns keys only waits
    ``hold_wait`` seconds on foreign locks (two runs interleaving over
    overlapping key sets could otherwise wait on each other forever);
    on timeout it simply computes the point itself — duplicated work,
    counted in :attr:`fallbacks`, never wrong results (both sides write
    the same deterministic bytes).

    Use as a context manager, or call :meth:`close` in a ``finally`` —
    saturation cutoffs legitimately skip points whose locks were
    acquired during the replay scan, and those must be released.
    """

    def __init__(
        self,
        store: ResultStore,
        wait_timeout: float = 300.0,
        hold_wait: float = 2.0,
    ) -> None:
        self.store = store
        self.wait_timeout = wait_timeout
        self.hold_wait = hold_wait
        self._owned: set = set()
        #: points this process actually simulated (put() calls).
        self.computed = 0
        #: foreign-lock timeouts that fell back to computing locally.
        self.fallbacks = 0

    # ResultCache surface the engine/meta block touches
    @property
    def root(self) -> Path:
        return self.store.root

    @property
    def hits(self) -> int:
        return self.store.hits

    @property
    def misses(self) -> int:
        return self.store.misses

    def get(self, key: str) -> Optional[SimResult]:
        res = self.store.get(key)
        if res is not None:
            return res
        sf = self.store.single_flight
        if sf.try_acquire(key):
            self._owned.add(key)
            return None
        timeout = self.hold_wait if self._owned else self.wait_timeout
        with obs_trace.span(
            "store.singleflight_wait", key=key[:16]
        ) as sp:
            released = sf.wait(key, timeout)
            sp.set(released=released)
        if released:
            res = self.store.get(key)
            if res is not None:
                return res
        # holder died, timed out, or published nothing: compute locally
        if sf.try_acquire(key):
            self._owned.add(key)
        else:
            self.fallbacks += 1
        return None

    def put(
        self, key: str, result: SimResult, meta: Optional[Dict] = None
    ) -> None:
        self.computed += 1
        self.store.put(key, result, meta=meta)
        if key in self._owned:
            self.store.single_flight.release(key)
            self._owned.discard(key)

    def __contains__(self, key: str) -> bool:
        return key in self.store

    def close(self) -> None:
        """Release owned-but-never-computed locks (cutoff leftovers)."""
        while self._owned:
            self.store.single_flight.release(self._owned.pop())

    def __enter__(self) -> "SingleFlightCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
