"""The long-running simulation service: warm executor + HTTP front end.

:class:`SimulationService` is the embeddable core — submit
:class:`~repro.service.protocol.JobRequest`\\ s, poll status, subscribe
to event streams, cancel — with one **warm executor thread** draining
the scheduler.  Executions run in-process through ``Study.run``, so the
engine's worker-local LRUs (built topologies, routings with their route
memos, the batched path's resolved ``route_donor`` planes) and the
compiled native kernel stay resident across jobs: a resubmission pays
zero process startup, zero kernel compile and zero route resolution.
Engine worker processes (``workers > 1``) still fork per job for
intra-job parallelism — on Linux they inherit the warm state.

:func:`create_server` wraps the service in a threaded stdlib HTTP
server bound to a local address, speaking schema-tagged JSON:

====== ============================== ===============================
POST   ``/api/jobs``                  submit a JobRequest -> status
GET    ``/api/jobs``                  all job statuses
GET    ``/api/jobs/<id>``             one job status
POST   ``/api/jobs/<id>/cancel``      cancel -> status
GET    ``/api/jobs/<id>/events``      NDJSON event stream (chunked);
                                      ``?from=N`` resumes mid-stream
GET    ``/api/jobs/<id>/result``      terminal job's StudyResult
GET    ``/api/stats``                 queue + store counters
GET    ``/api/health``                liveness + versions
POST   ``/api/shutdown``              graceful stop
====== ============================== ===============================

There is deliberately no TLS/auth layer: the service binds loopback by
default and trusts its tenants, like a local build daemon.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .. import __version__
from ..engine.spec import ENGINE_VERSION
from ..obs import REGISTRY, SpanLog, to_json, to_prometheus
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from . import chaos
from .jobs import (
    TERMINAL_STATES,
    BusyError,
    Execution,
    Job,
    JobCancelled,
    RetryPolicy,
    Scheduler,
)
from .journal import EventLog, JobJournal, JournalView
from .protocol import JOB_STATES, JobRequest
from .store import ResultStore

__all__ = ["SimulationService", "create_server", "serve"]

logger = get_logger("repro.service")

#: default TCP port of ``repro-dragonfly serve`` (0 picks a free one).
DEFAULT_PORT = 8642

# runtime telemetry (repro.obs).  HTTP series are labelled by route
# *template* (``/api/jobs/<id>``), never the raw path — ids are
# unbounded and would explode the label cardinality.
_M_HTTP_REQUESTS = REGISTRY.counter(
    "http_requests_total",
    "HTTP requests served",
    ("method", "route", "code"),
)
_M_HTTP_SECONDS = REGISTRY.histogram(
    "http_request_seconds",
    "HTTP request latency (excludes event-stream tail time)",
    ("method", "route"),
)
_M_QUEUE_DEPTH = REGISTRY.gauge(
    "service_queue_depth", "Executions waiting in the scheduler queue"
)
_M_JOBS_BY_STATE = REGISTRY.gauge(
    "service_jobs", "Jobs known to this service, by state", ("state",)
)


class SimulationService:
    """Embeddable service core: scheduler + store + warm executor."""

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        *,
        default_workers: Optional[int] = 1,
        max_inflight_per_client: int = 8,
        state_dir: Union[str, Path, None] = None,
        retry: Optional[RetryPolicy] = None,
        hang_timeout: Optional[float] = None,
        start_executor: bool = True,
        telemetry: bool = True,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.default_workers = default_workers
        self.retry = retry or RetryPolicy()
        #: seconds without a heartbeat before the watchdog reaps a
        #: running execution (``None`` disables the watchdog).
        self.hang_timeout = hang_timeout
        self.state_dir = Path(state_dir) if state_dir else None
        self.journal: Optional[JobJournal] = None
        #: runtime telemetry plane (tracing + HTTP metrics).  When on,
        #: a span sink is installed — persistent under
        #: ``<state-dir>/spans.ndjson``, in-memory otherwise — and the
        #: HTTP layer records request metrics.  When off, span emission
        #: takes its no-op fast path and requests skip observation
        #: (the benchmark's overhead baseline).
        self.telemetry = telemetry
        self.spanlog: Optional[SpanLog] = None
        if telemetry:
            span_path = (
                self.state_dir / "spans.ndjson" if self.state_dir else None
            )
            self.spanlog = SpanLog(span_path).install()
        # startup hygiene: adopt locks orphaned by dead processes, but
        # never steal a live sibling server's in-flight computation
        reaped = self.store.single_flight.clear()
        if reaped:
            logger.info("reaped %d dead single-flight lock(s)", reaped)
        self.scheduler = Scheduler(
            max_inflight_per_client=max_inflight_per_client,
            execution_hook=(
                self._attach_durability if self.state_dir else None
            ),
        )
        self.restored_jobs = 0
        self.resumed_executions = 0
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self.journal = JobJournal(self.state_dir / "journal.ndjson")
            self._restore()
        self._stopped = threading.Event()
        self._executor = threading.Thread(
            target=self._run_loop, name="repro-service-executor", daemon=True
        )
        if start_executor:
            self._executor.start()

    # -- durability ----------------------------------------------------
    def _event_path(self, key: str) -> Path:
        assert self.state_dir is not None
        return self.state_dir / "events" / f"{key}.ndjson"

    def _attach_durability(self, execution: Execution) -> None:
        """Scheduler hook: give a fresh execution its on-disk event
        log and journal transition plumbing (called once per enqueued
        execution, under the scheduler lock)."""
        execution.sink = EventLog(
            self._event_path(execution.key), fresh=True
        )
        journal = self.journal

        def on_transition(exe: Execution, state: str) -> None:
            if journal is not None:
                journal.record_state(exe.key, state, error=exe.error)

        execution.on_transition = on_transition

    def _restore(self) -> None:
        """Replay the journal: re-enqueue interrupted work, restore
        terminal jobs read-only, then compact the journal."""
        assert self.journal is not None
        view = self.journal.replay()
        if not view.jobs:
            return
        by_key: Dict[str, List] = {}
        for job in view.jobs.values():
            by_key.setdefault(job.key, []).append(job)
        executions: Dict[str, Execution] = {}
        for key, jobs in by_key.items():
            state = view.states.get(key, "queued")
            try:
                study = jobs[0].request.build_study()
            except ValueError as exc:
                logger.warning(
                    "journal: dropping unreplayable execution %s: %s",
                    key[:12],
                    exc,
                )
                view.jobs = {
                    jid: j
                    for jid, j in view.jobs.items()
                    if j.key != key
                }
                continue
            live = state not in TERMINAL_STATES and any(
                not j.cancelled for j in jobs
            )
            # the pre-crash trace identity, as journaled at submission
            prior = next(
                (j for j in jobs if j.trace_id and j.span_id), None
            )
            if live:
                execution = Execution(key, jobs[0].request, study)
                execution.resumed = True
                # resume *inside* the original trace: the new root
                # span keeps the journaled trace_id (its parent is the
                # pre-crash root) and links the incarnation it
                # continues, so one waterfall shows both lives
                execution.begin_trace(
                    parent=(
                        obs_trace.SpanContext(prior.trace_id, prior.span_id)
                        if prior
                        else None
                    ),
                    link=prior.span_id if prior else None,
                    resumed=True,
                )
                self.resumed_executions += 1
            else:
                if state not in TERMINAL_STATES:
                    # every rider was cancelled while queued but the
                    # terminal record never landed: settle it now
                    state = "cancelled"
                    view.states[key] = state
                events, _ = EventLog.load(self._event_path(key))
                execution = Execution.restore_terminal(
                    key,
                    jobs[0].request,
                    study,
                    state,
                    events,
                    error=view.errors.get(key),
                    trace_id=prior.trace_id if prior else None,
                )
            executions[key] = execution
            for job in jobs:
                self.scheduler.restore(
                    job.id,
                    job.request,
                    execution,
                    enqueue=live,
                    cancelled=job.cancelled,
                )
                self.restored_jobs += 1
        self.journal.compact(view)
        logger.info(
            "journal replay: %d job(s) restored, %d execution(s) "
            "re-enqueued",
            self.restored_jobs,
            self.resumed_executions,
        )

    # -- client surface ------------------------------------------------
    def submit(
        self,
        request: JobRequest,
        traceparent: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """Queue or attach (see :meth:`Scheduler.submit`).

        ``traceparent`` is the submitting client's W3C-style trace
        header; a new execution joins that trace (transport metadata
        only — it never feeds the execution key).  With a
        ``state_dir``, the accepted job is journaled (fsynced) before
        this returns — an acknowledged submission survives any crash
        from here on.
        """
        job, attached = self.scheduler.submit(
            request, trace=obs_trace.parse_traceparent(traceparent)
        )
        execution = job.execution
        if self.journal is not None:
            self.journal.record_job(
                job.id,
                execution.key,
                request,
                trace_id=execution.trace_id,
                span_id=(
                    execution.trace.span_id if execution.trace else None
                ),
            )
        logger.info(
            "job %s %s execution %s (client=%r priority=%d)",
            job.id,
            "attached to" if attached else "queued as",
            execution.key[:12],
            job.client,
            job.priority,
            job=job.id,
            trace_id=execution.trace_id,
            state=job.state,
        )
        return job, attached

    def job(self, job_id: str) -> Job:
        return self.scheduler.get(job_id)

    def status(self, job_id: str) -> Dict:
        job = self.scheduler.get(job_id)
        return job.status(queued_ahead=self.scheduler.queued_ahead(job))

    def cancel(self, job_id: str) -> Dict:
        job = self.scheduler.cancel(job_id)
        if self.journal is not None:
            self.journal.record_cancel(job.id)
        logger.info("job %s cancelled (state=%s)", job.id, job.state)
        return job.status()

    def events(
        self, job_id: str, start: int = 0, timeout: Optional[float] = 30.0
    ):
        """Yield the job's events from ``start`` until terminal.

        A cancelled *job* on a still-live execution terminates the
        stream with a synthetic ``detached`` event — the execution (and
        other subscribers) keep going.
        """
        job = self.scheduler.get(job_id)
        execution = job.execution
        seq = start
        while True:
            if job.cancelled and not execution.terminal:
                yield {
                    "event": "detached",
                    "seq": seq,
                    "reason": "job cancelled; execution continues for "
                    "other subscribers",
                }
                return
            batch = execution.wait_events(seq, timeout=timeout)
            for event in batch:
                yield event
                seq = event["seq"] + 1
            if execution.terminal and seq >= len(
                execution.events_snapshot()
            ):
                return

    def stats(self) -> Dict:
        return {
            "service": {
                "version": __version__,
                "engine_version": ENGINE_VERSION,
                "default_workers": self.default_workers,
            },
            "scheduler": self.scheduler.stats(),
            "store": self.store.stats(scan_meta=False),
        }

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work and wind the executor down.

        Queued executions are cancelled; the running one (if any) is
        cancel-flagged and aborts at its next point boundary.
        """
        self.scheduler.close()
        for job in self.scheduler.jobs():
            if not job.terminal:
                self.scheduler.cancel(job.id)
        self._stopped.set()
        if wait:
            self._executor.join(timeout=timeout)
        if self.journal is not None:
            self.journal.close()
        if self.spanlog is not None:
            self.spanlog.close()

    # -- executor ------------------------------------------------------
    def _run_loop(self) -> None:
        while not self._stopped.is_set():
            execution = self.scheduler.next_execution(timeout=0.2)
            if execution is None:
                continue
            self._supervise(execution)
        logger.info("executor stopped")

    def _supervise(self, execution: Execution) -> None:
        """Run one execution on a worker thread under the watchdog.

        The worker thread does the actual work (including retries);
        this thread watches its heartbeat.  A run that goes
        ``hang_timeout`` seconds without a heartbeat is cancel-flagged,
        given a short grace period, then quarantined — the wedged
        thread is abandoned (daemon) and the queue moves on.  Terminal
        guards on :class:`Execution` make any late emission from the
        abandoned thread a no-op.
        """
        worker = threading.Thread(
            target=self._run_execution,
            args=(execution,),
            name=f"repro-exec-{execution.key[:12]}",
            daemon=True,
        )
        worker.start()
        while worker.is_alive():
            worker.join(timeout=0.5)
            if not worker.is_alive():
                break
            if (
                self.hang_timeout is not None
                and not execution.terminal
                and time.time() - execution.heartbeat > self.hang_timeout
            ):
                logger.error(
                    "execution %s hung (>%.1fs without heartbeat); "
                    "reaping",
                    execution.key[:12],
                    self.hang_timeout,
                )
                execution.cancel_event.set()
                worker.join(timeout=2.0)
                if worker.is_alive():
                    execution.quarantine(
                        f"watchdog: no heartbeat for "
                        f"{self.hang_timeout:.1f}s; worker abandoned",
                        traceback_text="",
                        attempts=execution.attempts or 1,
                    )
                    self.scheduler.finish_execution(execution)
                    return

    def _run_execution(self, execution: Execution) -> None:
        if execution.cancel_event.is_set():
            execution.mark_cancelled()
            self.scheduler.finish_execution(execution)
            return
        execution.mark_running()
        logger.info(
            "execution %s started: study %r, %d point(s) max%s",
            execution.key[:12],
            execution.study.name,
            execution.points_total,
            " (resumed)" if execution.resumed else "",
            trace_id=execution.trace_id,
            state="running",
        )

        def on_point(scenario, label, rate, result, source):
            if execution.cancel_event.is_set():
                raise JobCancelled()
            execution.record_point(scenario, label, rate, result, source)
            chaos.maybe_kill_server("point")

        workers = (
            execution.workers
            if execution.workers is not None
            else self.default_workers
        )
        attempt = 0
        try:
            while True:
                attempt += 1
                execution.attempts = attempt
                execution.beat()
                cache = self.store.single_flight_cache()
                # one span per supervised attempt, parented to the
                # execution's root; the engine's spans nest under it
                # via the ambient context (study.run executes on this
                # thread).  Ended explicitly per outcome below, so a
                # crash-retry closes its span before backing off.
                attempt_span = obs_trace.start_span(
                    "execution.attempt",
                    parent=execution.trace,
                    attempt=attempt,
                )
                ambient = attempt_span.context or execution.trace
                try:
                    with obs_trace.use_context(ambient):
                        result = execution.study.run(
                            workers=workers,
                            cache=cache,
                            on_point=on_point,
                        )
                    attempt_span.end()
                    execution.finish(
                        result, self.store.stats_channel().to_dict()
                    )
                    logger.info(
                        "execution %s done: %d point(s), %d from cache"
                        "%s",
                        execution.key[:12],
                        execution.points_done,
                        execution.cache_hits,
                        f" (attempt {attempt})" if attempt > 1 else "",
                        trace_id=execution.trace_id,
                        state="done",
                    )
                    return
                except JobCancelled:
                    attempt_span.end(status="cancelled")
                    execution.mark_cancelled()
                    logger.info(
                        "execution %s cancelled after %d point(s)",
                        execution.key[:12],
                        execution.points_done,
                        trace_id=execution.trace_id,
                        state="cancelled",
                    )
                    return
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    attempt_span.end(status="error", error=error)
                    tb = traceback.format_exc()
                    if attempt >= self.retry.max_attempts:
                        execution.quarantine(error, tb, attempt)
                        logger.exception(
                            "execution %s quarantined after %d "
                            "attempt(s): %s",
                            execution.key[:12],
                            attempt,
                            error,
                            trace_id=execution.trace_id,
                            state="failed",
                        )
                        return
                    delay = self.retry.delay(attempt)
                    execution.record_retry(
                        attempt, self.retry.max_attempts, delay, error
                    )
                    logger.warning(
                        "execution %s attempt %d/%d failed (%s); "
                        "retrying in %.2fs",
                        execution.key[:12],
                        attempt,
                        self.retry.max_attempts,
                        error,
                        delay,
                        trace_id=execution.trace_id,
                        state="retrying",
                    )
                    # interruptible backoff: completed points replay
                    # from the store, so the retry only recomputes
                    # the failing point
                    deadline = time.time() + delay
                    while time.time() < deadline:
                        if (
                            self._stopped.is_set()
                            or execution.cancel_event.is_set()
                        ):
                            execution.mark_cancelled()
                            return
                        time.sleep(
                            min(0.05, max(0.0, deadline - time.time()))
                        )
                finally:
                    cache.close()
        finally:
            self.scheduler.finish_execution(execution)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # route through logging, not stderr
        logger.debug("%s %s", self.address_string(), fmt % args)

    # -- plumbing ------------------------------------------------------
    def send_response(self, code, message=None):  # capture for metrics
        self._status_code = code
        super().send_response(code, message)

    def _send_json(self, payload: Dict, code: int = 200) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, code: int) -> None:
        self._send_json({"error": message}, code=code)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        return json.loads(self.rfile.read(length).decode())

    def _path_parts(self) -> List[str]:
        path, _, self._query = self.path.partition("?")
        return [p for p in path.split("/") if p]

    def _query_int(self, name: str, default: int) -> int:
        for pair in (self._query or "").split("&"):
            k, _, v = pair.partition("=")
            if k == name and v:
                return int(v)
        return default

    def _query_param(self, name: str) -> Optional[str]:
        for pair in (self._query or "").split("&"):
            k, _, v = pair.partition("=")
            if k == name and v:
                return v
        return None

    @staticmethod
    def _route_template(parts: List[str]) -> str:
        """The request's route with ids templated out — metric labels
        must stay bounded however many jobs pass through."""
        if len(parts) >= 3 and parts[:2] == ["api", "jobs"]:
            if len(parts) == 3:
                return "/api/jobs/<id>"
            return "/api/jobs/<id>/" + "/".join(parts[3:])
        return "/" + "/".join(parts) if parts else "/"

    def _observed(self, method: str, handler) -> None:
        """Time + trace one request (the telemetry middleware).

        The span parents to the client's ``traceparent`` header when
        present; the latency histogram skips the event-stream route,
        whose duration is dominated by how long the *job* runs, not
        the HTTP layer.  With telemetry off the request runs bare.
        """
        parts = self._path_parts()
        self._status_code = 0
        if not self.service.telemetry:
            handler(parts)
            return
        route = self._route_template(parts)
        parent = obs_trace.parse_traceparent(
            self.headers.get("traceparent")
        )
        t0 = time.perf_counter()
        try:
            with obs_trace.span(
                f"http.{method.lower()}", parent=parent, route=route
            ) as sp:
                handler(parts)
                sp.set(code=self._status_code or 200)
        finally:
            _M_HTTP_REQUESTS.inc(
                method=method,
                route=route,
                code=str(self._status_code or 200),
            )
            if parts[-1:] != ["events"]:
                _M_HTTP_SECONDS.observe(
                    time.perf_counter() - t0, method=method, route=route
                )

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._observed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._observed("POST", self._handle_post)

    def _handle_get(self, parts: List[str]) -> None:
        try:
            if parts == ["api", "health"]:
                self._send_json(
                    {
                        "ok": True,
                        "version": __version__,
                        "engine_version": ENGINE_VERSION,
                    }
                )
            elif parts == ["api", "stats"]:
                self._send_json(self.service.stats())
            elif parts == ["api", "metrics"]:
                self._metrics()
            elif parts == ["api", "jobs"]:
                self._send_json(
                    {
                        "jobs": [
                            j.status() for j in self.service.scheduler.jobs()
                        ]
                    }
                )
            elif len(parts) == 3 and parts[:2] == ["api", "jobs"]:
                self._send_json(self.service.status(parts[2]))
            elif len(parts) == 4 and parts[:2] == ["api", "jobs"]:
                if parts[3] == "events":
                    self._stream_events(parts[2])
                elif parts[3] == "result":
                    self._job_result(parts[2])
                elif parts[3] == "trace":
                    self._job_trace(parts[2])
                else:
                    self._error(f"unknown endpoint {self.path!r}", 404)
            else:
                self._error(f"unknown endpoint {self.path!r}", 404)
        except KeyError as exc:
            self._error(str(exc.args[0]), 404)
        except BrokenPipeError:
            pass  # client hung up mid-stream

    def _handle_post(self, parts: List[str]) -> None:
        try:
            if parts == ["api", "jobs"]:
                request = JobRequest.from_data(self._read_body())
                job, attached = self.service.submit(
                    request,
                    traceparent=self.headers.get("traceparent"),
                )
                status = job.status(
                    queued_ahead=self.service.scheduler.queued_ahead(job)
                )
                status["attached"] = attached
                self._send_json(status, code=202)
            elif len(parts) == 4 and parts[:2] == ["api", "jobs"] and (
                parts[3] == "cancel"
            ):
                self._send_json(self.service.cancel(parts[2]))
            elif parts == ["api", "shutdown"]:
                self._send_json({"ok": True, "stopping": True})
                # stop the listener from a side thread so this response
                # can finish flushing first
                threading.Thread(
                    target=self.server.initiate_shutdown,  # type: ignore
                    daemon=True,
                ).start()
            else:
                self._error(f"unknown endpoint {self.path!r}", 404)
        except BusyError as exc:
            self._error(str(exc), 429)
        except (ValueError, TypeError) as exc:
            self._error(f"bad request: {exc}", 400)
        except KeyError as exc:
            self._error(str(exc.args[0]), 404)
        except BrokenPipeError:
            pass

    # -- streaming -----------------------------------------------------
    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")

    def _stream_events(self, job_id: str) -> None:
        service = self.service
        service.job(job_id)  # 404 before committing to a stream
        start = self._query_int("from", 0)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        dropped = False
        try:
            for event in service.events(job_id, start=start):
                if chaos.should_fire("drop-stream"):
                    # yank the connection mid-stream: no terminal
                    # chunk, socket torn down — clients must
                    # reconnect with ?from=<next seq>
                    dropped = True
                    self.close_connection = True
                    self.connection.close()
                    return
                self._write_chunk(json.dumps(event).encode() + b"\n")
                self.wfile.flush()
        finally:
            if not dropped:
                self._write_chunk(b"")  # terminal chunk
                self.wfile.write(b"\r\n")

    def _job_result(self, job_id: str) -> None:
        job = self.service.job(job_id)
        execution = job.execution
        if not execution.terminal:
            self._error(
                f"job {job_id} is {job.state}; stream "
                f"/api/jobs/{job_id}/events or poll until terminal",
                409,
            )
            return
        if execution.result is None:
            self._error(
                f"job {job_id} finished without a result "
                f"(state={job.state})",
                404,
            )
            return
        self._send_json(execution.result.to_dict())

    def _metrics(self) -> None:
        """``GET /api/metrics``: the registry snapshot — Prometheus
        text by default, JSON with ``?format=json``.  Point-in-time
        gauges are refreshed from *this* service's scheduler at scrape
        time (counters/histograms accumulate at their mutation sites).
        """
        stats = self.service.scheduler.stats()
        _M_QUEUE_DEPTH.set(stats["queued_executions"])
        for state in JOB_STATES:
            _M_JOBS_BY_STATE.set(
                stats["by_state"].get(state, 0), state=state
            )
        if self._query_param("format") == "json":
            self._send_text(
                to_json(REGISTRY) + "\n", "application/json"
            )
        else:
            self._send_text(
                to_prometheus(REGISTRY),
                "text/plain; version=0.0.4; charset=utf-8",
            )

    def _job_trace(self, job_id: str) -> None:
        """``GET /api/jobs/<id>/trace``: every recorded span of the
        job's trace (``repro.trace/v1``), for the CLI waterfall."""
        job = self.service.job(job_id)
        trace_id = job.execution.trace_id
        spanlog = self.service.spanlog
        if not trace_id or spanlog is None:
            self._error(
                f"no trace recorded for job {job_id} "
                "(telemetry disabled?)",
                404,
            )
            return
        self._send_json(
            {
                "schema": "repro.trace/v1",
                "job": job_id,
                "trace_id": trace_id,
                "spans": spanlog.for_trace(trace_id),
            }
        )


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: SimulationService):
        super().__init__(address, _Handler)
        self.service = service

    def initiate_shutdown(self) -> None:
        self.service.shutdown(wait=True)
        self.shutdown()


def create_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    cache_dir: Union[str, Path, None] = None,
    store: Optional[ResultStore] = None,
    default_workers: Optional[int] = 1,
    max_inflight_per_client: int = 8,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
    state_dir: Union[str, Path, None] = None,
    retry: Optional[RetryPolicy] = None,
    hang_timeout: Optional[float] = None,
    telemetry: bool = True,
) -> _ServiceHTTPServer:
    """Build a ready-to-serve HTTP simulation service.

    Returns the server; call ``serve_forever()`` (blocking) or drive it
    from a thread.  ``server.server_address`` carries the bound
    ``(host, port)`` — pass ``port=0`` for an ephemeral port.

    With ``state_dir`` the service journals jobs and replays them on
    the next start, so restarting against the same directory resumes
    interrupted work (see :mod:`repro.service.journal`).
    ``telemetry=False`` disables the tracing + HTTP-metrics plane
    (``GET /api/metrics`` still answers with whatever the process has
    recorded).
    """
    if store is None:
        if cache_dir is None:
            raise ValueError("need a cache_dir (or a prebuilt store)")
        store = ResultStore(
            cache_dir, max_entries=max_entries, max_bytes=max_bytes
        )
    service = SimulationService(
        store,
        default_workers=default_workers,
        max_inflight_per_client=max_inflight_per_client,
        state_dir=state_dir,
        retry=retry,
        hang_timeout=hang_timeout,
        telemetry=telemetry,
    )
    return _ServiceHTTPServer((host, port), service)


def serve(server: _ServiceHTTPServer) -> None:
    """Blocking serve loop with clean Ctrl-C shutdown."""
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.service.shutdown(wait=True)
        server.server_close()
