"""Fault-injection harness: deterministic chaos for the service stack.

Chaos is driven by the ``REPRO_CHAOS`` environment variable — a
comma-separated list of *directives*, each a site name plus optional
``key=value`` parameters separated by colons::

    REPRO_CHAOS="kill-server:after=2,crash-worker:once=/tmp/m"

Sites wired through the stack (each checked only when the env var is
set, so production paths pay one ``os.environ`` lookup):

=================== =================================================
``kill-server``     SIGKILL the server process right after a point
                    event lands (crash mid-job; the journal + result
                    store must make the job resumable)
``crash-worker``    ``os._exit`` an engine *worker process* mid-point
                    (never fires in a parent process, so a serial
                    in-server run is not killed by it)
``fail-point``      raise :class:`ChaosError` from a simulation point
``hang-point``      sleep ``seconds`` inside a point (watchdog bait)
``torn-event``      tear an event-log append mid-line and wedge the
                    log (what a crash mid-``write`` leaves behind)
``drop-stream``     abruptly close an event-stream HTTP connection
``sf-delay``        sleep ``seconds`` before single-flight acquire
``sf-steal``        treat any single-flight lock as stale (forced
                    steal, exercising the duplicate-compute fallback)
=================== =================================================

Firing policy parameters (first match wins):

* ``once=<path>`` — fire exactly once *across processes*: the first
  checker to atomically create the marker file fires;
* ``after=N`` — fire on exactly the N-th check in this process;
* ``every=N`` — fire on every N-th check;
* ``times=N`` — fire on each of the first N checks;
* ``rate=P`` — fire with probability P per check;
* no parameter — fire on every check.

``match=<substring>`` additionally scopes a directive to checks whose
context label contains the substring (e.g. an experiment spec's curve
label), so one study in a queue can be poisoned while its neighbours
run clean.

The module is intentionally a leaf: stdlib-only, no ``repro`` imports,
so the engine can reach it lazily without layering cycles.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Dict, Optional

__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "active",
    "engine_point",
    "maybe_kill_server",
    "param",
    "reset",
    "should_fire",
]

#: environment variable carrying the chaos directives.
CHAOS_ENV = "REPRO_CHAOS"


class ChaosError(RuntimeError):
    """An injected failure (``fail-point``)."""


# parsed-config cache, keyed by the raw env string so tests flipping
# the variable mid-process are picked up; counters reset with it.
_parsed_raw: Optional[str] = None
_directives: Dict[str, Dict[str, str]] = {}
_counters: Dict[str, int] = {}


def _parse(raw: str) -> Dict[str, Dict[str, str]]:
    out: Dict[str, Dict[str, str]] = {}
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, *params = chunk.split(":")
        cfg: Dict[str, str] = {}
        for p in params:
            key, _, value = p.partition("=")
            cfg[key.strip()] = value.strip()
        out[site.strip()] = cfg
    return out


def _config() -> Dict[str, Dict[str, str]]:
    global _parsed_raw, _directives
    raw = os.environ.get(CHAOS_ENV, "")
    if raw != _parsed_raw:
        _parsed_raw = raw
        _directives = _parse(raw)
        _counters.clear()
    return _directives


def reset() -> None:
    """Forget parsed directives and counters (test isolation)."""
    global _parsed_raw
    _parsed_raw = None
    _counters.clear()


def active(site: str) -> Optional[Dict[str, str]]:
    """The site's directive parameters, or ``None`` when not armed."""
    return _config().get(site)


def param(site: str, key: str, default=None, cast=str):
    cfg = active(site)
    if cfg is None or key not in cfg:
        return default
    return cast(cfg[key])


def _once(path: str) -> bool:
    """Cross-process once: first to create the marker file fires."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _record_fire(site: str, label: str, n: int) -> None:
    """Emit a zero-duration span marking an injected fault, so a
    chaos-CI failure is correlatable with the trace that absorbed it.

    Lazily imported (this module stays a leaf when chaos is disarmed)
    and emitted *before* the caller acts on the fire — a ``kill-server``
    span must hit the log before the SIGKILL does.  Best-effort: chaos
    must keep working even if telemetry is broken.
    """
    try:
        from ..obs import trace

        if not trace.tracing_active() and trace.current_context() is None:
            return
        sp = trace.Span(f"chaos.{site}", label=label, check=n)
        sp.end(status="error", error=f"injected fault at site {site!r}")
    except Exception:  # noqa: BLE001 — never let telemetry mask a fault
        pass


def should_fire(site: str, label: str = "") -> bool:
    """Check (and count) one occurrence of a chaos site.

    ``label`` is the check's context (e.g. a spec's curve label); a
    directive carrying ``match=`` only fires when the label contains
    the substring.  A firing check is also recorded as a ``chaos.*``
    span when tracing is active.
    """
    cfg = active(site)
    if cfg is None:
        return False
    match = cfg.get("match")
    if match and match not in (label or ""):
        return False
    _counters[site] = _counters.get(site, 0) + 1
    n = _counters[site]
    if "once" in cfg:
        fired = _once(cfg["once"])
    elif "after" in cfg:
        fired = n == int(cfg["after"])
    elif "every" in cfg:
        fired = n % max(1, int(cfg["every"])) == 0
    elif "times" in cfg:
        fired = n <= int(cfg["times"])
    elif "rate" in cfg:
        fired = random.random() < float(cfg["rate"])
    else:
        fired = True
    if fired:
        _record_fire(site, label, n)
    return fired


# ----------------------------------------------------------------------
# hook helpers for the wired sites
# ----------------------------------------------------------------------
def maybe_kill_server(label: str = "") -> None:
    """``kill-server``: SIGKILL this process — exactly what an OOM
    kill or a ``kill -9`` leaves behind (no atexit, no flush)."""
    if should_fire("kill-server", label):
        os.kill(os.getpid(), signal.SIGKILL)


def engine_point(label: str = "") -> None:
    """The engine-side sites, checked once per simulated point/chunk.

    ``crash-worker`` only fires inside a *child* process (an engine
    pool worker); ``fail-point`` and ``hang-point`` fire anywhere.
    """
    if should_fire("hang-point", label):
        time.sleep(param("hang-point", "seconds", 30.0, float))
    if should_fire("fail-point", label):
        raise ChaosError(
            f"injected point failure (fail-point, label={label!r})"
        )
    if should_fire("crash-worker", label):
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(param("crash-worker", "code", 137, int))
