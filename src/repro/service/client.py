"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` wraps the JSON endpoints of
:mod:`repro.service.server`; the only non-trivial part is
:meth:`~ServiceClient.stream`, which reads the chunked NDJSON event
feed line by line, and :meth:`~ServiceClient.watch`, which folds the
stream back into a complete :class:`~repro.api.StudyResult`
(reassembling framed metric channels transparently).

Example::

    from repro.api import build_study
    from repro.service import JobRequest, ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    study = build_study("smoke", scale="quick")
    job = client.submit_study(study)
    result = client.watch(job["id"], on_event=print)
    print(result.render())
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import urlparse

from ..api import Study, StudyResult
from ..metrics import MetricChannel
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from .protocol import JobRequest

__all__ = [
    "DEFAULT_SERVER_ENV",
    "ServiceClient",
    "ServiceError",
    "TERMINAL_EVENTS",
]

#: environment variable naming the default server address.
DEFAULT_SERVER_ENV = "REPRO_SERVICE_URL"

#: events after which an execution emits nothing further — a stream
#: that delivered one of these ended for real, not by a dropped
#: connection.
TERMINAL_EVENTS = ("done", "error", "failed", "cancelled", "detached")

logger = get_logger("repro.service")


class ServiceError(RuntimeError):
    """An error response from the service (or a transport failure)."""

    def __init__(self, message: str, code: int = 0) -> None:
        super().__init__(message)
        self.code = code


def resolve_server(address: Optional[str] = None) -> str:
    """Explicit address, else ``$REPRO_SERVICE_URL``, else the default
    loopback port."""
    from .server import DEFAULT_PORT

    address = address or os.environ.get(DEFAULT_SERVER_ENV)
    return address or f"http://127.0.0.1:{DEFAULT_PORT}"


class ServiceClient:
    """Thin JSON client over one service address.

    Transport failures on idempotent calls (every GET, plus ``cancel``,
    which the scheduler makes idempotent) are retried ``retries`` times
    with exponential backoff; error *responses* are never retried.
    Event streams transparently reconnect up to ``reconnects`` times
    using the server's ``?from=N`` replay cursor, deduplicating on the
    event ``seq``, so a dropped connection is invisible to consumers.
    """

    def __init__(
        self,
        address: Optional[str] = None,
        timeout: float = 60.0,
        *,
        retries: int = 3,
        backoff: float = 0.25,
        reconnects: int = 5,
    ) -> None:
        address = resolve_server(address)
        if "//" not in address:
            address = "http://" + address
        parsed = urlparse(address)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"service address must be http://host:port, got {address!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.reconnects = reconnects

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- plumbing ------------------------------------------------------
    def _connect(
        self, timeout: Optional[float] = None
    ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        *,
        idempotent: Optional[bool] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """One JSON call, with transport-level retry when idempotent.

        Only *transport* failures (``code == 0``) are retried — an HTTP
        error status is the server's answer and is raised immediately.
        """
        if idempotent is None:
            idempotent = method == "GET"
        # extra headers ride as a keyword-only tail so the bare
        # 3-argument call shape (method, path, payload) stays stable
        extra = {"extra_headers": headers} if headers else {}
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload, **extra)
            except ServiceError as exc:
                attempt += 1
                if exc.code or not idempotent or attempt > self.retries:
                    raise
                delay = min(self.backoff * (2 ** (attempt - 1)), 2.0)
                logger.debug(
                    "retrying %s %s in %.2fs (%s)", method, path, delay, exc
                )
                time.sleep(delay)

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        conn = self._connect()
        try:
            body = None
            headers = dict(extra_headers or {})
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read().decode() or "{}"
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.address}: {exc}"
                ) from None
            try:
                decoded = json.loads(data)
            except ValueError:
                raise ServiceError(
                    f"non-JSON response from {path}: {data[:200]!r}",
                    resp.status,
                ) from None
            if resp.status >= 400:
                raise ServiceError(
                    decoded.get("error", f"HTTP {resp.status}"), resp.status
                )
            return decoded
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/api/health")

    def stats(self) -> Dict:
        return self._request("GET", "/api/stats")

    def submit(self, request: JobRequest) -> Dict:
        """Submit a prepared request; returns the job status (with an
        ``attached`` flag when it deduped onto an in-flight run).

        The call carries a W3C-style ``traceparent`` header — the
        ambient trace context if the caller opened one, else a fresh
        root — so the server-side execution trace is rooted in this
        client and ``trace_id`` in the returned status is greppable in
        the caller's own telemetry.
        """
        ctx = obs_trace.current_context() or obs_trace.new_context()
        return self._request(
            "POST",
            "/api/jobs",
            request.to_data(),
            headers={"traceparent": obs_trace.format_traceparent(ctx)},
        )

    def submit_study(
        self,
        study: Union[Study, Dict],
        *,
        client: str = "",
        priority: int = 0,
        workers: Optional[int] = None,
        metrics: Tuple[str, ...] = (),
    ) -> Dict:
        """Convenience wrapper building the :class:`JobRequest`."""
        payload = study.to_data() if isinstance(study, Study) else study
        return self.submit(
            JobRequest(
                study=payload,
                client=client,
                priority=priority,
                workers=workers,
                metrics=tuple(metrics),
            )
        )

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/api/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict:
        # cancellation is idempotent server-side, so it is safe to
        # retry through a flaky transport
        return self._request(
            "POST", f"/api/jobs/{job_id}/cancel", idempotent=True
        )

    def result(self, job_id: str) -> StudyResult:
        return StudyResult.from_dict(
            self._request("GET", f"/api/jobs/{job_id}/result")
        )

    def trace(self, job_id: str) -> Dict:
        """The job's span tree (``repro.trace/v1``): trace id plus the
        spans recorded so far, ready for a waterfall render."""
        return self._request("GET", f"/api/jobs/{job_id}/trace")

    def metrics(self, fmt: str = "json") -> Union[Dict, str]:
        """The live ``/api/metrics`` surface.

        ``fmt="json"`` returns the decoded ``repro.metrics/v1`` payload;
        ``fmt="prometheus"`` returns the raw text exposition.
        """
        if fmt == "json":
            return self._request("GET", "/api/metrics?format=json")
        if fmt != "prometheus":
            raise ValueError(
                f"fmt must be 'json' or 'prometheus', got {fmt!r}"
            )
        conn = self._connect()
        try:
            try:
                conn.request("GET", "/api/metrics")
                resp = conn.getresponse()
                text = resp.read().decode()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.address}: {exc}"
                ) from None
            if resp.status >= 400:
                raise ServiceError(
                    f"HTTP {resp.status} from /api/metrics", resp.status
                )
            return text
        finally:
            conn.close()

    def shutdown(self) -> Dict:
        return self._request("POST", "/api/shutdown")

    # -- streaming -----------------------------------------------------
    def stream(
        self, job_id: str, start: int = 0, timeout: Optional[float] = None
    ) -> Iterator[Dict]:
        """Yield raw event dicts from ``start`` until a terminal event.

        The connection stays open for the job's lifetime; ``timeout``
        bounds *silence* between events, not the total duration.  A
        dropped connection (or a stream that ends before a terminal
        event) is transparently reconnected with ``?from=<cursor>`` up
        to ``reconnects`` times; replayed events below the cursor are
        deduplicated, so consumers see a gapless, exactly-once feed.
        """
        next_seq = start
        failures = 0
        while True:
            progressed = False
            try:
                for event in self._stream_once(job_id, next_seq, timeout):
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        if seq < next_seq:
                            continue  # replayed duplicate
                        next_seq = seq + 1
                    progressed = True
                    failures = 0
                    yield event
                    if event.get("event") in TERMINAL_EVENTS:
                        return
            except ServiceError as exc:
                if exc.code:
                    raise  # a real HTTP answer (404 etc), not transport
                failures += 1
                if failures > self.reconnects:
                    raise
                delay = min(self.backoff * (2 ** (failures - 1)), 2.0)
                logger.debug(
                    "stream for %s dropped (%s); reconnecting from seq "
                    "%d in %.2fs",
                    job_id,
                    exc,
                    next_seq,
                    delay,
                )
                time.sleep(delay)
                continue
            # stream ended cleanly but without a terminal event: the
            # server closed it (restart / chaos drop) — resume from
            # the cursor unless the budget is spent
            if not progressed:
                failures += 1
                if failures > self.reconnects:
                    return
                time.sleep(min(self.backoff * (2 ** (failures - 1)), 2.0))
            logger.debug(
                "stream for %s ended without terminal event; "
                "reconnecting from seq %d",
                job_id,
                next_seq,
            )

    def _stream_once(
        self, job_id: str, start: int, timeout: Optional[float]
    ) -> Iterator[Dict]:
        """One streaming connection; transport faults surface as
        ``ServiceError(code=0)`` so :meth:`stream` can reconnect."""
        conn = self._connect(timeout=timeout or 3600.0)
        try:
            try:
                conn.request(
                    "GET", f"/api/jobs/{job_id}/events?from={start}"
                )
                resp = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.address}: {exc}"
                ) from None
            if resp.status >= 400:
                detail = resp.read().decode()[:200]
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                raise ServiceError(detail, resp.status)
            while True:
                try:
                    line = resp.readline()
                except (OSError, http.client.HTTPException) as exc:
                    raise ServiceError(
                        f"event stream dropped: {exc}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as exc:
                    # torn line from an abruptly closed connection
                    raise ServiceError(
                        f"event stream dropped mid-line: {exc}"
                    ) from None
        finally:
            conn.close()

    def watch(
        self,
        job_id: str,
        on_event: Optional[Callable[[Dict], None]] = None,
        start: int = 0,
    ) -> StudyResult:
        """Follow the stream to completion and return the result.

        ``on_event`` sees every event *after* framed metric channels
        have been reassembled into their ``point`` event (so consumers
        handle one uniform shape).  Raises :class:`ServiceError` when
        the job ends in ``error`` / ``failed`` / ``cancelled`` /
        detaches.  Dropped connections are survived transparently by
        :meth:`stream`'s reconnect logic.
        """
        pending: Dict[Tuple, Dict[str, List[Dict]]] = {}
        for event in self.stream(job_id, start=start):
            name = event.get("event")
            if name == "channel_frame":
                slot = (
                    event.get("scenario"),
                    event.get("curve"),
                    event.get("rate"),
                )
                frames = pending.setdefault(slot, {}).setdefault(
                    event["channel"], []
                )
                frames.append(event["payload"])
                point = pending[slot].get("__point__")
                if point is not None and _frames_complete(
                    pending[slot], point[0].get("framed_channels", ())
                ):
                    merged = _merge_frames(pending.pop(slot))
                    if on_event is not None:
                        on_event(merged)
                continue
            if name == "point" and event.get("framed_channels"):
                slot = (
                    event.get("scenario"),
                    event.get("curve"),
                    event.get("rate"),
                )
                pending.setdefault(slot, {})["__point__"] = [event]
                continue
            if on_event is not None:
                on_event(event)
            if name == "done":
                return StudyResult.from_dict(event["result"])
            if name == "error":
                raise ServiceError(f"job {job_id} failed: {event['error']}")
            if name == "failed":
                attempts = event.get("attempts")
                raise ServiceError(
                    f"job {job_id} quarantined after "
                    f"{attempts or 'several'} attempt(s): "
                    f"{event.get('error')}"
                )
            if name == "cancelled":
                raise ServiceError(f"job {job_id} was cancelled")
            if name == "detached":
                raise ServiceError(
                    f"job {job_id} was cancelled (execution continues "
                    "for other subscribers)"
                )
        raise ServiceError(
            f"event stream for job {job_id} ended without a terminal event"
        )


def _frames_complete(slot: Dict, names) -> bool:
    for name in names:
        frames = slot.get(name)
        if not frames:
            return False
        if len(frames) < int(frames[0].get("frames", 1)):
            return False
    return True


def _merge_frames(slot: Dict) -> Dict:
    """Fold buffered channel frames back into their point event."""
    [point] = slot.pop("__point__")
    result = point.get("result", {})
    channels = result.setdefault("channels", {})
    for name, frames in slot.items():
        channels[name] = MetricChannel.from_frames(frames).to_dict()
    point = dict(point)
    point["framed_channels"] = []
    return point
