"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` wraps the JSON endpoints of
:mod:`repro.service.server`; the only non-trivial part is
:meth:`~ServiceClient.stream`, which reads the chunked NDJSON event
feed line by line, and :meth:`~ServiceClient.watch`, which folds the
stream back into a complete :class:`~repro.api.StudyResult`
(reassembling framed metric channels transparently).

Example::

    from repro.api import build_study
    from repro.service import JobRequest, ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    study = build_study("smoke", scale="quick")
    job = client.submit_study(study)
    result = client.watch(job["id"], on_event=print)
    print(result.render())
"""

from __future__ import annotations

import http.client
import json
import os
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import urlparse

from ..api import Study, StudyResult
from ..metrics import MetricChannel
from .protocol import JobRequest

__all__ = ["DEFAULT_SERVER_ENV", "ServiceClient", "ServiceError"]

#: environment variable naming the default server address.
DEFAULT_SERVER_ENV = "REPRO_SERVICE_URL"


class ServiceError(RuntimeError):
    """An error response from the service (or a transport failure)."""

    def __init__(self, message: str, code: int = 0) -> None:
        super().__init__(message)
        self.code = code


def resolve_server(address: Optional[str] = None) -> str:
    """Explicit address, else ``$REPRO_SERVICE_URL``, else the default
    loopback port."""
    from .server import DEFAULT_PORT

    address = address or os.environ.get(DEFAULT_SERVER_ENV)
    return address or f"http://127.0.0.1:{DEFAULT_PORT}"


class ServiceClient:
    """Thin JSON client over one service address."""

    def __init__(
        self, address: Optional[str] = None, timeout: float = 60.0
    ) -> None:
        address = resolve_server(address)
        if "//" not in address:
            address = "http://" + address
        parsed = urlparse(address)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"service address must be http://host:port, got {address!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- plumbing ------------------------------------------------------
    def _connect(
        self, timeout: Optional[float] = None
    ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        conn = self._connect()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read().decode() or "{}"
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.address}: {exc}"
                ) from None
            try:
                decoded = json.loads(data)
            except ValueError:
                raise ServiceError(
                    f"non-JSON response from {path}: {data[:200]!r}",
                    resp.status,
                ) from None
            if resp.status >= 400:
                raise ServiceError(
                    decoded.get("error", f"HTTP {resp.status}"), resp.status
                )
            return decoded
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/api/health")

    def stats(self) -> Dict:
        return self._request("GET", "/api/stats")

    def submit(self, request: JobRequest) -> Dict:
        """Submit a prepared request; returns the job status (with an
        ``attached`` flag when it deduped onto an in-flight run)."""
        return self._request("POST", "/api/jobs", request.to_data())

    def submit_study(
        self,
        study: Union[Study, Dict],
        *,
        client: str = "",
        priority: int = 0,
        workers: Optional[int] = None,
        metrics: Tuple[str, ...] = (),
    ) -> Dict:
        """Convenience wrapper building the :class:`JobRequest`."""
        payload = study.to_data() if isinstance(study, Study) else study
        return self.submit(
            JobRequest(
                study=payload,
                client=client,
                priority=priority,
                workers=workers,
                metrics=tuple(metrics),
            )
        )

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/api/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> StudyResult:
        return StudyResult.from_dict(
            self._request("GET", f"/api/jobs/{job_id}/result")
        )

    def shutdown(self) -> Dict:
        return self._request("POST", "/api/shutdown")

    # -- streaming -----------------------------------------------------
    def stream(
        self, job_id: str, start: int = 0, timeout: Optional[float] = None
    ) -> Iterator[Dict]:
        """Yield raw event dicts from ``start`` until the stream ends.

        The connection stays open for the job's lifetime; ``timeout``
        bounds *silence* between events, not the total duration.
        """
        conn = self._connect(timeout=timeout or 3600.0)
        try:
            try:
                conn.request(
                    "GET", f"/api/jobs/{job_id}/events?from={start}"
                )
                resp = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.address}: {exc}"
                ) from None
            if resp.status >= 400:
                detail = resp.read().decode()[:200]
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                raise ServiceError(detail, resp.status)
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def watch(
        self,
        job_id: str,
        on_event: Optional[Callable[[Dict], None]] = None,
        start: int = 0,
    ) -> StudyResult:
        """Follow the stream to completion and return the result.

        ``on_event`` sees every event *after* framed metric channels
        have been reassembled into their ``point`` event (so consumers
        handle one uniform shape).  Raises :class:`ServiceError` when
        the job ends in ``error`` / ``cancelled`` / detaches.
        """
        pending: Dict[Tuple, Dict[str, List[Dict]]] = {}
        for event in self.stream(job_id, start=start):
            name = event.get("event")
            if name == "channel_frame":
                slot = (
                    event.get("scenario"),
                    event.get("curve"),
                    event.get("rate"),
                )
                frames = pending.setdefault(slot, {}).setdefault(
                    event["channel"], []
                )
                frames.append(event["payload"])
                point = pending[slot].get("__point__")
                if point is not None and _frames_complete(
                    pending[slot], point[0].get("framed_channels", ())
                ):
                    merged = _merge_frames(pending.pop(slot))
                    if on_event is not None:
                        on_event(merged)
                continue
            if name == "point" and event.get("framed_channels"):
                slot = (
                    event.get("scenario"),
                    event.get("curve"),
                    event.get("rate"),
                )
                pending.setdefault(slot, {})["__point__"] = [event]
                continue
            if on_event is not None:
                on_event(event)
            if name == "done":
                return StudyResult.from_dict(event["result"])
            if name == "error":
                raise ServiceError(f"job {job_id} failed: {event['error']}")
            if name == "cancelled":
                raise ServiceError(f"job {job_id} was cancelled")
            if name == "detached":
                raise ServiceError(
                    f"job {job_id} was cancelled (execution continues "
                    "for other subscribers)"
                )
        raise ServiceError(
            f"event stream for job {job_id} ended without a terminal event"
        )


def _frames_complete(slot: Dict, names) -> bool:
    for name in names:
        frames = slot.get(name)
        if not frames:
            return False
        if len(frames) < int(frames[0].get("frames", 1)):
            return False
    return True


def _merge_frames(slot: Dict) -> Dict:
    """Fold buffered channel frames back into their point event."""
    [point] = slot.pop("__point__")
    result = point.get("result", {})
    channels = result.setdefault("channels", {})
    for name, frames in slot.items():
        channels[name] = MetricChannel.from_frames(frames).to_dict()
    point = dict(point)
    point["framed_channels"] = []
    return point
