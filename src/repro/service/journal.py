"""Durable job state: write-ahead journal + on-disk event logs.

Everything the service needs to survive a ``kill -9`` lives in one
``--state-dir``::

    <state-dir>/journal.ndjson    write-ahead job journal
    <state-dir>/events/<key>.ndjson   per-execution event logs

The **journal** (schema ``repro.job-journal/v1``) is an append-only
JSON-lines file recording every accepted :class:`~repro.service.
protocol.JobRequest` (fsynced *before* the submission is acknowledged,
so an acknowledged job is never lost) and every execution state
transition.  On startup the service replays it: executions whose last
recorded state is non-terminal are re-enqueued — their completed
points come back from the shared :class:`~repro.service.store.
ResultStore`, so a job killed mid-sweep resumes and finishes
bit-identical to an uninterrupted run.  Terminal executions are
restored read-only (status / events / result keep answering) from
their event logs.

The **event logs** mirror each execution's in-memory event list line
by line.  Both files are written by a process that may die between any
two bytes, so every reader goes through :func:`read_ndjson_tolerant`,
which treats an undecodable tail as torn: it truncates the file back
to the last good line and warns instead of raising — a crashed append
costs one event, never the whole log.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..obs.log import get_logger
from . import chaos
from .protocol import JobRequest

__all__ = [
    "EventLog",
    "JOB_JOURNAL_SCHEMA",
    "JobJournal",
    "JournalJob",
    "JournalView",
    "read_ndjson_tolerant",
]

JOB_JOURNAL_SCHEMA = "repro.job-journal/v1"

logger = get_logger("repro.service")


def read_ndjson_tolerant(
    path: Union[str, Path], *, truncate: bool = True, label: str = "log"
) -> Tuple[List[Dict], bool]:
    """Parse a JSON-lines file written by a crash-prone process.

    Returns ``(records, torn)``.  The first line that fails to decode
    — a torn trailing append, or garbage after it — ends the parse:
    everything from its first byte on is dropped and (with
    ``truncate``) physically truncated away, so the file is clean
    again for the next appender.  A missing file is simply empty.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return [], False
    records: List[Dict] = []
    offset = 0
    for line in raw.splitlines(keepends=True):
        stripped = line.strip()
        if stripped:
            try:
                record = json.loads(stripped)
            except ValueError:
                break
            if not line.endswith(b"\n"):
                # decodes, but the newline never landed: the *next*
                # append would have glued onto it — drop it too
                break
            records.append(record)
        offset += len(line)
    torn = offset < len(raw)
    if torn:
        logger.warning(
            "%s %s has a torn tail (%d byte(s) after %d good record(s))"
            "%s",
            label,
            path,
            len(raw) - offset,
            len(records),
            "; truncating" if truncate else "",
        )
        if truncate:
            try:
                with open(path, "r+b") as fh:
                    fh.truncate(offset)
            except OSError:
                pass
    return records, torn


class EventLog:
    """Append-only on-disk mirror of one execution's event list."""

    def __init__(self, path: Union[str, Path], fresh: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w" if fresh else "a")
        self._wedged = False

    def append(self, event: Dict) -> None:
        if self._wedged:
            return
        line = json.dumps(event)
        if chaos.should_fire("torn-event"):
            # crash mid-write: half a line, no newline, nothing after
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            self._wedged = True
            return
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
        except OSError:
            self._wedged = True

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    @staticmethod
    def load(path: Union[str, Path]) -> Tuple[List[Dict], bool]:
        return read_ndjson_tolerant(path, label="event log")


@dataclasses.dataclass
class JournalJob:
    """One job as reconstructed from the journal."""

    id: str
    key: str
    request: JobRequest
    cancelled: bool = False
    #: trace identity of the execution's pre-crash incarnation — the
    #: shared ``trace_id`` a resumed run must keep, and the root
    #: ``span_id`` its resume span links back to.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None


@dataclasses.dataclass
class JournalView:
    """Everything a replay learned: jobs in submission order, the last
    recorded state per execution key, and whether the tail was torn."""

    jobs: Dict[str, JournalJob] = dataclasses.field(default_factory=dict)
    states: Dict[str, str] = dataclasses.field(default_factory=dict)
    errors: Dict[str, str] = dataclasses.field(default_factory=dict)
    torn: bool = False


class JobJournal:
    """Write-ahead journal of job submissions and state transitions.

    Submissions are fsynced (a crash after the HTTP 202 cannot lose
    the job); state transitions are flushed (they are reconstructible
    in the worst case — an execution whose terminal record is lost
    merely re-runs from the store).  All appends are serialised by one
    lock; records are single ``write`` calls, so concurrent readers of
    a live journal only ever race the torn-tail handling they already
    have.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a")

    # -- appends -------------------------------------------------------
    def _append(self, record: Dict, sync: bool) -> None:
        record = {"schema": JOB_JOURNAL_SCHEMA, **record}
        with self._lock:
            try:
                self._fh.write(json.dumps(record) + "\n")
                self._fh.flush()
                if sync:
                    os.fsync(self._fh.fileno())
            except OSError:
                logger.exception("journal append failed (%s)", self.path)

    def record_job(
        self,
        job_id: str,
        key: str,
        request: JobRequest,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> None:
        record: Dict = {
            "rec": "job",
            "id": job_id,
            "key": key,
            "request": request.to_data(),
        }
        if trace_id:
            record["trace_id"] = trace_id
        if span_id:
            record["span_id"] = span_id
        self._append(record, sync=True)

    def record_state(
        self, key: str, state: str, error: Optional[str] = None
    ) -> None:
        record: Dict = {"rec": "state", "key": key, "state": state}
        if error:
            record["error"] = error
        self._append(record, sync=False)

    def record_cancel(self, job_id: str) -> None:
        self._append({"rec": "cancel", "id": job_id}, sync=False)

    # -- replay --------------------------------------------------------
    def replay(self) -> JournalView:
        """Reconstruct job/state history, tolerating a torn tail."""
        with self._lock:
            records, torn = read_ndjson_tolerant(
                self.path, label="job journal"
            )
        view = JournalView(torn=torn)
        for record in records:
            kind = record.get("rec")
            if kind == "job":
                try:
                    request = JobRequest.from_data(record["request"])
                except (KeyError, TypeError, ValueError) as exc:
                    logger.warning(
                        "journal: dropping unreadable job record %r: %s",
                        record.get("id"),
                        exc,
                    )
                    continue
                view.jobs[record["id"]] = JournalJob(
                    id=record["id"],
                    key=record["key"],
                    request=request,
                    trace_id=record.get("trace_id"),
                    span_id=record.get("span_id"),
                )
            elif kind == "state":
                view.states[record["key"]] = record["state"]
                if record.get("error"):
                    view.errors[record["key"]] = record["error"]
                else:
                    view.errors.pop(record["key"], None)
            elif kind == "cancel":
                job = view.jobs.get(record.get("id"))
                if job is not None:
                    job.cancelled = True
        return view

    def compact(self, view: JournalView) -> None:
        """Rewrite the journal to the view's net state (startup GC)."""
        tmp = self.path.with_suffix(".ndjson.tmp")
        with self._lock:
            with open(tmp, "w") as fh:
                for job in view.jobs.values():
                    record = {
                        "schema": JOB_JOURNAL_SCHEMA,
                        "rec": "job",
                        "id": job.id,
                        "key": job.key,
                        "request": job.request.to_data(),
                    }
                    if job.trace_id:
                        record["trace_id"] = job.trace_id
                    if job.span_id:
                        record["span_id"] = job.span_id
                    fh.write(json.dumps(record) + "\n")
                    if job.cancelled:
                        fh.write(
                            json.dumps(
                                {
                                    "schema": JOB_JOURNAL_SCHEMA,
                                    "rec": "cancel",
                                    "id": job.id,
                                }
                            )
                            + "\n"
                        )
                for key, state in view.states.items():
                    record = {
                        "schema": JOB_JOURNAL_SCHEMA,
                        "rec": "state",
                        "key": key,
                        "state": state,
                    }
                    if key in view.errors:
                        record["error"] = view.errors[key]
                    fh.write(json.dumps(record) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh.close()
            self._fh = open(self.path, "a")

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:
                pass
