"""Job bookkeeping: executions, subscriber fan-out, fair scheduling.

The unit of *work* is an :class:`Execution` — one deduped computation,
identified by the request's execution key.  The unit of *tenancy* is a
:class:`Job` — one client submission.  Concurrent or repeat submissions
of the same study attach extra jobs to the already-queued/running
execution (single-flight at the job level): every subscriber streams
the same event list, the physics runs once.

The :class:`Scheduler` keeps a priority queue of executions (higher
``priority`` first, FIFO within a level via a submission sequence
number) and enforces a per-client in-flight cap.  Cancellation is
per job: an execution is only aborted when *every* job riding it has
been cancelled, so one tenant cannot kill another tenant's stream.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..api import Study, StudyResult
from ..network.stats import SimResult
from ..obs import REGISTRY
from ..obs import trace as obs_trace
from .protocol import JOB_EVENT_SCHEMA, JOB_STATUS_SCHEMA, JobRequest

__all__ = [
    "BusyError",
    "Execution",
    "Job",
    "JobCancelled",
    "RetryPolicy",
    "Scheduler",
    "TERMINAL_STATES",
]

#: states in which an execution emits no further events.  ``failed``
#: is the quarantine state: the execution kept erroring through its
#: retry budget and was parked with its last traceback.
TERMINAL_STATES = ("done", "error", "failed", "cancelled")

#: channels larger than this many rows are streamed as frame events
#: instead of riding inline in the ``point`` event (see
#: :meth:`~repro.metrics.MetricChannel.to_frames`).
FRAME_ROWS = 256

# runtime telemetry (see repro.obs).  Counters are process-global and
# monotonic, so multiple service instances in one process (tests) can
# share them safely; point-in-time gauges are refreshed by the server
# at scrape time from its own scheduler instead.
_M_SUBMITTED = REGISTRY.counter(
    "service_jobs_submitted_total",
    "Jobs accepted by the scheduler (attached=true rode an existing "
    "execution instead of enqueueing new work)",
    ("attached",),
)
_M_RETRIES = REGISTRY.counter(
    "service_retries_total", "Supervised execution retries"
)
_M_QUARANTINES = REGISTRY.counter(
    "service_quarantines_total",
    "Executions parked as failed after exhausting their retry budget",
)
_M_QUEUE_WAIT = REGISTRY.histogram(
    "service_queue_wait_seconds",
    "Time executions spent queued before their first running attempt",
)


class JobCancelled(Exception):
    """Raised inside the executor to abort a cancelled job's engine run."""


class BusyError(Exception):
    """Submission rejected: the client is at its in-flight cap."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter for supervised retries.

    Attempt ``n`` (1-based) failing sleeps ``base_delay * 2**(n-1)``
    seconds, capped at ``max_delay``, stretched by up to ``jitter``
    fractional randomness so a fleet of retrying executions does not
    thundering-herd a shared store.  After ``max_attempts`` failed
    attempts the execution is quarantined as ``failed``.
    """

    max_attempts: int = 3
    base_delay: float = 0.25
    max_delay: float = 5.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, attempt: int) -> float:
        base = min(
            self.base_delay * (2 ** max(0, attempt - 1)), self.max_delay
        )
        return base * (1.0 + self.jitter * random.random())


class Execution:
    """One deduped computation and its append-only event log.

    Subscribers (any number, attaching at any time) read events by
    index under :meth:`wait_events`; the log is complete from event 0,
    so a late subscriber replays the full history before blocking on
    the live tail.  All mutation happens under one condition variable.
    """

    def __init__(
        self, key: str, request: JobRequest, study: Study
    ) -> None:
        self.key = key
        self.study = study
        self.workers = request.workers
        self.priority = request.priority
        self.state = "queued"
        self.jobs: List["Job"] = []
        self.cancel_event = threading.Event()
        self.points_done = 0
        self.points_total = study.num_points()
        self.cache_hits = 0
        self.result: Optional[StudyResult] = None
        self.error: Optional[str] = None
        self.traceback: Optional[str] = None
        #: supervised-retry attempt counter (1-based while running).
        self.attempts = 0
        #: last sign of life (updated per point / attempt) — the
        #: service watchdog reaps runs whose heartbeat goes stale.
        self.heartbeat = time.time()
        #: true when this execution was re-enqueued from the journal
        #: after a restart (completed points replay from the store).
        self.resumed = False
        #: optional on-disk mirror of the event list (an
        #: :class:`~repro.service.journal.EventLog`).
        self.sink = None
        #: optional ``fn(execution, state)`` called on each state
        #: transition — the journal's write-ahead hook.
        self.on_transition: Optional[Callable] = None
        #: trace identity (``repro.obs``): the id every span of this
        #: execution shares, and the open root span ended at the
        #: terminal transition.  ``None`` while tracing is disabled.
        self.trace_id: Optional[str] = None
        self.trace: Optional[obs_trace.SpanContext] = None
        self.root_span = obs_trace.NOOP_SPAN
        self._queue_span = obs_trace.NOOP_SPAN
        self._queued_at = time.time()
        self._events: List[Dict] = []
        self._cond = threading.Condition()

    # -- tracing -------------------------------------------------------
    def begin_trace(
        self,
        parent: Optional[obs_trace.SpanContext] = None,
        link: Optional[str] = None,
        resumed: bool = False,
    ) -> None:
        """Open this execution's root span (and the queue-wait span).

        ``parent`` is the submitting client's context (the root then
        joins the client's trace) or, on journal replay, the pre-crash
        root — which keeps the original ``trace_id``.  ``link`` names
        the pre-crash root span id so resumed work is explicitly tied
        to the incarnation it continues.  No-op while tracing is off.
        """
        name = "execution.resume" if resumed else "execution"
        self.root_span = obs_trace.start_span(
            name,
            parent=parent,
            key=self.key[:16],
            study=self.study.name,
            points_total=self.points_total,
        )
        self.root_span.add_link(link)
        ctx = self.root_span.context
        if ctx is not None:
            self.trace = ctx
            self.trace_id = ctx.trace_id
        self._queue_span = obs_trace.start_span(
            "queue.wait", parent=self.trace
        )
        self._queued_at = time.time()

    def _end_trace(
        self, status: str, error: Optional[str] = None
    ) -> None:
        self._queue_span.end()  # idempotent; cancelled-while-queued path
        self.root_span.set(points_done=self.points_done)
        self.root_span.end(
            status="ok" if status == "done" else status, error=error
        )

    # -- event emission (executor side) --------------------------------
    def _emit(self, event: Dict) -> None:
        with self._cond:
            event = {
                "schema": JOB_EVENT_SCHEMA,
                "seq": len(self._events),
                **event,
            }
            self._events.append(event)
            if self.sink is not None:
                self.sink.append(event)
            self._cond.notify_all()

    def _notify(self, state: str) -> None:
        if self.on_transition is not None:
            self.on_transition(self, state)

    def beat(self) -> None:
        self.heartbeat = time.time()

    def mark_running(self) -> None:
        with self._cond:
            if self.state in TERMINAL_STATES:
                return
            first = self.state == "queued"
            self.state = "running"
        self.beat()
        if first:
            self._queue_span.end()
            _M_QUEUE_WAIT.observe(time.time() - self._queued_at)
        self._notify("running")
        self._emit(
            {
                "event": "start",
                "study": self.study.name,
                "key": self.key,
                "points_total": self.points_total,
                "resumed": self.resumed,
            }
        )

    def record_point(
        self,
        scenario: str,
        label: str,
        rate: float,
        result: SimResult,
        source: str,
    ) -> None:
        """One completed point: a ``point`` event plus channel frames.

        Channels with more than :data:`FRAME_ROWS` rows are stripped
        from the point payload and streamed as ``channel_frame`` events
        right behind it — subscribers reassemble them with
        :meth:`MetricChannel.from_frames` (the client does this
        transparently).
        """
        self.points_done += 1
        self.beat()
        if source == "cache":
            self.cache_hits += 1
        payload = result.to_dict()
        framed = {}
        for name, channel in result.channels.items():
            if channel.num_rows > FRAME_ROWS:
                framed[name] = channel.to_frames(FRAME_ROWS)
        if framed:
            payload["channels"] = {
                name: ch
                for name, ch in payload["channels"].items()
                if name not in framed
            }
            if not payload["channels"]:
                del payload["channels"]
        self._emit(
            {
                "event": "point",
                "scenario": scenario,
                "curve": label,
                "rate": rate,
                "source": source,
                "points_done": self.points_done,
                "points_total": self.points_total,
                "result": payload,
                "framed_channels": sorted(framed),
            }
        )
        for name in sorted(framed):
            for frame in framed[name]:
                self._emit(
                    {
                        "event": "channel_frame",
                        "scenario": scenario,
                        "curve": label,
                        "rate": rate,
                        "channel": name,
                        "payload": frame,
                    }
                )

    def finish(self, result: StudyResult, cache_stats: Dict) -> None:
        with self._cond:
            if self.state in TERMINAL_STATES:
                return
            self.state = "done"
            self.result = result
        self._end_trace("done")
        self._notify("done")
        self._emit(
            {
                "event": "done",
                "points_done": self.points_done,
                "cache_hits": self.cache_hits,
                "cache": cache_stats,
                "result": result.to_dict(),
            }
        )

    def fail(self, error: str) -> None:
        with self._cond:
            if self.state in TERMINAL_STATES:
                return
            self.state = "error"
            self.error = error
        self._end_trace("error", error)
        self._notify("error")
        self._emit({"event": "error", "error": error})

    def record_retry(
        self, attempt: int, max_attempts: int, delay: float, error: str
    ) -> None:
        """One failed attempt that will be retried after ``delay``."""
        self.attempts = attempt
        self.beat()
        _M_RETRIES.inc()
        self._emit(
            {
                "event": "retry",
                "attempt": attempt,
                "max_attempts": max_attempts,
                "delay": round(delay, 3),
                "error": error,
            }
        )

    def quarantine(
        self, error: str, traceback_text: Optional[str], attempts: int
    ) -> None:
        """Park a poison execution as ``failed`` with its traceback.

        Terminal like ``error``/``cancelled``: the queue moves on, the
        job stops consuming retries, and ``status`` surfaces the last
        traceback for post-mortems.
        """
        with self._cond:
            if self.state in TERMINAL_STATES:
                return
            self.state = "failed"
            self.error = error
            self.traceback = traceback_text
            self.attempts = attempts
        _M_QUARANTINES.inc()
        self._end_trace("failed", error)
        self._notify("failed")
        self._emit(
            {
                "event": "failed",
                "error": error,
                "traceback": traceback_text,
                "attempts": attempts,
                "points_done": self.points_done,
            }
        )

    def mark_cancelled(self) -> None:
        with self._cond:
            if self.state in TERMINAL_STATES:
                return
            self.state = "cancelled"
        self._end_trace("cancelled")
        self._notify("cancelled")
        self._emit({"event": "cancelled", "points_done": self.points_done})

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- subscriber side -----------------------------------------------
    def wait_events(
        self, start: int, timeout: Optional[float] = None
    ) -> List[Dict]:
        """Events from index ``start``; blocks until at least one new
        event exists or the execution is terminal (then returns
        whatever is left, possibly nothing)."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: len(self._events) > start or self.terminal,
                timeout=timeout,
            ):
                return []
            return self._events[start:]

    def events_snapshot(self) -> List[Dict]:
        with self._cond:
            return list(self._events)

    # -- durability ----------------------------------------------------
    @classmethod
    def restore_terminal(
        cls,
        key: str,
        request: JobRequest,
        study: Study,
        state: str,
        events: List[Dict],
        error: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> "Execution":
        """Rebuild a finished execution from its journaled state and
        on-disk event log, so status / events / result endpoints keep
        answering across restarts.  A ``done`` execution whose log
        lost its ``done`` event (torn tail) keeps its state but has no
        result — the result endpoint reports that honestly."""
        execution = cls(key, request, study)
        execution.state = state
        execution._events = list(events)
        execution.error = error
        execution.trace_id = trace_id
        for event in events:
            kind = event.get("event")
            if kind == "point":
                execution.points_done += 1
                if event.get("source") == "cache":
                    execution.cache_hits += 1
            elif kind == "done" and state == "done":
                try:
                    execution.result = StudyResult.from_dict(
                        event["result"]
                    )
                except (KeyError, TypeError, ValueError):
                    execution.result = None
            elif kind == "failed":
                execution.error = event.get("error", error)
                execution.traceback = event.get("traceback")
                execution.attempts = event.get("attempts", 0)
            elif kind == "error":
                execution.error = event.get("error", error)
        return execution


class Job:
    """One client submission riding an execution."""

    def __init__(
        self, job_id: str, request: JobRequest, execution: Execution
    ) -> None:
        self.id = job_id
        self.client = request.client
        self.priority = request.priority
        self.execution = execution
        self.cancelled = False

    @property
    def state(self) -> str:
        if self.cancelled:
            return "cancelled"
        return self.execution.state

    @property
    def terminal(self) -> bool:
        return self.cancelled or self.execution.terminal

    def status(self, queued_ahead: Optional[int] = None) -> Dict:
        exe = self.execution
        primary = exe.jobs[0] if exe.jobs else self
        out = {
            "schema": JOB_STATUS_SCHEMA,
            "id": self.id,
            "state": self.state,
            "study": exe.study.name,
            "key": exe.key,
            "client": self.client,
            "priority": self.priority,
            "points_done": exe.points_done,
            "points_total": exe.points_total,
            "cache_hits": exe.cache_hits,
            "subscribers": sum(1 for j in exe.jobs if not j.cancelled),
            "attached_to": primary.id if primary is not self else None,
        }
        if queued_ahead is not None:
            out["queued_ahead"] = queued_ahead
        if exe.error:
            out["error"] = exe.error
        if exe.traceback:
            out["traceback"] = exe.traceback
        if exe.attempts:
            out["attempts"] = exe.attempts
        if exe.resumed:
            out["resumed"] = True
        if exe.trace_id:
            out["trace_id"] = exe.trace_id
        return out


class Scheduler:
    """Priority + FIFO queue of executions with per-client caps."""

    def __init__(
        self,
        max_inflight_per_client: int = 8,
        execution_hook: Optional[Callable] = None,
    ) -> None:
        if max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1")
        self.max_inflight_per_client = max_inflight_per_client
        #: called with each newly created (or re-enqueued) execution —
        #: the service attaches journal/event-log plumbing here.
        self.execution_hook = execution_hook
        self._lock = threading.Condition()
        self._seq = itertools.count()
        self._job_seq = itertools.count(1)
        self._jobs: Dict[str, Job] = {}
        self._executions: Dict[str, Execution] = {}  # active by key
        self._heap: List[Tuple[int, int, str]] = []
        self._closed = False

    # -- submission ----------------------------------------------------
    def _client_inflight(self, client: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.client == client and not job.terminal
        )

    def submit(
        self,
        request: JobRequest,
        trace: Optional[obs_trace.SpanContext] = None,
    ) -> Tuple[Job, bool]:
        """Queue (or attach to) the request's execution.

        Returns ``(job, attached)`` — ``attached`` is true when an
        identical execution was already queued or running and this job
        subscribed to it instead of enqueueing new work.  ``trace`` is
        the submitting client's span context (from the ``traceparent``
        header); a *new* execution joins that trace, an attached job
        keeps the execution's existing one.  Raises
        :class:`BusyError` at the client's in-flight cap and
        ``ValueError`` on an invalid study payload.
        """
        study = request.build_study()  # validates the payload
        key = request.execution_key()
        with self._lock:
            if self._closed:
                raise BusyError("service is shutting down")
            if (
                self._client_inflight(request.client)
                >= self.max_inflight_per_client
            ):
                raise BusyError(
                    f"client {request.client or '<anonymous>'!r} already "
                    f"has {self.max_inflight_per_client} job(s) in "
                    "flight; wait for one to finish or cancel it"
                )
            execution = self._executions.get(key)
            attached = execution is not None
            if execution is None:
                execution = Execution(key, request, study)
                execution.begin_trace(parent=trace)
                if self.execution_hook is not None:
                    self.execution_hook(execution)
                self._executions[key] = execution
                heapq.heappush(
                    self._heap,
                    (-request.priority, next(self._seq), key),
                )
            job = Job(f"j{next(self._job_seq):06d}", request, execution)
            execution.jobs.append(job)
            self._jobs[job.id] = job
            _M_SUBMITTED.inc(attached=str(attached).lower())
            self._lock.notify_all()
            return job, attached

    def restore(
        self,
        job_id: str,
        request: JobRequest,
        execution: Execution,
        enqueue: bool,
        cancelled: bool = False,
    ) -> Job:
        """Re-register a journaled job after a restart.

        ``enqueue`` puts the execution back on the run queue (once per
        key, however many jobs ride it); terminal executions are
        registered for status/result lookups only.  Restored job ids
        are preserved; the id sequence is bumped past them so new
        submissions never collide.
        """
        with self._lock:
            job = Job(job_id, request, execution)
            job.cancelled = cancelled
            execution.jobs.append(job)
            self._jobs[job_id] = job
            try:
                numeric = int(job_id.lstrip("j"))
            except ValueError:
                numeric = 0
            top = max(
                numeric + 1,
                next(self._job_seq),  # consumes one; harmless
            )
            self._job_seq = itertools.count(top)
            if enqueue and self._executions.get(execution.key) is not (
                execution
            ):
                if self.execution_hook is not None:
                    self.execution_hook(execution)
                self._executions[execution.key] = execution
                heapq.heappush(
                    self._heap,
                    (-execution.priority, next(self._seq), execution.key),
                )
            self._lock.notify_all()
            return job

    # -- executor side -------------------------------------------------
    def next_execution(
        self, timeout: Optional[float] = None
    ) -> Optional[Execution]:
        """Pop the highest-priority queued execution; ``None`` on
        timeout or shutdown.  Cancelled-while-queued executions are
        skipped (their terminal event was already emitted)."""
        with self._lock:
            while True:
                while self._heap:
                    _, _, key = heapq.heappop(self._heap)
                    execution = self._executions.get(key)
                    if execution is None or execution.terminal:
                        continue
                    return execution
                if self._closed:
                    return None
                if not self._lock.wait(timeout=timeout):
                    return None

    def finish_execution(self, execution: Execution) -> None:
        """Retire a terminal execution so a resubmission starts fresh
        (and replays instantly from the shared store)."""
        with self._lock:
            if self._executions.get(execution.key) is execution:
                del self._executions[execution.key]

    # -- control -------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel one job; abort its execution only if no live
        subscriber remains.  Idempotent; terminal jobs are returned
        unchanged."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                return job
            job.cancelled = True
            execution = job.execution
            if all(j.cancelled for j in execution.jobs):
                execution.cancel_event.set()
                if execution.state == "queued":
                    execution.mark_cancelled()
                    self.finish_execution(execution)
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(
                f"unknown job {job_id!r}; known: "
                f"{sorted(self._jobs)[-8:] or '(none)'}"
            ) from None

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queued_ahead(self, job: Job) -> int:
        """Executions queued before this job's (0 when running/done)."""
        with self._lock:
            if job.execution.state != "queued":
                return 0
            mine = None
            order = sorted(self._heap)
            for pos, (_, _, key) in enumerate(order):
                if key == job.execution.key:
                    mine = pos
                    break
            return mine if mine is not None else 0

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    def stats(self) -> Dict:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "jobs": len(self._jobs),
                "by_state": dict(sorted(states.items())),
                "queued_executions": sum(
                    1
                    for e in self._executions.values()
                    if e.state == "queued"
                ),
                "active_executions": len(self._executions),
                "max_inflight_per_client": self.max_inflight_per_client,
            }
