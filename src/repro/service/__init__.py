"""Simulation-as-a-service: job queue, streaming telemetry, shared store.

This package turns the in-process experiment pipeline into a small
long-running daemon:

* :mod:`repro.service.server` — HTTP endpoint with an async job queue
  and one *warm* executor thread, so the compiled native core and the
  engine's routing/topology LRUs stay resident between jobs (warm
  resubmission skips the ~seconds of per-process setup a cold CLI run
  pays);
* :mod:`repro.service.jobs` — executions, subscriber fan-out
  (identical submissions dedupe onto one run), fair scheduling with
  per-client in-flight caps, per-job cancellation;
* :mod:`repro.service.store` — a content-addressed result store
  (``ResultCache`` layout, same keys) with LRU-bounded capacity and
  cross-process single-flight locks;
* :mod:`repro.service.protocol` — the schema-tagged wire types;
* :mod:`repro.service.journal` — the write-ahead job journal and
  on-disk event logs behind ``serve --state-dir``: acknowledged jobs
  survive a ``kill -9`` and resume on the next start;
* :mod:`repro.service.chaos` — the ``REPRO_CHAOS`` fault-injection
  harness the chaos test suite drives;
* :mod:`repro.service.client` — a stdlib client used by the CLI verbs
  ``submit`` / ``status`` / ``watch`` / ``cancel``; idempotent calls
  retry with backoff and event streams reconnect transparently.

Start a server with ``repro-dragonfly serve`` (or
:func:`create_server` + :func:`serve` in-process), then::

    from repro.service import ServiceClient

    client = ServiceClient()          # honours $REPRO_SERVICE_URL
    job = client.submit_study(study)
    result = client.watch(job["id"])
"""

from .chaos import CHAOS_ENV, ChaosError
from .client import (
    DEFAULT_SERVER_ENV,
    TERMINAL_EVENTS,
    ServiceClient,
    ServiceError,
)
from .jobs import (
    BusyError,
    Execution,
    Job,
    JobCancelled,
    RetryPolicy,
    Scheduler,
    TERMINAL_STATES,
)
from .journal import (
    JOB_JOURNAL_SCHEMA,
    EventLog,
    JobJournal,
    read_ndjson_tolerant,
)
from .protocol import (
    JOB_EVENT_SCHEMA,
    JOB_REQUEST_SCHEMA,
    JOB_STATES,
    JOB_STATUS_SCHEMA,
    JobRequest,
)
from .server import DEFAULT_PORT, SimulationService, create_server, serve
from .store import ResultStore, SingleFlight, SingleFlightCache

__all__ = [
    "BusyError",
    "CHAOS_ENV",
    "ChaosError",
    "DEFAULT_PORT",
    "DEFAULT_SERVER_ENV",
    "EventLog",
    "Execution",
    "JOB_EVENT_SCHEMA",
    "JOB_JOURNAL_SCHEMA",
    "JOB_REQUEST_SCHEMA",
    "JOB_STATES",
    "JOB_STATUS_SCHEMA",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobRequest",
    "ResultStore",
    "RetryPolicy",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "SingleFlight",
    "SingleFlightCache",
    "TERMINAL_EVENTS",
    "TERMINAL_STATES",
    "create_server",
    "serve",
    "read_ndjson_tolerant",
]
