"""Wire schemas of the simulation service.

Everything crossing the service socket is schema-tagged JSON, in the
same style as the scenario files:

* :class:`JobRequest` (``repro.job-request/v1``) — what a client
  submits: a full :class:`~repro.api.Study`/:class:`~repro.api.
  Scenario` payload (the ``to_data`` form that scenario files already
  use) plus execution options (metrics axis, engine workers) and
  tenancy fields (client id, priority);
* job status dicts (``repro.job-status/v1``) — id, state, queue
  position, progress counters, dedupe linkage;
* event lines (``repro.job-event/v1``) — the NDJSON stream a
  subscriber reads: ``start``, per-point ``point`` events (cache
  replays included, tagged ``source="cache"``), ``channel_frame``
  events carrying large :class:`~repro.metrics.MetricChannel` tables
  incrementally, and a terminal ``done`` / ``error`` / ``cancelled``.

The request's *execution key* — the digest under which concurrent and
repeat submissions dedupe — is computed from the canonical study
payload **after** the metrics axis is applied, because the metrics axis
changes ``config_key`` and therefore the produced telemetry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..api import Study

__all__ = [
    "JOB_EVENT_SCHEMA",
    "JOB_REQUEST_SCHEMA",
    "JOB_STATUS_SCHEMA",
    "JOB_STATES",
    "JobRequest",
]

JOB_REQUEST_SCHEMA = "repro.job-request/v1"
JOB_STATUS_SCHEMA = "repro.job-status/v1"
JOB_EVENT_SCHEMA = "repro.job-event/v1"

#: lifecycle of a job: ``queued -> running -> done``, with ``error``
#: (single hard failure), ``failed`` (quarantined after exhausting
#: supervised retries, traceback attached) and ``cancelled`` as the
#: other terminal states.
JOB_STATES = ("queued", "running", "done", "error", "failed", "cancelled")


@dataclass(frozen=True)
class JobRequest:
    """One client submission: a study payload plus execution options."""

    #: ``Study.to_data()`` / ``Scenario.to_data()`` payload (bare
    #: scenarios are accepted everywhere studies are, as in the files).
    study: Dict
    #: client identity for fairness accounting (in-flight caps are per
    #: client; empty string means the anonymous pool).
    client: str = ""
    #: higher runs first; FIFO within a priority level.
    priority: int = 0
    #: engine worker processes for this job (``None``: server default).
    workers: Optional[int] = None
    #: metric probe kinds applied to every curve before execution.
    metrics: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.study, dict) or not self.study:
            raise ValueError("a job request needs a study payload")

    def build_study(self) -> Study:
        """Realise the payload (validating it) with metrics applied.

        Any malformed payload — missing keys included — surfaces as
        ``ValueError``, so transport layers can map it to "bad request"
        without knowing the study schema's internals.
        """
        try:
            study = Study.from_data(self.study)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"invalid study payload: {exc!r}") from None
        if self.metrics:
            study = study.with_metrics(list(self.metrics))
        return study

    def execution_key(self) -> str:
        """Digest identifying the *computation* this request asks for.

        Two requests with equal keys produce byte-identical results and
        event streams, so the service runs them as one execution.  The
        canonical payload is the realised study's ``to_data`` form —
        titles and labels included, since they appear in results.
        """
        payload = self.build_study().to_data()
        blob = json.dumps(payload, sort_keys=True, default=list)
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_data(self) -> Dict:
        return {
            "schema": JOB_REQUEST_SCHEMA,
            "study": self.study,
            "client": self.client,
            "priority": self.priority,
            "workers": self.workers,
            "metrics": list(self.metrics),
        }

    @classmethod
    def from_data(cls, data: Dict) -> "JobRequest":
        schema = data.get("schema")
        if schema is not None and schema != JOB_REQUEST_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as {JOB_REQUEST_SCHEMA!r}"
            )
        workers = data.get("workers")
        return cls(
            study=data["study"],
            client=str(data.get("client", "")),
            priority=int(data.get("priority", 0)),
            workers=None if workers is None else int(workers),
            metrics=tuple(data.get("metrics", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_data())

    @classmethod
    def from_json(cls, text: str) -> "JobRequest":
        return cls.from_data(json.loads(text))
