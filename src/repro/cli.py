"""Command-line interface, redesigned around the ``repro.api`` facade.

Examples::

    repro-dragonfly list                      # scenarios + registered kinds
    repro-dragonfly list --tag resilience     # filter by scenario tag
    repro-dragonfly run fig10_local --scale quick --workers 4
    repro-dragonfly run scenarios/smoke.json --workers 1 --out smoke.json
    repro-dragonfly run smoke --metrics link_util,misroute --out s.json
    repro-dragonfly compare --arch switchless,dragonfly --pattern uniform
    repro-dragonfly resilience --failure-rates 0,0.02,0.05 --workers 4
    repro-dragonfly metrics                   # registered probe kinds
    repro-dragonfly metrics s.json            # channels in a result file
    repro-dragonfly report smoke.json --csv smoke.csv
    repro-dragonfly report s.json --channel link_util --csv links.csv
    repro-dragonfly tables                    # Tables I, II, IV
    repro-dragonfly layout                    # Fig. 9 floorplan summary
    repro-dragonfly verify --policy reduced   # deadlock-freedom check

``sweep`` remains as a deprecated alias of ``compare`` with a single
architecture (it now honours ``--preset``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from .analysis import (
    format_table_i,
    format_table_ii,
    format_table_iii,
    format_table_iv,
)
from .api import (
    SCALES,
    Study,
    StudyResult,
    build_study,
    compare_scenario,
    list_library,
    load_study,
    resilience_report,
    resilience_study,
    verify_study_faults,
)
from .core import SwitchlessConfig, build_switchless
from .engine import (
    ResultCache,
    list_presets,
    list_routings,
    list_topologies,
    list_traffics,
)
from .layout import plan_cgroup_layout
from .metrics import probe_descriptions
from .network import SimParams
from .routing import SwitchlessRouting, verify_deadlock_free


def _cmd_tables(_args) -> int:
    print(format_table_i())
    print()
    print(format_table_ii())
    print()
    print(format_table_iv())
    return 0


def _cmd_table3(_args) -> int:
    print(format_table_iii())
    return 0


def _cmd_layout(_args) -> int:
    layout = plan_cgroup_layout()
    print("Fig. 9 C-group floorplan")
    for key, val in layout.summary().items():
        print(f"  {key:24s} {val}")
    print(f"  feasible               {layout.feasible()}")
    return 0


# ----------------------------------------------------------------------
# scenario-facade commands
# ----------------------------------------------------------------------
def _setup_logging(verbose: bool) -> None:
    if verbose:
        logging.basicConfig(level=logging.DEBUG, format="%(message)s")
        logging.getLogger("repro.engine").setLevel(logging.DEBUG)


def _run_study(study, args) -> int:
    """Shared run/report/export path of ``run``, ``compare``, ``sweep``."""
    metrics = getattr(args, "metrics", None)
    if metrics:
        names = [m.strip() for m in metrics.split(",") if m.strip()]
        try:
            study = study.with_metrics(names)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    result = study.run(workers=args.workers, cache=cache)
    print(result.render())
    if cache is not None:
        print(
            f"# cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    out = getattr(args, "out", None)
    if out:
        result.save(out)
        print(f"# results written to {out}")
    csv = getattr(args, "csv", None)
    if csv:
        Path(csv).write_text(result.to_csv())
        print(f"# csv written to {csv}")
    return 0


def _cmd_run(args) -> int:
    _setup_logging(args.verbose)
    target = args.scenario
    try:
        if Path(target).is_file() or target.endswith(".json"):
            study = load_study(target)
        else:
            study = build_study(target, scale=args.scale)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {target!r}: {exc}", file=sys.stderr)
        return 2
    return _run_study(study, args)


def _cmd_list(args) -> int:
    tag = getattr(args, "tag", None)
    shown = 0
    print("bundled scenarios (run with: repro-dragonfly run <name>):")
    for name in list_library():
        study = build_study(name, scale="quick")
        if tag and not study.has_tag(tag):
            continue
        shown += 1
        tags = f" #{' #'.join(study.tags)}" if study.tags else ""
        print(
            f"  {name:20s} {study.title}  "
            f"[{len(study.scenarios)} scenario(s), {study.num_specs()} "
            f"curve(s)]{tags}"
        )
        if study.description:
            print(f"{'':22s}{study.description}")
    if tag and not shown:
        print(f"  (no bundled study carries tag {tag!r})")
    if tag:
        return 0 if shown else 1
    print()
    print("registered experiment kinds (repro.engine registries):")
    print(f"  topologies   {', '.join(list_topologies())}")
    print(f"  routings     {', '.join(list_routings())}")
    print(f"  traffics     {', '.join(list_traffics())}")
    print()
    print("topology presets (topology_opts={'preset': ...}):")
    for kind in list_topologies():
        presets = list_presets(kind)
        if presets:
            print(f"  {kind:12s} {', '.join(presets)}")
    return 0


def _compare_rates(args):
    return [
        args.max_rate * (i + 1) / args.points for i in range(args.points)
    ]


def _compare_params(args) -> SimParams:
    return SimParams(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=500, seed=args.seed,
    )


def _cmd_compare(args) -> int:
    _setup_logging(args.verbose)
    arches = [a for a in args.arch.split(",") if a.strip()]
    try:
        scenario = compare_scenario(
            arches,
            pattern=args.pattern,
            scope=args.scope,
            preset=args.preset,
            routing=args.routing,
            rates=_compare_rates(args),
            params=_compare_params(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _run_study(Study.wrap(scenario), args)


def _cmd_sweep(args) -> int:
    print(
        "note: 'sweep' is deprecated; use "
        "'repro-dragonfly compare --arch <arch>' (same flags, multiple "
        "architectures) instead",
        file=sys.stderr,
    )
    return _cmd_compare(args)


def _cmd_report(args) -> int:
    try:
        result = StudyResult.load(args.results)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read {args.results}: {exc}", file=sys.stderr)
        return 2
    channel = getattr(args, "channel", None)
    if channel:
        try:
            print(result.render_channel(channel))
            if args.csv:
                Path(args.csv).write_text(result.channel_csv(channel))
                print(f"# channel csv written to {args.csv}")
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    print(result.render())
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"# csv written to {args.csv}")
    return 0


def _cmd_metrics(args) -> int:
    """Probe-kind listing, or the channels inside a results file."""
    if not args.results:
        print("registered metric probes (run with: "
              "repro-dragonfly run <name> --metrics <kinds>):")
        for name, desc in probe_descriptions().items():
            print(f"  {name:18s} {desc}")
        return 0
    try:
        result = StudyResult.load(args.results)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read {args.results}: {exc}", file=sys.stderr)
        return 2
    names = result.channel_names()
    if not names:
        print(f"{args.results}: no metric channels (the study ran "
              "without a metrics axis)")
        return 1
    print(f"{args.results}: metric channels")
    for name in names:
        points = sum(1 for _ in result.iter_channels(name))
        print(f"  {name:18s} on {points} point(s)")
    print("render with: repro-dragonfly report "
          f"{args.results} --channel <name>")
    return 0


def _parse_floats(text: str, what: str) -> list:
    try:
        return [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise ValueError(f"cannot parse {what} list {text!r}") from None


def _cmd_resilience(args) -> int:
    """Failure-rate x load sweep with retention report and deadlock check."""
    _setup_logging(args.verbose)
    try:
        if args.smoke:
            study = build_study("resilience_smoke", scale="quick")
        else:
            arches = [a for a in args.arch.split(",") if a.strip()]
            study = resilience_study(
                arches=arches,
                failure_rates=_parse_floats(
                    args.failure_rates, "failure-rate"
                ),
                rates=_compare_rates(args),
                preset=args.preset,
                traffic=args.pattern.replace("-", "_"),
                scope=args.scope,
                routing_mode=args.routing,
                fault_model=args.model,
                fault_seed=args.fault_seed,
                params=_compare_params(args),
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    deadlock_ok = True
    if not args.no_verify:
        print("# deadlock freedom on each sampled fault instance:")
        for rec in verify_study_faults(study, max_pairs=args.max_pairs):
            status = "deadlock-free" if rec["acyclic"] else "DEADLOCK RISK"
            print(
                f"#   {rec['scenario']:12s} {rec['label']:14s} "
                f"{rec['faults']}: {status}"
            )
            deadlock_ok = deadlock_ok and rec["acyclic"]

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    result = study.run(workers=args.workers, cache=cache)
    print(result.render())
    print()
    print(resilience_report(result).render())
    if cache is not None:
        print(
            f"# cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    if args.out:
        result.save(args.out)
        print(f"# results written to {args.out}")
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"# csv written to {args.csv}")
    return 0 if deadlock_ok else 1


def _cmd_verify(args) -> int:
    system = build_switchless(SwitchlessConfig.small_equiv())
    ok = True
    for mode in ("minimal", "valiant"):
        routing = SwitchlessRouting(system, mode, policy=args.policy)
        report = verify_deadlock_free(
            system.graph, routing, max_pairs=args.max_pairs
        )
        print(f"{args.policy}/{mode}: {report.describe(system.graph)}")
        ok = ok and report.acyclic
    return 0 if ok else 1


# ----------------------------------------------------------------------
# argument wiring
# ----------------------------------------------------------------------
def _add_exec_args(parser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation processes (default: REPRO_WORKERS or CPU count; "
        "1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="reuse/store per-point results in this directory",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the StudyResult JSON here",
    )
    parser.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the flat per-point CSV here",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="KINDS",
        help="attach metric probes to every curve (comma-separated "
        "kinds, see 'repro-dragonfly metrics'); channels land in the "
        "results JSON",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="engine progress logging")


def _add_workload_args(parser) -> None:
    parser.add_argument("--routing", choices=("minimal", "valiant"),
                        default="minimal")
    parser.add_argument("--scope", choices=("local", "global"),
                        default="local")
    parser.add_argument(
        "--pattern", default="uniform",
        help="traffic kind (see 'repro-dragonfly list'); hyphens accepted",
    )
    parser.add_argument(
        "--preset", default="small_equiv",
        help="SwitchlessConfig preset sizing the system "
        "(see 'repro-dragonfly list')",
    )
    parser.add_argument("--points", type=int, default=6)
    parser.add_argument("--max-rate", type=float, default=1.5)
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--measure", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dragonfly",
        description="Switch-Less Dragonfly on Wafers (SC'24) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I, II and IV")
    sub.add_parser("table3", help="print the Table III case study")
    sub.add_parser("layout", help="print the Fig. 9 layout summary")

    run = sub.add_parser(
        "run", help="run a bundled scenario or a scenario/study JSON file"
    )
    run.add_argument(
        "scenario",
        help="bundled study name (see 'list') or path to a "
        "scenarios/*.json file",
    )
    run.add_argument(
        "--scale", choices=SCALES, default="default",
        help="system size / cycle count for bundled names "
        "(ignored for files)",
    )
    _add_exec_args(run)

    list_p = sub.add_parser(
        "list",
        help="bundled scenarios and registered topology/routing/traffic "
        "kinds",
    )
    list_p.add_argument(
        "--tag", default=None,
        help="only show bundled studies carrying this tag "
        "(e.g. figure, smoke, resilience)",
    )

    compare = sub.add_parser(
        "compare", help="compare architectures under one workload"
    )
    compare.add_argument(
        "--arch", default="switchless,dragonfly",
        help="comma-separated list: switchless, switchless-2b, "
        "switchless-4b, dragonfly",
    )
    _add_workload_args(compare)
    _add_exec_args(compare)

    resilience = sub.add_parser(
        "resilience",
        help="throughput-under-failure sweep: failure rate x load with "
        "saturation-retention report and per-instance deadlock check",
    )
    resilience.add_argument(
        "--arch", default="switchless,dragonfly",
        help="comma-separated list: switchless, switchless-2b, "
        "switchless-4b, dragonfly",
    )
    resilience.add_argument(
        "--failure-rates", default="0,0.02,0.05,0.1",
        help="comma-separated fault axis (random model: per-channel "
        "failure probability; yield model: defect clusters per wafer)",
    )
    resilience.add_argument(
        "--model", choices=("random", "yield"), default="random",
        help="fault model realising the failure rates",
    )
    resilience.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed of the fault sampling stream (not the sim seed)",
    )
    resilience.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-instance deadlock-freedom verification",
    )
    resilience.add_argument(
        "--max-pairs", type=int, default=300,
        help="terminal pairs sampled per deadlock check",
    )
    resilience.add_argument(
        "--smoke", action="store_true",
        help="run the bundled resilience_smoke study (ignores the "
        "workload flags; used by CI)",
    )
    _add_workload_args(resilience)
    _add_exec_args(resilience)
    # resilience probes the saturation region, not the full load axis
    resilience.set_defaults(points=4, max_rate=0.6)

    report = sub.add_parser(
        "report", help="render a saved StudyResult JSON file"
    )
    report.add_argument("results", help="path to a results JSON file")
    report.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the flat per-point CSV here (with --channel: "
        "that channel's long-form CSV)",
    )
    report.add_argument(
        "--channel", default=None, metavar="NAME",
        help="render one metric channel across all points instead of "
        "the curve tables (see 'repro-dragonfly metrics <results>')",
    )

    metrics = sub.add_parser(
        "metrics",
        help="list registered metric probes, or the channels inside a "
        "results file",
    )
    metrics.add_argument(
        "results", nargs="?", default=None,
        help="optional path to a StudyResult JSON file",
    )

    sweep = sub.add_parser(
        "sweep", help="(deprecated) single-architecture compare"
    )
    sweep.add_argument("--arch", choices=("switchless", "dragonfly"),
                       default="switchless")
    _add_workload_args(sweep)
    _add_exec_args(sweep)

    verify = sub.add_parser("verify", help="deadlock-freedom check")
    verify.add_argument("--policy", choices=("baseline", "reduced"),
                        default="baseline")
    verify.add_argument("--max-pairs", type=int, default=2000)

    args = parser.parse_args(argv)
    handler = {
        "tables": _cmd_tables,
        "table3": _cmd_table3,
        "layout": _cmd_layout,
        "run": _cmd_run,
        "list": _cmd_list,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "resilience": _cmd_resilience,
        "sweep": _cmd_sweep,
        "verify": _cmd_verify,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
