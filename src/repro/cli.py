"""Command-line interface: quick experiments from the shell.

Examples::

    repro-dragonfly tables                 # Tables I, II, IV
    repro-dragonfly table3                 # Table III case study
    repro-dragonfly layout                 # Fig. 9 floorplan summary
    repro-dragonfly sweep --arch switchless --pattern uniform --scope local
    repro-dragonfly sweep --workers 8 --cache-dir .repro-cache
    repro-dragonfly verify --policy reduced
"""

from __future__ import annotations

import argparse
import logging
import sys

from .analysis import (
    format_table_i,
    format_table_ii,
    format_table_iii,
    format_table_iv,
)
from .core import SwitchlessConfig, build_switchless
from .engine import ExperimentSpec, ResultCache, run_experiments
from .layout import plan_cgroup_layout
from .network import SimParams
from .routing import SwitchlessRouting, verify_deadlock_free


def _cmd_tables(_args) -> int:
    print(format_table_i())
    print()
    print(format_table_ii())
    print()
    print(format_table_iv())
    return 0


def _cmd_table3(_args) -> int:
    print(format_table_iii())
    return 0


def _cmd_layout(_args) -> int:
    layout = plan_cgroup_layout()
    print("Fig. 9 C-group floorplan")
    for key, val in layout.summary().items():
        print(f"  {key:24s} {val}")
    print(f"  feasible               {layout.feasible()}")
    return 0


def _cmd_sweep(args) -> int:
    if args.verbose:
        logging.basicConfig(level=logging.DEBUG, format="%(message)s")
        logging.getLogger("repro.engine").setLevel(logging.DEBUG)
    params = SimParams(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=500, seed=args.seed,
    )
    if args.arch == "switchless":
        topology = "switchless"
        routing = "switchless"
        routing_opts = {"mode": args.routing}
    else:
        topology = "dragonfly"
        routing = "dragonfly"
        routing_opts = {"mode": args.routing, "vc_spread": 2}
    traffic_opts = {}
    if args.scope == "local":
        traffic_opts["scope"] = ("group", 0)
    rates = [args.max_rate * (i + 1) / args.points for i in range(args.points)]
    spec = ExperimentSpec.create(
        topology=topology,
        topology_opts={"preset": "small_equiv"},
        routing=routing,
        routing_opts=routing_opts,
        traffic=args.pattern.replace("-", "_"),
        traffic_opts=traffic_opts,
        params=params,
        rates=rates,
        label=f"{args.arch}/{args.scope}/{args.pattern}",
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    [sweep] = run_experiments(
        [spec], workers=args.workers, cache=cache,
    )
    print(sweep.format_table())
    if cache is not None:
        print(
            f"# cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    return 0


def _cmd_verify(args) -> int:
    system = build_switchless(SwitchlessConfig.small_equiv())
    ok = True
    for mode in ("minimal", "valiant"):
        routing = SwitchlessRouting(system, mode, policy=args.policy)
        report = verify_deadlock_free(
            system.graph, routing, max_pairs=args.max_pairs
        )
        print(f"{args.policy}/{mode}: {report.describe(system.graph)}")
        ok = ok and report.acyclic
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dragonfly",
        description="Switch-Less Dragonfly on Wafers (SC'24) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I, II and IV")
    sub.add_parser("table3", help="print the Table III case study")
    sub.add_parser("layout", help="print the Fig. 9 layout summary")

    sweep = sub.add_parser("sweep", help="latency-vs-load sweep")
    sweep.add_argument("--arch", choices=("switchless", "dragonfly"),
                       default="switchless")
    sweep.add_argument("--routing", choices=("minimal", "valiant"),
                       default="minimal")
    sweep.add_argument("--scope", choices=("local", "global"),
                       default="local")
    sweep.add_argument(
        "--pattern",
        choices=("uniform", "bit-reverse", "bit-shuffle", "bit-transpose"),
        default="uniform",
    )
    sweep.add_argument("--points", type=int, default=6)
    sweep.add_argument("--max-rate", type=float, default=1.5)
    sweep.add_argument("--warmup", type=int, default=300)
    sweep.add_argument("--measure", type=int, default=1000)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="simulation processes (default: REPRO_WORKERS or CPU count; "
        "1 = serial)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="reuse/store per-point results in this directory",
    )
    sweep.add_argument("-v", "--verbose", action="store_true",
                       help="engine progress logging")

    verify = sub.add_parser("verify", help="deadlock-freedom check")
    verify.add_argument("--policy", choices=("baseline", "reduced"),
                        default="baseline")
    verify.add_argument("--max-pairs", type=int, default=2000)

    args = parser.parse_args(argv)
    handler = {
        "tables": _cmd_tables,
        "table3": _cmd_table3,
        "layout": _cmd_layout,
        "sweep": _cmd_sweep,
        "verify": _cmd_verify,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
