"""Command-line interface, redesigned around the ``repro.api`` facade.

Examples::

    repro-dragonfly list                      # scenarios + registered kinds
    repro-dragonfly list --tag resilience     # filter by scenario tag
    repro-dragonfly run fig10_local --scale quick --workers 4
    repro-dragonfly run scenarios/smoke.json --workers 1 --out smoke.json
    repro-dragonfly run smoke --metrics link_util,misroute --out s.json
    repro-dragonfly compare --arch switchless,dragonfly --pattern uniform
    repro-dragonfly resilience --failure-rates 0,0.02,0.05 --workers 4
    repro-dragonfly metrics                   # registered probe kinds
    repro-dragonfly metrics s.json            # channels in a result file
    repro-dragonfly report smoke.json --csv smoke.csv
    repro-dragonfly report s.json --channel link_util --csv links.csv
    repro-dragonfly tables                    # Tables I, II, IV
    repro-dragonfly layout                    # Fig. 9 floorplan summary
    repro-dragonfly verify --policy reduced   # deadlock-freedom check

Service mode (see the "Simulation service" README section)::

    repro-dragonfly serve --port 8642 --cache-dir ~/.cache/repro
    repro-dragonfly submit smoke --scale quick --watch
    repro-dragonfly submit fig10_local --client alice   # prints job id
    repro-dragonfly status j000001
    repro-dragonfly watch j000001 --out result.json
    repro-dragonfly trace j000001             # span waterfall for a job
    repro-dragonfly metrics --live            # poll /api/metrics
    repro-dragonfly cancel j000001
    repro-dragonfly cache stats --cache-dir ~/.cache/repro
    repro-dragonfly shutdown

``sweep`` remains as a deprecated alias of ``compare`` with a single
architecture (it now honours ``--preset``).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from pathlib import Path

from .analysis import (
    format_table_i,
    format_table_ii,
    format_table_iii,
    format_table_iv,
)
from .api import (
    SCALES,
    Study,
    StudyResult,
    build_study,
    compare_scenario,
    list_library,
    load_study,
    resilience_report,
    resilience_study,
    verify_study_faults,
)
from .core import SwitchlessConfig, build_switchless
from .engine import (
    ResultCache,
    list_presets,
    list_routings,
    list_topologies,
    list_traffics,
)
from .layout import plan_cgroup_layout
from .metrics import probe_descriptions
from .network import SimParams
from .routing import SwitchlessRouting, verify_deadlock_free


def _cmd_tables(_args) -> int:
    print(format_table_i())
    print()
    print(format_table_ii())
    print()
    print(format_table_iv())
    return 0


def _cmd_table3(_args) -> int:
    print(format_table_iii())
    return 0


def _cmd_layout(_args) -> int:
    layout = plan_cgroup_layout()
    print("Fig. 9 C-group floorplan")
    for key, val in layout.summary().items():
        print(f"  {key:24s} {val}")
    print(f"  feasible               {layout.feasible()}")
    return 0


# ----------------------------------------------------------------------
# scenario-facade commands
# ----------------------------------------------------------------------
def _setup_logging(verbose: bool) -> None:
    if verbose:
        logging.basicConfig(level=logging.DEBUG, format="%(message)s")
        logging.getLogger("repro.engine").setLevel(logging.DEBUG)


def _progress_printer(total: int):
    """Per-point progress lines on stderr (``--progress``)."""
    count = [0]

    def on_point(scenario, label, rate, res, source) -> None:
        count[0] += 1
        print(
            f"# [{count[0]}/{total}] {scenario}/{label} rate={rate:g} "
            f"lat={res.avg_latency:.1f}cyc acc={res.accepted_rate:.3f} "
            f"({source})",
            file=sys.stderr,
        )

    return on_point


def _parse_workload_opts(text):
    """``k=v,k=v`` -> builder options dict (ints where they parse)."""
    opts = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ValueError(
                f"cannot parse workload option {item!r} (expected "
                "KEY=VALUE)"
            )
        try:
            opts[key] = int(value)
        except ValueError:
            opts[key] = value
    return opts


def _run_study(study, args) -> int:
    """Shared run/report/export path of ``run``, ``compare``, ``sweep``."""
    metrics = getattr(args, "metrics", None)
    if metrics:
        names = [m.strip() for m in metrics.split(",") if m.strip()]
        try:
            study = study.with_metrics(names)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    workload = getattr(args, "workload", None)
    if workload:
        try:
            opts = _parse_workload_opts(
                getattr(args, "workload_opts", None) or ""
            )
            if workload == "trace" and "trace" in opts:
                # the value is a file path on the CLI; inline it
                opts["trace"] = Path(opts["trace"]).read_text()
            study = study.with_workload(workload, opts)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    on_point = None
    if getattr(args, "progress", False):
        on_point = _progress_printer(study.num_points())
    result = study.run(workers=args.workers, cache=cache, on_point=on_point)
    print(result.render())
    if cache is not None:
        print(
            f"# cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    out = getattr(args, "out", None)
    if out:
        result.save(out)
        print(f"# results written to {out}")
    csv = getattr(args, "csv", None)
    if csv:
        Path(csv).write_text(result.to_csv())
        print(f"# csv written to {csv}")
    return 0


def _load_run_target(target: str, scale: str):
    """Bundled study name or scenario/study JSON path -> Study."""
    if Path(target).is_file() or target.endswith(".json"):
        return load_study(target)
    return build_study(target, scale=scale)


def _cmd_run(args) -> int:
    _setup_logging(args.verbose)
    try:
        study = _load_run_target(args.scenario, args.scale)
    except (OSError, ValueError, KeyError) as exc:
        print(
            f"error: cannot load {args.scenario!r}: {exc}", file=sys.stderr
        )
        return 2
    return _run_study(study, args)


def _cmd_list(args) -> int:
    tag = getattr(args, "tag", None)
    shown = 0
    print("bundled scenarios (run with: repro-dragonfly run <name>):")
    for name in list_library():
        study = build_study(name, scale="quick")
        if tag and not study.has_tag(tag):
            continue
        shown += 1
        tags = f" #{' #'.join(study.tags)}" if study.tags else ""
        print(
            f"  {name:20s} {study.title}  "
            f"[{len(study.scenarios)} scenario(s), {study.num_specs()} "
            f"curve(s)]{tags}"
        )
        if study.description:
            print(f"{'':22s}{study.description}")
    if tag and not shown:
        print(f"  (no bundled study carries tag {tag!r})")
    if tag:
        return 0 if shown else 1
    print()
    print("registered experiment kinds (repro.engine registries):")
    print(f"  topologies   {', '.join(list_topologies())}")
    print(f"  routings     {', '.join(list_routings())}")
    print(f"  traffics     {', '.join(list_traffics())}")
    print()
    print("topology presets (topology_opts={'preset': ...}):")
    for kind in list_topologies():
        presets = list_presets(kind)
        if presets:
            print(f"  {kind:12s} {', '.join(presets)}")
    print()
    from .workload import list_workloads

    print("application workloads (closed-loop; see "
          "'repro-dragonfly workloads'):")
    print(f"  {', '.join(list_workloads() + ['trace'])}")
    return 0


def _compare_rates(args):
    return [
        args.max_rate * (i + 1) / args.points for i in range(args.points)
    ]


def _compare_params(args) -> SimParams:
    return SimParams(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=500, seed=args.seed,
    )


def _cmd_compare(args) -> int:
    _setup_logging(args.verbose)
    arches = [a for a in args.arch.split(",") if a.strip()]
    try:
        scenario = compare_scenario(
            arches,
            pattern=args.pattern,
            scope=args.scope,
            preset=args.preset,
            routing=args.routing,
            rates=_compare_rates(args),
            params=_compare_params(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _run_study(Study.wrap(scenario), args)


def _cmd_sweep(args) -> int:
    print(
        "note: 'sweep' is deprecated; use "
        "'repro-dragonfly compare --arch <arch>' (same flags, multiple "
        "architectures) instead",
        file=sys.stderr,
    )
    return _cmd_compare(args)


def _cmd_report(args) -> int:
    try:
        result = StudyResult.load(args.results)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read {args.results}: {exc}", file=sys.stderr)
        return 2
    channel = getattr(args, "channel", None)
    if channel:
        try:
            print(result.render_channel(channel))
            if args.csv:
                Path(args.csv).write_text(result.channel_csv(channel))
                print(f"# channel csv written to {args.csv}")
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    print(result.render())
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"# csv written to {args.csv}")
    return 0


def _metric_value(data, name, labels=None) -> float:
    """Sum of a metric's samples in a ``repro.metrics/v1`` payload,
    restricted to samples whose labels include ``labels``."""
    total = 0.0
    for metric in data.get("metrics", []):
        if metric.get("name") != name:
            continue
        for sample in metric.get("samples", []):
            got = sample.get("labels", {})
            if labels and any(got.get(k) != v for k, v in labels.items()):
                continue
            total += sample.get("value", sample.get("count", 0.0))
    return total


def _live_metrics_line(data) -> str:
    """One refreshing status line from the runtime-metrics payload."""
    running = _metric_value(
        data, "service_jobs_by_state", {"state": "running"}
    )
    queued = _metric_value(data, "service_queue_depth")
    fields = [
        f"queue={queued:.0f}",
        f"running={running:.0f}",
        f"submitted={_metric_value(data, 'service_jobs_submitted_total'):.0f}",
        f"points={_metric_value(data, 'engine_points_total'):.0f}",
        f"hits={_metric_value(data, 'store_hits_total'):.0f}",
        f"misses={_metric_value(data, 'store_misses_total'):.0f}",
        f"retries={_metric_value(data, 'service_job_retries_total'):.0f}",
        f"http={_metric_value(data, 'http_requests_total'):.0f}",
    ]
    return "  ".join(fields)


def _cmd_live_metrics(args) -> int:
    """``metrics --live``: poll a service's /api/metrics surface."""
    import time as _time

    from .service import ServiceError

    client = _service_client(args)
    remaining = args.count
    try:
        while True:
            data = client.metrics(fmt="json")
            stamp = _time.strftime("%H:%M:%S")
            print(f"[{stamp}] {_live_metrics_line(data)}", flush=True)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return 0
            _time.sleep(args.interval)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def _cmd_metrics(args) -> int:
    """Probe-kind listing, channels in a results file, or (with
    ``--live``/``--server``) a running service's runtime metrics."""
    if args.live:
        return _cmd_live_metrics(args)
    if args.server:
        from .service import ServiceError

        client = _service_client(args)
        try:
            print(client.metrics(fmt="prometheus"), end="")
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    if not args.results:
        print("registered metric probes (run with: "
              "repro-dragonfly run <name> --metrics <kinds>):")
        for name, desc in probe_descriptions().items():
            print(f"  {name:18s} {desc}")
        print("the cct/bubble/overlap channels need a closed-loop run "
              "(see 'repro-dragonfly workloads')")
        return 0
    try:
        result = StudyResult.load(args.results)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read {args.results}: {exc}", file=sys.stderr)
        return 2
    names = result.channel_names()
    if not names:
        print(f"{args.results}: no metric channels (the study ran "
              "without a metrics axis)")
        return 1
    print(f"{args.results}: metric channels")
    for name in names:
        points = sum(1 for _ in result.iter_channels(name))
        print(f"  {name:18s} on {points} point(s)")
    print("render with: repro-dragonfly report "
          f"{args.results} --channel <name>")
    return 0


def _cmd_workloads(args) -> int:
    """List the closed-loop application workloads and the trace schema."""
    from .workload import TRACE_SCHEMA, workload_descriptions

    print("application workloads (run closed-loop with: "
          "repro-dragonfly run <study> --workload <name>):")
    for name, desc in sorted(workload_descriptions().items()):
        print(f"  {name:24s} {desc}")
    print(f"  {'trace':24s} replay a recorded {TRACE_SCHEMA} JSON "
          "document (--workload-opts trace=<path>)")
    print()
    print(f"trace format: {TRACE_SCHEMA} — a JSON object with 'schema', "
          "'name' and a 'phases' list; each phase has 'name', 'pattern' "
          "(['shift', k] | ['all_to_all'] | ['none']) and optional "
          "'volume' (flits/node), 'after' (phase names) and 'compute' "
          "(cycles)")
    print("application channels: attach --metrics cct,bubble,overlap "
          "(see 'repro-dragonfly metrics')")
    print("bundled closed-loop studies: "
          "repro-dragonfly list --tag workload")
    return 0


def _parse_floats(text: str, what: str) -> list:
    try:
        return [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise ValueError(f"cannot parse {what} list {text!r}") from None


def _cmd_resilience(args) -> int:
    """Failure-rate x load sweep with retention report and deadlock check."""
    _setup_logging(args.verbose)
    try:
        if args.smoke:
            study = build_study("resilience_smoke", scale="quick")
        else:
            arches = [a for a in args.arch.split(",") if a.strip()]
            study = resilience_study(
                arches=arches,
                failure_rates=_parse_floats(
                    args.failure_rates, "failure-rate"
                ),
                rates=_compare_rates(args),
                preset=args.preset,
                traffic=args.pattern.replace("-", "_"),
                scope=args.scope,
                routing_mode=args.routing,
                fault_model=args.model,
                fault_seed=args.fault_seed,
                params=_compare_params(args),
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    deadlock_ok = True
    if not args.no_verify:
        print("# deadlock freedom on each sampled fault instance:")
        for rec in verify_study_faults(study, max_pairs=args.max_pairs):
            status = "deadlock-free" if rec["acyclic"] else "DEADLOCK RISK"
            print(
                f"#   {rec['scenario']:12s} {rec['label']:14s} "
                f"{rec['faults']}: {status}"
            )
            deadlock_ok = deadlock_ok and rec["acyclic"]

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    on_point = None
    if args.progress:
        on_point = _progress_printer(study.num_points())
    result = study.run(workers=args.workers, cache=cache, on_point=on_point)
    print(result.render())
    print()
    print(resilience_report(result).render())
    if cache is not None:
        print(
            f"# cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    if args.out:
        result.save(args.out)
        print(f"# results written to {args.out}")
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"# csv written to {args.csv}")
    return 0 if deadlock_ok else 1


def _cmd_verify(args) -> int:
    system = build_switchless(SwitchlessConfig.small_equiv())
    ok = True
    for mode in ("minimal", "valiant"):
        routing = SwitchlessRouting(system, mode, policy=args.policy)
        report = verify_deadlock_free(
            system.graph, routing, max_pairs=args.max_pairs
        )
        print(f"{args.policy}/{mode}: {report.describe(system.graph)}")
        ok = ok and report.acyclic
    return 0 if ok else 1


# ----------------------------------------------------------------------
# service commands
# ----------------------------------------------------------------------
def _default_cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR",
        str(Path.home() / ".cache" / "repro-dragonfly"),
    )


def _cmd_serve(args) -> int:
    from .obs import setup_logging
    from .service import RetryPolicy, create_server, serve

    setup_logging(fmt=args.log_format)
    try:
        server = create_server(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            default_workers=args.workers,
            max_inflight_per_client=args.max_inflight,
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
            state_dir=args.state_dir,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            hang_timeout=args.hang_timeout,
            telemetry=not args.no_telemetry,
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot start service: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]

    def banner(line):
        # one atomic write per line: log records from the (already
        # running) executor thread share stderr and must not land
        # between a banner line and its newline — tests and scripts
        # parse these lines for the URL
        sys.stderr.write(line + "\n")
        sys.stderr.flush()

    banner(f"# simulation service on http://{host}:{port}")
    banner(f"# result store: {args.cache_dir}")
    if args.state_dir:
        service = server.service
        banner(
            f"# job journal: {args.state_dir} "
            f"({service.restored_jobs} job(s) restored, "
            f"{service.resumed_executions} resumed)"
        )
    banner(
        "# submit with: repro-dragonfly submit <study> "
        f"--server http://{host}:{port}"
    )
    serve(server)
    return 0


def _service_client(args):
    from .service import ServiceClient

    return ServiceClient(args.server)


def _watch_event_printer(event) -> None:
    """Progress lines for the ``watch`` / ``submit --watch`` stream."""
    kind = event.get("event")
    if kind == "start":
        print(
            f"# start {event['study']} "
            f"({event['points_total']} point(s))"
            + (" [resumed after restart]" if event.get("resumed") else ""),
            file=sys.stderr,
        )
    elif kind == "point":
        res = event.get("result", {})
        print(
            f"# [{event['points_done']}/{event['points_total']}] "
            f"{event['scenario']}/{event['curve']} "
            f"rate={event['rate']:g} "
            f"lat={res.get('avg_latency') or float('nan'):.1f}cyc "
            f"acc={res.get('accepted_rate') or float('nan'):.3f} "
            f"({event['source']})",
            file=sys.stderr,
        )
    elif kind == "retry":
        print(
            f"# retry {event['attempt']}/{event['max_attempts']} in "
            f"{event['delay']:g}s: {event.get('error')}",
            file=sys.stderr,
        )
    elif kind == "failed":
        print(
            f"# FAILED after {event.get('attempts')} attempt(s): "
            f"{event.get('error')}",
            file=sys.stderr,
        )
        if event.get("traceback"):
            print(event["traceback"], file=sys.stderr)
    elif kind == "done":
        cache = event.get("cache", {}).get("summary", {})
        print(
            f"# done: {event['points_done']} point(s), "
            f"{event['cache_hits']} from cache",
            file=sys.stderr,
        )
        if cache:
            print(
                f"# store: {cache.get('entries', 0):.0f} entries, "
                f"{cache.get('bytes', 0):.0f} bytes",
                file=sys.stderr,
            )


def _watch_job(client, job_id: str, args) -> int:
    """Shared streaming tail of ``watch`` and ``submit --watch``."""
    from .service import ServiceError

    try:
        result = client.watch(job_id, on_event=_watch_event_printer)
    except ServiceError as exc:
        try:
            state = client.status(job_id).get("state")
        except ServiceError:
            state = None
        if state == "cancelled":
            print(f"# job {job_id} cancelled", file=sys.stderr)
            return 3
        if state == "failed":
            print(f"error: {exc}", file=sys.stderr)
            return 4
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.render())
    out = getattr(args, "out", None)
    if out:
        result.save(out)
        print(f"# results written to {out}")
    csv = getattr(args, "csv", None)
    if csv:
        Path(csv).write_text(result.to_csv())
        print(f"# csv written to {csv}")
    return 0


def _cmd_submit(args) -> int:
    from .service import JobRequest, ServiceError

    try:
        study = _load_run_target(args.scenario, args.scale)
    except (OSError, ValueError, KeyError) as exc:
        print(
            f"error: cannot load {args.scenario!r}: {exc}", file=sys.stderr
        )
        return 2
    metrics = tuple(
        m.strip() for m in (args.metrics or "").split(",") if m.strip()
    )
    request = JobRequest(
        study=study.to_data(),
        client=args.client,
        priority=args.priority,
        workers=args.workers,
        metrics=metrics,
    )
    client = _service_client(args)
    try:
        status = client.submit(request)
    except (ServiceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    note = " (attached to in-flight run)" if status.get("attached") else ""
    print(
        f"# job {status['id']}: {status['state']}{note}, "
        f"{status['points_total']} point(s), "
        f"{status.get('queued_ahead', 0)} execution(s) queued ahead",
        file=sys.stderr,
    )
    # the id alone on stdout, so scripts can do JOB=$(... submit ...)
    print(status["id"])
    if args.watch:
        return _watch_job(client, status["id"], args)
    print(
        f"# follow with: repro-dragonfly watch {status['id']} "
        f"--server {client.address}",
        file=sys.stderr,
    )
    return 0


def _format_job_line(job) -> str:
    attached = f" -> {job['attached_to']}" if job.get("attached_to") else ""
    return (
        f"  {job['id']}  {job['state']:9s} "
        f"{job['points_done']:3d}/{job['points_total']:<3d} "
        f"{job['study']}{attached}"
        f"{'  client=' + job['client'] if job['client'] else ''}"
    )


def _cmd_status(args) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        if args.job:
            print(json.dumps(client.status(args.job), indent=2))
            return 0
        jobs = client.jobs()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("no jobs")
        return 0
    print(f"jobs on {client.address}:")
    for job in jobs:
        print(_format_job_line(job))
    return 0


def _cmd_trace(args) -> int:
    """Render a job's span waterfall from the service trace endpoint."""
    from .obs import render_waterfall
    from .service import ServiceError

    client = _service_client(args)
    try:
        payload = client.trace(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    spans = payload.get("spans", [])
    if not spans:
        print(
            f"# job {args.job}: trace {payload.get('trace_id')} has no "
            "recorded spans yet"
        )
        return 1
    print(render_waterfall(spans))
    return 0


def _cmd_watch(args) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        client.status(args.job)  # fail fast on unknown ids
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _watch_job(client, args.job, args)


def _cmd_cancel(args) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        status = client.cancel(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"# job {status['id']}: {status['state']} "
        f"after {status['points_done']}/{status['points_total']} point(s)"
    )
    return 0


def _cmd_shutdown(args) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        client.shutdown()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"# service at {client.address} shutting down")
    return 0


def _cmd_cache(args) -> int:
    from .service import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"# removed {removed} entr(ies) from {store.root}")
        return 0
    if args.action == "prune":
        if args.max_entries is None and args.max_bytes is None:
            print(
                "error: prune needs --max-entries and/or --max-bytes",
                file=sys.stderr,
            )
            return 2
        removed = store.prune(
            max_entries=args.max_entries, max_bytes=args.max_bytes
        )
        stats = store.stats(scan_meta=False)
        print(
            f"# evicted {removed} entr(ies); now {stats['entries']} "
            f"entr(ies), {stats['bytes']} bytes ({store.root})"
        )
        return 0
    stats = store.stats(scan_meta=True)
    print(f"result store {stats['root']}")
    print(f"  entries            {stats['entries']}")
    print(f"  bytes              {stats['bytes']}")
    print(f"  engine version     {stats['engine_version']}")
    mix = ", ".join(
        f"{tag}: {n}" for tag, n in stats.get("version_mix", {}).items()
    )
    print(f"  version mix        {mix or '(empty)'}")
    print(f"  in-flight locks    {stats['locks']}")
    stale = stats.get("stale_entries", 0)
    if stale:
        print(
            f"  WARNING: {stale} entr(ies) were written by a different "
            "engine version; they can never be hit again — reclaim the "
            "space with 'repro-dragonfly cache clear'"
        )
    return 0


# ----------------------------------------------------------------------
# argument wiring
# ----------------------------------------------------------------------
def _add_exec_args(parser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation processes (default: REPRO_WORKERS or CPU count; "
        "1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="reuse/store per-point results in this directory",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the StudyResult JSON here",
    )
    parser.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the flat per-point CSV here",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="KINDS",
        help="attach metric probes to every curve (comma-separated "
        "kinds, see 'repro-dragonfly metrics'); channels land in the "
        "results JSON",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed simulation point on stderr",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="engine progress logging")


def _add_workload_args(parser) -> None:
    parser.add_argument("--routing", choices=("minimal", "valiant"),
                        default="minimal")
    parser.add_argument("--scope", choices=("local", "global"),
                        default="local")
    parser.add_argument(
        "--pattern", default="uniform",
        help="traffic kind (see 'repro-dragonfly list'); hyphens accepted",
    )
    parser.add_argument(
        "--preset", default="small_equiv",
        help="SwitchlessConfig preset sizing the system "
        "(see 'repro-dragonfly list')",
    )
    parser.add_argument("--points", type=int, default=6)
    parser.add_argument("--max-rate", type=float, default=1.5)
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--measure", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dragonfly",
        description="Switch-Less Dragonfly on Wafers (SC'24) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I, II and IV")
    sub.add_parser("table3", help="print the Table III case study")
    sub.add_parser("layout", help="print the Fig. 9 layout summary")

    run = sub.add_parser(
        "run", help="run a bundled scenario or a scenario/study JSON file"
    )
    run.add_argument(
        "scenario",
        help="bundled study name (see 'list') or path to a "
        "scenarios/*.json file",
    )
    run.add_argument(
        "--scale", choices=SCALES, default="default",
        help="system size / cycle count for bundled names "
        "(ignored for files)",
    )
    run.add_argument(
        "--workload", default=None, metavar="NAME",
        help="re-drive every curve closed-loop with this application "
        "workload (see 'repro-dragonfly workloads'); rates become "
        "pacing bandwidths",
    )
    run.add_argument(
        "--workload-opts", default=None, metavar="K=V[,K=V]",
        help="builder options for --workload (e.g. volume=256); for "
        "--workload trace, trace=<path> names the trace JSON file",
    )
    _add_exec_args(run)

    list_p = sub.add_parser(
        "list",
        help="bundled scenarios and registered topology/routing/traffic "
        "kinds",
    )
    list_p.add_argument(
        "--tag", default=None,
        help="only show bundled studies carrying this tag "
        "(e.g. figure, smoke, resilience)",
    )

    compare = sub.add_parser(
        "compare", help="compare architectures under one workload"
    )
    compare.add_argument(
        "--arch", default="switchless,dragonfly",
        help="comma-separated list: switchless, switchless-2b, "
        "switchless-4b, dragonfly",
    )
    _add_workload_args(compare)
    _add_exec_args(compare)

    resilience = sub.add_parser(
        "resilience",
        help="throughput-under-failure sweep: failure rate x load with "
        "saturation-retention report and per-instance deadlock check",
    )
    resilience.add_argument(
        "--arch", default="switchless,dragonfly",
        help="comma-separated list: switchless, switchless-2b, "
        "switchless-4b, dragonfly",
    )
    resilience.add_argument(
        "--failure-rates", default="0,0.02,0.05,0.1",
        help="comma-separated fault axis (random model: per-channel "
        "failure probability; yield model: defect clusters per wafer)",
    )
    resilience.add_argument(
        "--model", choices=("random", "yield"), default="random",
        help="fault model realising the failure rates",
    )
    resilience.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed of the fault sampling stream (not the sim seed)",
    )
    resilience.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-instance deadlock-freedom verification",
    )
    resilience.add_argument(
        "--max-pairs", type=int, default=300,
        help="terminal pairs sampled per deadlock check",
    )
    resilience.add_argument(
        "--smoke", action="store_true",
        help="run the bundled resilience_smoke study (ignores the "
        "workload flags; used by CI)",
    )
    _add_workload_args(resilience)
    _add_exec_args(resilience)
    # resilience probes the saturation region, not the full load axis
    resilience.set_defaults(points=4, max_rate=0.6)

    report = sub.add_parser(
        "report", help="render a saved StudyResult JSON file"
    )
    report.add_argument("results", help="path to a results JSON file")
    report.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the flat per-point CSV here (with --channel: "
        "that channel's long-form CSV)",
    )
    report.add_argument(
        "--channel", default=None, metavar="NAME",
        help="render one metric channel across all points instead of "
        "the curve tables (see 'repro-dragonfly metrics <results>')",
    )

    metrics = sub.add_parser(
        "metrics",
        help="list registered metric probes, or the channels inside a "
        "results file",
    )
    metrics.add_argument(
        "results", nargs="?", default=None,
        help="optional path to a StudyResult JSON file",
    )

    sub.add_parser(
        "workloads",
        help="list the closed-loop application workloads and the trace "
        "format",
    )

    sweep = sub.add_parser(
        "sweep", help="(deprecated) single-architecture compare"
    )
    sweep.add_argument("--arch", choices=("switchless", "dragonfly"),
                       default="switchless")
    _add_workload_args(sweep)
    _add_exec_args(sweep)

    verify = sub.add_parser("verify", help="deadlock-freedom check")
    verify.add_argument("--policy", choices=("baseline", "reduced"),
                        default="baseline")
    verify.add_argument("--max-pairs", type=int, default=2000)

    # -- service mode --------------------------------------------------
    def _add_server_arg(p) -> None:
        p.add_argument(
            "--server", default=None, metavar="URL",
            help="service address (default: $REPRO_SERVICE_URL or "
            "http://127.0.0.1:8642)",
        )

    serve_p = sub.add_parser(
        "serve",
        help="run the simulation service: async job queue, streaming "
        "telemetry, shared result store, warm engine state",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 picks an ephemeral port)",
    )
    serve_p.add_argument(
        "--cache-dir", default=_default_cache_dir(),
        help="result store directory, shared with offline runs "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-dragonfly)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="default engine worker processes per job (a request's "
        "'workers' field overrides)",
    )
    serve_p.add_argument(
        "--max-inflight", type=int, default=8,
        help="per-client cap on jobs in flight (submissions beyond it "
        "are rejected with HTTP 429)",
    )
    serve_p.add_argument(
        "--max-entries", type=int, default=None,
        help="bound the store to this many entries (LRU eviction)",
    )
    serve_p.add_argument(
        "--max-bytes", type=int, default=None,
        help="bound the store to this many bytes (LRU eviction)",
    )
    serve_p.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="journal jobs here and replay them on startup: a server "
        "restarted against the same directory resumes interrupted "
        "jobs (completed points come back from the result store)",
    )
    serve_p.add_argument(
        "--max-attempts", type=int, default=3,
        help="supervised retry budget per execution; after this many "
        "failed attempts a job is quarantined as 'failed' with its "
        "traceback (default: 3)",
    )
    serve_p.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog: reap a running job this many seconds after "
        "its last heartbeat (default: disabled)",
    )
    serve_p.add_argument(
        "--log-format", choices=("text", "json"), default="text",
        help="service log lines: classic text or structured NDJSON "
        "(each line carries trace_id/job/state fields)",
    )
    serve_p.add_argument(
        "--no-telemetry", action="store_true",
        help="disable the runtime telemetry plane (span log, trace "
        "endpoint; metrics counters still tick but gauges go stale)",
    )

    # runtime-metrics flags on the 'metrics' verb (probe listing above)
    _add_server_arg(metrics)
    metrics.add_argument(
        "--live", action="store_true",
        help="poll the service /api/metrics surface and print one "
        "status line per interval (Ctrl-C to stop)",
    )
    metrics.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="--live polling interval (default: 2s)",
    )
    metrics.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="--live: stop after N polls (default: run until Ctrl-C)",
    )

    trace_p = sub.add_parser(
        "trace",
        help="render a job's span waterfall (queue wait, engine, "
        "kernel chunks) from a telemetry-enabled service",
    )
    trace_p.add_argument("job", help="job id from 'submit'")
    trace_p.add_argument(
        "--json", action="store_true",
        help="print the raw repro.trace/v1 payload instead",
    )
    _add_server_arg(trace_p)

    submit = sub.add_parser(
        "submit", help="submit a study to a running service"
    )
    submit.add_argument(
        "scenario",
        help="bundled study name (see 'list') or path to a "
        "scenarios/*.json file",
    )
    submit.add_argument(
        "--scale", choices=SCALES, default="default",
        help="system size for bundled names (ignored for files)",
    )
    submit.add_argument(
        "--metrics", default=None, metavar="KINDS",
        help="metric probe kinds applied to every curve (comma-separated)",
    )
    submit.add_argument(
        "--workers", type=int, default=None,
        help="engine worker processes for this job (default: the "
        "server's --workers)",
    )
    submit.add_argument(
        "--client", default=os.environ.get("USER", ""),
        help="client id for fairness accounting (default: $USER)",
    )
    submit.add_argument(
        "--priority", type=int, default=0,
        help="higher runs first; FIFO within a priority level",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="follow the event stream to completion (like 'watch')",
    )
    submit.add_argument("--out", default=None, metavar="FILE",
                        help="with --watch: write the StudyResult here")
    submit.add_argument("--csv", default=None, metavar="FILE",
                        help="with --watch: write the per-point CSV here")
    _add_server_arg(submit)

    status_p = sub.add_parser(
        "status", help="job status (or all jobs) on a running service"
    )
    status_p.add_argument(
        "job", nargs="?", default=None,
        help="job id (omit to list every job)",
    )
    _add_server_arg(status_p)

    watch = sub.add_parser(
        "watch",
        help="stream a job's per-point telemetry to completion "
        "(exit 0 done, 3 cancelled, 1 error)",
    )
    watch.add_argument("job", help="job id from 'submit'")
    watch.add_argument("--out", default=None, metavar="FILE",
                       help="write the final StudyResult JSON here")
    watch.add_argument("--csv", default=None, metavar="FILE",
                       help="write the flat per-point CSV here")
    _add_server_arg(watch)

    cancel = sub.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job", help="job id from 'submit'")
    _add_server_arg(cancel)

    shutdown_p = sub.add_parser(
        "shutdown", help="stop a running service cleanly"
    )
    _add_server_arg(shutdown_p)

    cache_p = sub.add_parser(
        "cache",
        help="inspect or maintain a result store directory",
    )
    cache_p.add_argument(
        "action", nargs="?", default="stats",
        choices=("stats", "clear", "prune"),
        help="stats (default): entry count, bytes, engine-version mix; "
        "clear: delete every entry; prune: LRU-evict to the bounds",
    )
    cache_p.add_argument(
        "--cache-dir", default=_default_cache_dir(),
        help="store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-dragonfly)",
    )
    cache_p.add_argument("--max-entries", type=int, default=None,
                         help="prune: keep at most this many entries")
    cache_p.add_argument("--max-bytes", type=int, default=None,
                         help="prune: keep at most this many bytes")

    args = parser.parse_args(argv)
    handler = {
        "tables": _cmd_tables,
        "table3": _cmd_table3,
        "layout": _cmd_layout,
        "run": _cmd_run,
        "list": _cmd_list,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "workloads": _cmd_workloads,
        "resilience": _cmd_resilience,
        "sweep": _cmd_sweep,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "trace": _cmd_trace,
        "watch": _cmd_watch,
        "cancel": _cmd_cancel,
        "shutdown": _cmd_shutdown,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
