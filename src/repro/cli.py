"""Command-line interface: quick experiments from the shell.

Examples::

    repro-dragonfly tables                 # Tables I, II, IV
    repro-dragonfly table3                 # Table III case study
    repro-dragonfly layout                 # Fig. 9 floorplan summary
    repro-dragonfly sweep --arch switchless --pattern uniform --scope local
    repro-dragonfly verify --policy reduced
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    format_table_i,
    format_table_ii,
    format_table_iii,
    format_table_iv,
)
from .core import SwitchlessConfig, build_switchless
from .layout import plan_cgroup_layout
from .network import SimParams, sweep_rates
from .routing import SwitchlessRouting, verify_deadlock_free
from .topology.dragonfly import DragonflyConfig, build_dragonfly
from .routing.dragonfly import DragonflyRouting
from .traffic import UniformTraffic


def _cmd_tables(_args) -> int:
    print(format_table_i())
    print()
    print(format_table_ii())
    print()
    print(format_table_iv())
    return 0


def _cmd_table3(_args) -> int:
    print(format_table_iii())
    return 0


def _cmd_layout(_args) -> int:
    layout = plan_cgroup_layout()
    print("Fig. 9 C-group floorplan")
    for key, val in layout.summary().items():
        print(f"  {key:24s} {val}")
    print(f"  feasible               {layout.feasible()}")
    return 0


def _cmd_sweep(args) -> int:
    params = SimParams(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=500, seed=args.seed,
    )
    if args.arch == "switchless":
        system = build_switchless(SwitchlessConfig.small_equiv())
        routing = SwitchlessRouting(system, args.routing)
        graph = system.graph
    else:
        system = build_dragonfly(DragonflyConfig.small_equiv())
        routing = DragonflyRouting(
            system,
            "minimal" if args.routing == "minimal" else "valiant",
            vc_spread=2,
        )
        graph = system.graph
    if args.scope == "local":
        scope = system.group_nodes(0)
    else:
        scope = None
    traffic = UniformTraffic(graph, scope)
    rates = [args.max_rate * (i + 1) / args.points for i in range(args.points)]
    sweep = sweep_rates(
        graph, routing, traffic, rates, params,
        label=f"{args.arch}/{args.scope}/uniform",
    )
    print(sweep.format_table())
    return 0


def _cmd_verify(args) -> int:
    system = build_switchless(SwitchlessConfig.small_equiv())
    ok = True
    for mode in ("minimal", "valiant"):
        routing = SwitchlessRouting(system, mode, policy=args.policy)
        report = verify_deadlock_free(
            system.graph, routing, max_pairs=args.max_pairs
        )
        print(f"{args.policy}/{mode}: {report.describe(system.graph)}")
        ok = ok and report.acyclic
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dragonfly",
        description="Switch-Less Dragonfly on Wafers (SC'24) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I, II and IV")
    sub.add_parser("table3", help="print the Table III case study")
    sub.add_parser("layout", help="print the Fig. 9 layout summary")

    sweep = sub.add_parser("sweep", help="latency-vs-load sweep")
    sweep.add_argument("--arch", choices=("switchless", "dragonfly"),
                       default="switchless")
    sweep.add_argument("--routing", choices=("minimal", "valiant"),
                       default="minimal")
    sweep.add_argument("--scope", choices=("local", "global"),
                       default="local")
    sweep.add_argument("--points", type=int, default=6)
    sweep.add_argument("--max-rate", type=float, default=1.5)
    sweep.add_argument("--warmup", type=int, default=300)
    sweep.add_argument("--measure", type=int, default=1000)
    sweep.add_argument("--seed", type=int, default=0)

    verify = sub.add_parser("verify", help="deadlock-freedom check")
    verify.add_argument("--policy", choices=("baseline", "reduced"),
                        default="baseline")
    verify.add_argument("--max-pairs", type=int, default=2000)

    args = parser.parse_args(argv)
    handler = {
        "tables": _cmd_tables,
        "table3": _cmd_table3,
        "layout": _cmd_layout,
        "sweep": _cmd_sweep,
        "verify": _cmd_verify,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
