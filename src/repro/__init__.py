"""repro — reproduction of *Switch-Less Dragonfly on Wafers* (SC'24).

Public API overview
-------------------
``repro.core``
    The paper's contribution: the wafer-based switch-less Dragonfly
    (chiplet → C-group → wafer → W-group → system) and its labeling.
``repro.topology``
    Comparison topologies (switch-based Dragonfly, 2D mesh, Fat-Tree,
    HammingMesh, PolarFly) lowered to a common router-graph substrate.
``repro.network``
    Cycle-accurate flit-level virtual-channel simulator.
``repro.metrics``
    Composable observability: metric probes, typed channels and the
    post-run record surface they decode.
``repro.routing``
    Minimal / non-minimal deadlock-free routing and the channel-dependency
    deadlock verifier.
``repro.traffic``
    Unicast, adversarial and collective traffic patterns.
``repro.analysis``
    Closed-form throughput/scalability/diameter/cost/energy models and the
    Table III case-study generator.
``repro.layout``
    Physical C-group floorplanning on a 300 mm wafer (Fig. 9).
"""

__version__ = "0.10.0"
