"""Closed-loop application workloads (dependency-graph collectives).

Public surface:

* :class:`~repro.workload.ir.Phase` / :class:`~repro.workload.ir.Workload`
  — the dependency-DAG IR, with builders for ring/tree/hierarchical
  allreduce, all-to-all and pipeline p2p in :data:`WORKLOADS`;
* :mod:`~repro.workload.trace` — the ``repro.workload-trace/v1`` JSON
  trace format (byte-stable round trip);
* :class:`~repro.workload.driver.PhasePlan` /
  :func:`~repro.workload.driver.run_closed_loop` — the closed-loop
  phase scheduler next to the open-loop injection schedule.

The engine plugs in through the ``workload`` axis of
:class:`~repro.engine.spec.ExperimentSpec`; completion-time metrics
(``cct``, ``bubble``, ``overlap``) live with the other probes in
:mod:`repro.metrics.probes`.
"""

from .driver import (
    PhasePlan,
    participating_chips,
    run_closed_loop,
    workload_for_traffic,
)
from .ir import (
    WORKLOADS,
    Phase,
    Workload,
    build_workload,
    list_workloads,
    register_workload,
    workload_descriptions,
)
from .trace import (
    TRACE_SCHEMA,
    load_trace,
    save_trace,
    workload_dumps,
    workload_from_data,
    workload_loads,
    workload_to_data,
)

__all__ = [
    "Phase",
    "Workload",
    "WORKLOADS",
    "register_workload",
    "build_workload",
    "list_workloads",
    "workload_descriptions",
    "TRACE_SCHEMA",
    "workload_to_data",
    "workload_from_data",
    "workload_dumps",
    "workload_loads",
    "save_trace",
    "load_trace",
    "PhasePlan",
    "participating_chips",
    "run_closed_loop",
    "workload_for_traffic",
]
