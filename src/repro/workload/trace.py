"""``repro.workload-trace/v1``: the workload trace file format.

A trace is the on-disk form of a :class:`~repro.workload.ir.Workload`
DAG, so recorded or synthetic traces are first-class scenario inputs
(``ExperimentSpec(workload="trace", workload_opts={"trace": <doc>})``).

Serialisation is canonical — sorted keys, fixed separators, two-space
indent, trailing newline — so ``workload_dumps(workload_loads(text)) ==
text`` holds byte-for-byte for documents produced here (the round-trip
stability the trace tests pin down).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from .ir import Phase, Workload

__all__ = [
    "TRACE_SCHEMA",
    "workload_to_data",
    "workload_from_data",
    "workload_dumps",
    "workload_loads",
    "save_trace",
    "load_trace",
]

TRACE_SCHEMA = "repro.workload-trace/v1"


def workload_to_data(workload: Workload) -> Dict:
    """JSON-ready dict (schema ``repro.workload-trace/v1``).

    Defaults are omitted so documents stay minimal and canonical.
    """
    phases = []
    for p in workload.phases:
        entry: Dict = {"name": p.name, "pattern": list(p.pattern)}
        if p.volume:
            entry["volume"] = p.volume
        if p.after:
            entry["after"] = list(p.after)
        if p.compute:
            entry["compute"] = p.compute
        phases.append(entry)
    return {
        "schema": TRACE_SCHEMA,
        "name": workload.name,
        "phases": phases,
    }


def workload_from_data(data: Dict) -> Workload:
    schema = data.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"not a workload trace: schema {schema!r} "
            f"(expected {TRACE_SCHEMA!r})"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("workload trace needs a non-empty 'name'")
    raw = data.get("phases")
    if not isinstance(raw, list) or not raw:
        raise ValueError("workload trace needs a non-empty 'phases' list")
    phases = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise ValueError(f"malformed phase entry {entry!r}")
        extra = set(entry) - {"name", "pattern", "volume", "after", "compute"}
        if extra:
            raise ValueError(
                f"phase {entry.get('name')!r}: unknown field(s) "
                f"{', '.join(sorted(extra))}"
            )
        pattern = entry.get("pattern", ["none"])
        if not isinstance(pattern, list):
            raise ValueError(
                f"phase {entry.get('name')!r}: pattern must be a list"
            )
        phases.append(
            Phase(
                name=entry.get("name", ""),
                pattern=tuple(pattern),
                volume=int(entry.get("volume", 0)),
                after=tuple(entry.get("after", ())),
                compute=int(entry.get("compute", 0)),
            )
        )
    return Workload(name=name, phases=tuple(phases))


def workload_dumps(workload: Workload) -> str:
    """Canonical (byte-stable) trace document for ``workload``."""
    return (
        json.dumps(
            workload_to_data(workload),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
        + "\n"
    )


def workload_loads(text: str) -> Workload:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"workload trace is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError("workload trace must be a JSON object")
    return workload_from_data(data)


def save_trace(workload: Workload, path) -> None:
    Path(path).write_text(workload_dumps(workload))


def load_trace(path) -> Workload:
    return workload_loads(Path(path).read_text())
